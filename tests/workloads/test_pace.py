"""Tests for the PACE-2016-like instances."""

from repro.core.mintriang import min_triangulation
from repro.costs.classic import WidthCost
from repro.workloads.pace import (
    control_flow_graph,
    pace100_instances,
    pace1000_instances,
)


class TestControlFlow:
    def test_deterministic(self):
        a = control_flow_graph(15, seed=4)
        b = control_flow_graph(15, seed=4)
        assert a == b

    def test_connected(self):
        for seed in range(6):
            g = control_flow_graph(15, seed=seed)
            assert g.is_connected()

    def test_low_treewidth(self):
        """Structured CFGs have small treewidth (≤ ~7 for real programs)."""
        for seed in range(4):
            g = control_flow_graph(14, seed=seed)
            result = min_triangulation(g, WidthCost())
            assert result.width <= 4, seed

    def test_size_scales(self):
        small = control_flow_graph(8, seed=1)
        large = control_flow_graph(30, seed=1)
        assert large.num_vertices() > small.num_vertices()


class TestTracks:
    def test_track_sizes(self):
        assert len(pace100_instances()) == 13
        assert len(pace1000_instances()) == 3

    def test_names_unique_and_prefixed(self):
        for inst, prefix in (
            (pace100_instances(), "pace100-"),
            (pace1000_instances(), "pace1000-"),
        ):
            names = [n for n, _g in inst]
            assert len(names) == len(set(names))
            assert all(n.startswith(prefix) for n in names)

    def test_1000s_track_is_larger(self):
        small = max(g.num_vertices() for _n, g in pace100_instances())
        big = max(g.num_vertices() for _n, g in pace1000_instances())
        assert big >= small
