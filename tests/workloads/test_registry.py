"""Tests for the dataset registry and the random sweeps."""

import pytest

from repro.workloads.random_graphs import figure7_instances, figure8_instances
from repro.workloads.registry import dataset, dataset_names


class TestRegistry:
    def test_figure5_families_registered(self):
        expected = {
            "Alchemy",
            "Pedigree",
            "ProteinProtein",
            "ImageAlignment",
            "Pace2016-1000s",
            "ProteinFolding",
            "TPC-H",
            "Grids",
            "CSP",
            "Segmentation",
            "DBN",
            "ObjectDetection",
            "Promedas",
            "Pace2016-100s",
        }
        assert set(dataset_names()) == expected

    def test_dataset_lookup(self):
        instances = dataset("TPC-H")
        assert len(instances) == 22

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("NotADataset")

    def test_every_dataset_instantiates(self):
        for name in dataset_names():
            instances = dataset(name)
            assert instances, name
            for gname, graph in instances:
                assert graph.num_vertices() > 0, (name, gname)


class TestRandomSweeps:
    def test_figure7_grid(self):
        instances = figure7_instances(sizes=(8,), draws=2)
        assert len(instances) == 8 * 2  # p = 1/8..8/8, 2 draws
        assert all(i.n == 8 for i in instances)

    def test_figure7_deterministic(self):
        a = figure7_instances(sizes=(8,), draws=1)
        b = figure7_instances(sizes=(8,), draws=1)
        assert all(x.graph == y.graph for x, y in zip(a, b))

    def test_figure8_connectivity_bias(self):
        instances = figure8_instances(sizes=(12,), probabilities=(0.3,), draws=3)
        assert sum(1 for i in instances if i.graph.is_connected()) >= 2

    def test_names_are_stable(self):
        inst = figure8_instances(sizes=(10,), probabilities=(0.5,), draws=1)[0]
        assert inst.name == "gnp-n10-p0.50-0"
