"""Tests for the PIC2011-like generators."""

from repro.workloads.pgm import (
    alchemy_instances,
    csp_instances,
    dbn_instances,
    grids_instances,
    image_alignment_instances,
    moralize,
    object_detection_instances,
    pedigree_instances,
    promedas_instances,
    protein_folding_instances,
    protein_protein_instances,
    segmentation_instances,
)


class TestMoralize:
    def test_marries_parents(self):
        g = moralize({"c": ["a", "b"]})
        assert g.has_edge("c", "a")
        assert g.has_edge("c", "b")
        assert g.has_edge("a", "b")  # moral edge

    def test_founders_included(self):
        g = moralize({"a": [], "b": ["a"]})
        assert g.vertex_set() == {"a", "b"}


class TestFamilies:
    def test_determinism(self):
        a = [g.edge_set() for _n, g in promedas_instances(seed=5)]
        b = [g.edge_set() for _n, g in promedas_instances(seed=5)]
        assert a == b

    def test_names_unique(self):
        for factory in (
            grids_instances,
            dbn_instances,
            segmentation_instances,
            promedas_instances,
            csp_instances,
            object_detection_instances,
            image_alignment_instances,
            alchemy_instances,
            pedigree_instances,
            protein_protein_instances,
            protein_folding_instances,
        ):
            names = [n for n, _g in factory()]
            assert len(names) == len(set(names)), factory.__name__

    def test_object_detection_dense_and_small(self):
        for name, g in object_detection_instances():
            n = g.num_vertices()
            assert 8 <= n <= 14, name
            # near-complete: density above 0.5
            assert g.num_edges() >= 0.5 * n * (n - 1) / 2, name

    def test_alchemy_big_and_dense(self):
        for name, g in alchemy_instances():
            assert g.num_vertices() >= 40, name

    def test_csp_contains_mycielski(self):
        names = [n for n, _g in csp_instances()]
        assert "csp-myciel5" in names

    def test_segmentation_planar_ish(self):
        for name, g in segmentation_instances():
            n, m = g.num_vertices(), g.num_edges()
            assert m <= 3 * n - 6, name  # planar bound

    def test_pedigree_is_moral_graph(self):
        for name, g in pedigree_instances():
            assert g.num_vertices() > 20, name

    def test_dbn_layered_size(self):
        for name, g in dbn_instances():
            assert 12 <= g.num_vertices() <= 30, name

    def test_protein_folding_has_backbone(self):
        for name, g in protein_folding_instances():
            n = g.num_vertices()
            for j in range(n - 1):
                assert g.has_edge(j, j + 1), name
