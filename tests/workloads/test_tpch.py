"""Tests for the TPC-H query Gaifman graphs."""

import pytest

from repro.core.mintriang import min_triangulation
from repro.costs.classic import WidthCost
from repro.workloads.tpch import TPCH_JOINS, tpch_instances, tpch_query_graph


class TestQueryGraphs:
    def test_all_22_queries_present(self):
        assert sorted(TPCH_JOINS) == list(range(1, 23))
        assert len(tpch_instances()) == 22

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            tpch_query_graph(23)

    def test_single_relation_queries(self):
        for q in (1, 6):
            g = tpch_query_graph(q)
            assert g.num_vertices() == 1
            assert g.num_edges() == 0

    def test_q3_is_a_path(self):
        g = tpch_query_graph(3)
        assert g.num_vertices() == 3
        assert g.num_edges() == 2

    def test_q5_has_triangles(self):
        g = tpch_query_graph(5)
        # the nationkey triangle customer-supplier-nation
        assert g.has_edge("C", "S") and g.has_edge("S", "N") and g.has_edge("C", "N")

    def test_all_small(self):
        for name, g in tpch_instances():
            assert g.num_vertices() <= 8, name

    def test_all_enumerable_fast(self):
        """The paper: TPC-H enumeration is 'a matter of a few seconds'."""
        for name, g in tpch_instances():
            result = min_triangulation(g, WidthCost())
            assert result is not None, name
            # Gaifman graphs of acyclic-ish queries have tiny width.
            assert result.width <= 3, name

    def test_q9_cycle_needs_fill(self):
        from repro.costs.classic import FillInCost

        g = tpch_query_graph(9)
        result = min_triangulation(g, FillInCost())
        assert result.cost >= 0
