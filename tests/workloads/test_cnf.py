"""Tests for the CNF workload."""

import pytest

from repro.workloads.cnf import CnfFormula, chain_cnf, random_k_cnf


class TestPrimalGraph:
    def test_clause_becomes_clique(self):
        f = CnfFormula(num_vars=4, clauses=((1, -2, 3),))
        g = f.primal_graph()
        assert g.is_clique({1, 2, 3})
        assert g.degree(4) == 0

    def test_signs_ignored(self):
        a = CnfFormula(num_vars=3, clauses=((1, 2), (-1, -3)))
        b = CnfFormula(num_vars=3, clauses=((-1, -2), (1, 3)))
        assert a.primal_graph() == b.primal_graph()

    def test_dimacs_serialization(self):
        f = CnfFormula(num_vars=3, clauses=((1, -2), (2, 3)))
        text = f.to_dimacs()
        assert text.startswith("p cnf 3 2")
        assert "1 -2 0" in text


class TestRandomKCnf:
    def test_shape(self):
        f = random_k_cnf(num_vars=10, num_clauses=15, k=3, seed=2)
        assert f.num_vars == 10
        assert len(f.clauses) == 15
        assert all(len(c) == 3 for c in f.clauses)
        assert all(len({abs(l) for l in c}) == 3 for c in f.clauses)

    def test_deterministic(self):
        assert random_k_cnf(8, 10, seed=4) == random_k_cnf(8, 10, seed=4)

    def test_width_guard(self):
        with pytest.raises(ValueError):
            random_k_cnf(num_vars=2, num_clauses=1, k=3)


class TestChainCnf:
    def test_overlap_structure(self):
        f = chain_cnf(length=4, overlap=1, k=3)
        assert len(f.clauses) == 4
        # consecutive clauses share exactly one variable
        for a, b in zip(f.clauses, f.clauses[1:]):
            assert len(set(a) & set(b)) == 1

    def test_primal_treewidth_small(self):
        from repro.core.exact import treewidth

        f = chain_cnf(length=5, overlap=1, k=3)
        assert treewidth(f.primal_graph()) == 2  # chain of triangles

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            chain_cnf(3, overlap=0)
        with pytest.raises(ValueError):
            chain_cnf(3, overlap=3, k=3)
