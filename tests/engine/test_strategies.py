"""Engine tests: parallel-vs-serial equivalence and strategy plumbing."""

from __future__ import annotations

import itertools

import pytest

from repro.core.context import TriangulationContext
from repro.core.ranked import ranked_triangulations, top_k_triangulations
from repro.costs.classic import FillInCost, WidthCost
from repro.engine import (
    ExpansionStrategy,
    ProcessPoolStrategy,
    SerialStrategy,
    resolve_engine,
)
from tests.conftest import connected_random_graphs


def ranked_sequence(graph, cost, k, engine=None, context=None):
    """The first ``k`` (cost, bags) pairs — the engine's invariant object."""
    stream = ranked_triangulations(graph, cost, context=context, engine=engine)
    return [
        (r.cost, frozenset(r.triangulation.bags))
        for r in itertools.islice(stream, k)
    ]


class TestParallelSerialEquivalence:
    def test_identical_sequences_k25(self):
        """ProcessPool emits the exact serial sequence (costs AND bags)."""
        for g in connected_random_graphs(9, 0.4, 2, seed_base=9000):
            for cost in (FillInCost(), WidthCost()):
                serial = ranked_sequence(g, cost, 25)
                parallel = ranked_sequence(
                    g, cost, 25, engine=ProcessPoolStrategy(workers=2)
                )
                assert parallel == serial

    def test_equivalence_with_shared_context(self):
        g = connected_random_graphs(8, 0.45, 1, seed_base=9100)[0]
        ctx = TriangulationContext.build(g)
        serial = ranked_sequence(g, FillInCost(), 25, context=ctx)
        parallel = ranked_sequence(
            g, FillInCost(), 25, engine=ProcessPoolStrategy(2), context=ctx
        )
        assert parallel == serial

    def test_equivalence_under_width_bound(self):
        g = connected_random_graphs(8, 0.4, 1, seed_base=9200)[0]
        serial = [
            (r.cost, frozenset(r.triangulation.bags))
            for r in ranked_triangulations(g, FillInCost(), width_bound=3)
        ]
        parallel = [
            (r.cost, frozenset(r.triangulation.bags))
            for r in ranked_triangulations(
                g, FillInCost(), width_bound=3, engine=ProcessPoolStrategy(2)
            )
        ]
        assert parallel == serial

    def test_diverse_top_k_accepts_engine(self, paper_graph):
        from repro.core.diversity import diverse_top_k

        serial = diverse_top_k(paper_graph, WidthCost(), k=2)
        parallel = diverse_top_k(
            paper_graph, WidthCost(), k=2, engine=ProcessPoolStrategy(2)
        )
        assert [t.bags for t in parallel] == [t.bags for t in serial]

    def test_top_k_accepts_engine(self, paper_graph):
        serial = top_k_triangulations(paper_graph, WidthCost(), 2)
        parallel = top_k_triangulations(
            paper_graph, WidthCost(), 2, engine=ProcessPoolStrategy(2)
        )
        assert [t.bags for t in parallel] == [t.bags for t in serial]

    def test_abandoned_stream_closes_pool(self, paper_graph):
        strategy = ProcessPoolStrategy(workers=2)
        stream = ranked_triangulations(paper_graph, WidthCost(), engine=strategy)
        next(stream)
        stream.close()  # GeneratorExit must reach the finally/close
        assert strategy._executor is None

    def test_strategy_instance_is_rebindable(self, paper_graph):
        strategy = ProcessPoolStrategy(workers=2)
        first = ranked_sequence(paper_graph, WidthCost(), 5, engine=strategy)
        second = ranked_sequence(paper_graph, WidthCost(), 5, engine=strategy)
        assert first == second

    def test_overlapping_runs_on_one_instance_rejected(self, paper_graph):
        """A bound strategy refuses a second concurrent enumeration (the
        second bind would silently swap the first run's context/table)."""
        strategy = SerialStrategy()
        first = ranked_triangulations(paper_graph, WidthCost(), engine=strategy)
        next(first)
        second = ranked_triangulations(paper_graph, WidthCost(), engine=strategy)
        with pytest.raises(RuntimeError, match="already bound"):
            next(second)
        first.close()


class TestResolveEngine:
    def test_default_is_serial(self):
        assert isinstance(resolve_engine(None), SerialStrategy)

    def test_names(self):
        assert isinstance(resolve_engine("serial"), SerialStrategy)
        assert isinstance(resolve_engine("process-pool"), ProcessPoolStrategy)
        assert isinstance(resolve_engine("PROCESS"), ProcessPoolStrategy)

    def test_worker_counts(self):
        assert isinstance(resolve_engine(1), SerialStrategy)
        pool = resolve_engine(4)
        assert isinstance(pool, ProcessPoolStrategy)
        assert pool.workers == 4

    def test_instance_passthrough(self):
        strategy = SerialStrategy()
        assert resolve_engine(strategy) is strategy

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_engine("thread-pool")
        with pytest.raises(TypeError):
            resolve_engine(2.5)
        with pytest.raises(TypeError):
            resolve_engine(True)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolStrategy(workers=0)


class TestForkFallback:
    def test_no_fork_falls_back_to_serial(self, paper_graph, monkeypatch):
        import repro.engine.strategy as strategy_mod

        monkeypatch.setattr(
            strategy_mod.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        strategy = ProcessPoolStrategy(workers=2)
        with pytest.warns(RuntimeWarning, match="running serially"):
            results = ranked_sequence(
                paper_graph, WidthCost(), 5, engine=strategy
            )
        assert results == ranked_sequence(paper_graph, WidthCost(), 5)

    def test_no_fork_raises_when_fallback_disabled(self, paper_graph, monkeypatch):
        import repro.engine.strategy as strategy_mod

        monkeypatch.setattr(
            strategy_mod.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        strategy = ProcessPoolStrategy(workers=2, fallback_to_serial=False)
        with pytest.raises(RuntimeError):
            list(
                ranked_triangulations(paper_graph, WidthCost(), engine=strategy)
            )
        # A failed bind must not leave the instance stuck in the bound
        # state: once fork is "back", the same instance works.
        monkeypatch.undo()
        results = ranked_sequence(paper_graph, WidthCost(), 5, engine=strategy)
        assert results == ranked_sequence(paper_graph, WidthCost(), 5)


class TestStrategyContract:
    def test_is_abstract(self):
        with pytest.raises(TypeError):
            ExpansionStrategy()  # type: ignore[abstract]

    def test_public_reexports(self):
        import repro

        assert repro.SerialStrategy is SerialStrategy
        assert repro.ProcessPoolStrategy is ProcessPoolStrategy
        assert repro.resolve_engine is resolve_engine
