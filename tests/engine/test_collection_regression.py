"""Regression guard for the ``test_registry.py`` collection collision.

The seed tree had no ``__init__.py`` under ``tests/``, so pytest's default
rootdir-relative module naming mapped ``tests/costs/test_registry.py`` and
``tests/workloads/test_registry.py`` to the same module name and aborted
collection.  Packages give every test module a unique dotted path; these
tests fail loudly if someone removes one again.
"""

from __future__ import annotations

import importlib
from pathlib import Path

TESTS_ROOT = Path(__file__).resolve().parent.parent


def test_every_test_directory_is_a_package():
    missing = [
        str(directory.relative_to(TESTS_ROOT.parent))
        for directory in [TESTS_ROOT, *TESTS_ROOT.rglob("*")]
        if directory.is_dir()
        and directory.name != "__pycache__"
        and any(p.suffix == ".py" for p in directory.iterdir())
        and not (directory / "__init__.py").exists()
    ]
    assert not missing, (
        f"test directories without __init__.py (collection collision risk): "
        f"{missing}"
    )


def test_duplicate_basenames_import_as_distinct_modules():
    costs = importlib.import_module("tests.costs.test_registry")
    workloads = importlib.import_module("tests.workloads.test_registry")
    assert costs is not workloads
    assert costs.__name__ != workloads.__name__
    assert Path(costs.__file__) != Path(workloads.__file__)
