"""Tests for the ranked-enumeration execution engine."""
