"""Tests for the block → separator containment index and table reuse."""

from __future__ import annotations

import itertools

from repro.core.context import TriangulationContext
from repro.core.mintriang import min_triangulation_and_table
from repro.core.ranked import ranked_triangulations
from repro.costs.classic import FillInCost
from repro.costs.constrained import ConstrainedCost, satisfies_constraints
from tests.conftest import connected_random_graphs


class TestBlocksContaining:
    def test_matches_bruteforce_subset_scan(self):
        """The index answers exactly the old any(s <= block.vertices) scan."""
        for g in connected_random_graphs(8, 0.4, 3, seed_base=9300):
            ctx = TriangulationContext.build(g)
            for s in itertools.islice(sorted(ctx.separators, key=len), 12):
                expected = frozenset(
                    i
                    for i, block in enumerate(ctx.blocks)
                    if s <= block.vertices
                )
                assert ctx.blocks_containing(s) == expected
                # Cached second query returns the same answer.
                assert ctx.blocks_containing(s) == expected

    def test_empty_separator_touches_everything(self):
        g = connected_random_graphs(7, 0.4, 1, seed_base=9400)[0]
        ctx = TriangulationContext.build(g)
        assert ctx.blocks_containing(frozenset()) == frozenset(
            range(len(ctx.blocks))
        )

    def test_foreign_vertex_touches_nothing(self):
        g = connected_random_graphs(7, 0.4, 1, seed_base=9500)[0]
        ctx = TriangulationContext.build(g)
        assert ctx.blocks_containing(frozenset({"not-a-vertex"})) == frozenset()

    def test_touched_blocks_is_union(self):
        g = connected_random_graphs(8, 0.4, 1, seed_base=9600)[0]
        ctx = TriangulationContext.build(g)
        seps = sorted(ctx.separators, key=len)[:4]
        expected = frozenset().union(
            *(ctx.blocks_containing(s) for s in seps)
        )
        assert ctx.touched_blocks(seps) == expected


class TestConstrainedTableReuse:
    def test_reused_table_matches_fresh_run(self):
        """Reusing the unconstrained table under the index never changes the
        constrained optimum — against a fresh full DP as ground truth."""
        cost = FillInCost()
        for g in connected_random_graphs(7, 0.45, 3, seed_base=9700):
            ctx = TriangulationContext.build(g)
            _first, base_table = min_triangulation_and_table(ctx, cost)
            # Real partitions from the enumerator itself: every child
            # (include, exclude) pair it would solve for the first pops.
            partitions = [
                (r.include, r.exclude)
                for r in itertools.islice(ranked_triangulations(g, cost), 6)
            ]
            for include, exclude in partitions:
                if not include and not exclude:
                    continue
                constrained = ConstrainedCost(
                    cost, include=include, exclude=exclude
                )
                reused, _ = min_triangulation_and_table(
                    ctx,
                    constrained,
                    reusable_table=base_table,
                    constraint_separators=include | exclude,
                )
                fresh, _ = min_triangulation_and_table(ctx, constrained)
                assert (reused is None) == (fresh is None)
                if reused is not None:
                    assert reused.cost == fresh.cost
                    assert satisfies_constraints(
                        g, reused.bags, include, exclude
                    )
