"""Tests for the potential-maximal-clique predicate and PMC-local structure."""

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_example_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.pmc.predicate import blocks_of_pmc, is_pmc, minseps_of_pmc
from repro.separators.berry import is_minimal_separator


class TestIsPmc:
    def test_paper_example_pmcs(self, paper_graph):
        # Example 5.2 names two PMCs explicitly.
        assert is_pmc(paper_graph, {"u", "w1", "w2", "w3"})
        assert is_pmc(paper_graph, {"w1", "u", "v"})
        # A minimal separator is never a PMC (its full components violate
        # condition 1).
        assert not is_pmc(paper_graph, {"u", "v"})
        assert not is_pmc(paper_graph, {"w1", "w2", "w3"})

    def test_whole_vertex_set(self):
        # V(G) is a PMC iff G is complete.
        assert is_pmc(complete_graph(4), range(4))
        assert not is_pmc(path_graph(3), range(3))

    def test_empty_not_pmc(self):
        assert not is_pmc(path_graph(3), set())

    def test_singleton(self):
        g = Graph(vertices=[1])
        assert is_pmc(g, {1})
        # A leaf of a path is not a PMC (its neighbor's component is full).
        assert not is_pmc(path_graph(3), {0})

    def test_edges_of_chordal_graph(self):
        # For a chordal graph, PMCs = maximal cliques.
        g = path_graph(4)
        assert is_pmc(g, {1, 2})
        assert not is_pmc(g, {1, 3})

    def test_triangle_in_cycle(self):
        g = cycle_graph(6)
        assert is_pmc(g, {0, 2, 4})
        assert is_pmc(g, {0, 1, 2})  # consecutive triple: N({3,4,5}) covers {0,2}
        assert is_pmc(g, {0, 1, 3})  # covered by N({2}) = {1,3}, N({4,5}) = {0,3}
        # {0,1,2,3}: the pair (0,2) is non-adjacent and no component
        # neighborhood contains both — not completable.
        assert not is_pmc(g, {0, 1, 2, 3})
        # A minimal separator has full components — never a PMC.
        assert not is_pmc(g, {0, 2})


class TestAssociatedStructure:
    def test_minseps_of_pmc(self, paper_graph):
        # Example 5.2: MinSep(Ω) = {S2, S3} for Ω = {w1, u, v}.
        omega = {"w1", "u", "v"}
        assert minseps_of_pmc(paper_graph, omega) == {
            frozenset({"u", "v"}),
            frozenset({"v"}),
        }

    def test_associated_separators_are_minimal(self):
        for seed in range(12):
            g = erdos_renyi(8, 0.35, seed=seed)
            from repro.pmc.oracle import potential_maximal_cliques_bruteforce

            for omega in potential_maximal_cliques_bruteforce(g):
                for s in minseps_of_pmc(g, omega):
                    assert is_minimal_separator(g, s)
                    assert s < omega

    def test_blocks_of_pmc_are_full(self, paper_graph):
        omega = {"w1", "u", "v"}
        for block in blocks_of_pmc(paper_graph, omega):
            assert block.is_full(paper_graph)

    def test_blocks_partition_outside(self, paper_graph):
        omega = frozenset({"u", "w1", "w2", "w3"})
        blocks = blocks_of_pmc(paper_graph, omega)
        union = set()
        for b in blocks:
            union |= b.component
        assert union == paper_graph.vertex_set() - omega
