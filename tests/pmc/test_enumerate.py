"""Tests for the Bouchitté–Todinca PMC enumeration."""

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    petersen_graph,
    star_graph,
    tree_graph,
)
from repro.graphs.graph import Graph
from repro.pmc.enumerate import (
    one_more_vertex,
    potential_maximal_cliques,
    prefix_minimal_separators,
)
from repro.pmc.oracle import potential_maximal_cliques_bruteforce
from repro.separators.berry import SeparatorLimitExceeded, minimal_separators


class TestPrefixSeparators:
    def test_last_entry_is_full_set(self):
        g = grid_graph(3, 3)
        order = g.bfs_order()
        per_prefix = prefix_minimal_separators(g, order)
        assert per_prefix[-1] == minimal_separators(g)

    def test_each_prefix_matches_direct_computation(self):
        for seed in range(10):
            g = erdos_renyi(8, 0.4, seed=seed)
            order = g.bfs_order()
            per_prefix = prefix_minimal_separators(g, order)
            for i in range(1, len(order) + 1):
                sub = g.subgraph(order[:i])
                assert per_prefix[i - 1] == minimal_separators(sub), (seed, i)

    def test_empty_graph(self):
        assert prefix_minimal_separators(Graph(), []) == []


class TestEnumeration:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(1),
            path_graph(6),
            complete_graph(4),
            star_graph(4),
            cycle_graph(4),
            cycle_graph(7),
            grid_graph(2, 4),
            grid_graph(3, 3),
            tree_graph(9, seed=5),
            paper_example_graph(),
            petersen_graph(),
        ],
    )
    def test_structured_graphs_match_bruteforce(self, graph):
        assert potential_maximal_cliques(graph) == potential_maximal_cliques_bruteforce(
            graph
        )

    def test_random_graphs_match_bruteforce(self):
        for n, p, count in [(7, 0.3, 25), (8, 0.4, 20), (9, 0.25, 10), (9, 0.6, 10)]:
            for seed in range(count):
                g = erdos_renyi(n, p, seed=seed * 13 + n)
                assert potential_maximal_cliques(
                    g
                ) == potential_maximal_cliques_bruteforce(g), (n, p, seed)

    def test_disconnected(self):
        g = Graph(edges=[(1, 2), (3, 4), (4, 5)])
        assert potential_maximal_cliques(g) == potential_maximal_cliques_bruteforce(g)

    def test_precomputed_separators_accepted(self):
        g = cycle_graph(6)
        seps = minimal_separators(g)
        assert potential_maximal_cliques(g, separators=seps) == (
            potential_maximal_cliques_bruteforce(g)
        )

    def test_cycle_pmc_count(self):
        # PMCs of C_n: the n "path triples" {i-1, i, i+1} plus the
        # "spread" triples — for C_6: 6 consecutive + 2·... exact count by
        # brute force; the point is enumeration matches and is nontrivial.
        g = cycle_graph(6)
        pmcs = potential_maximal_cliques(g)
        assert len(pmcs) == len(potential_maximal_cliques_bruteforce(g))
        assert all(len(om) == 3 for om in pmcs)

    def test_custom_order(self):
        g = grid_graph(2, 3)
        order = sorted(g.vertices)
        assert potential_maximal_cliques(g, order=order) == (
            potential_maximal_cliques_bruteforce(g)
        )

    def test_budget(self):
        g = erdos_renyi(12, 0.35, seed=1)
        with pytest.raises(SeparatorLimitExceeded):
            potential_maximal_cliques(g, budget=2)

    def test_empty_graph(self):
        assert potential_maximal_cliques(Graph()) == set()


class TestOneMoreVertex:
    def test_single_step(self):
        # G' = path 0-1, add vertex 2 adjacent to 1 → path 0-1-2.
        bigger = path_graph(3)
        pmcs = one_more_vertex(
            bigger,
            2,
            pmcs_smaller={frozenset({0, 1})},
            minseps_smaller=set(),
            minseps_bigger=minimal_separators(bigger),
        )
        assert pmcs == {frozenset({0, 1}), frozenset({1, 2})}


class TestOracle:
    def test_size_guard(self):
        with pytest.raises(ValueError):
            potential_maximal_cliques_bruteforce(erdos_renyi(20, 0.2, seed=0))
