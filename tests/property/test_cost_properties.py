"""Property-based tests for the cost-function layer."""

from hypothesis import given, settings, strategies as st

from repro.costs.classic import FillInCost, LexWidthFillCost, WidthCost
from repro.costs.constrained import ConstrainedCost
from repro.costs.weighted import WeightedFillCost, WeightedWidthCost
from repro.graphs.chordal import maximal_cliques_chordal
from repro.graphs.graph import Graph
from repro.triangulation.lb_triang import lb_triang


@st.composite
def graph_with_triangulation(draw, max_n=9):
    n = draw(st.integers(2, max_n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.sets(st.sampled_from(pairs)) if pairs else st.just(set()))
    g = Graph(vertices=range(n), edges=edges)
    return g, lb_triang(g)


@settings(max_examples=50, deadline=None)
@given(graph_with_triangulation())
def test_fill_cost_equals_edge_difference(gt):
    g, h = gt
    bags = maximal_cliques_chordal(h)
    assert FillInCost().evaluate(g, bags) == h.num_edges() - g.num_edges()


@settings(max_examples=50, deadline=None)
@given(graph_with_triangulation())
def test_width_cost_equals_clique_number(gt):
    g, h = gt
    bags = maximal_cliques_chordal(h)
    assert WidthCost().evaluate(g, bags) == max(len(b) for b in bags) - 1


@settings(max_examples=50, deadline=None)
@given(graph_with_triangulation())
def test_weighted_specializations_match_classics(gt):
    g, h = gt
    bags = maximal_cliques_chordal(h)
    assert WeightedWidthCost(lambda b: float(len(b) - 1)).evaluate(
        g, bags
    ) == WidthCost().evaluate(g, bags)
    assert WeightedFillCost(lambda u, v: 1.0).evaluate(
        g, bags
    ) == FillInCost().evaluate(g, bags)


@settings(max_examples=50, deadline=None)
@given(graph_with_triangulation())
def test_lex_cost_decomposes(gt):
    g, h = gt
    bags = maximal_cliques_chordal(h)
    cost = LexWidthFillCost(g, scale=10_000)
    total = cost.evaluate(g, bags)
    width = WidthCost().evaluate(g, bags)
    fill = FillInCost().evaluate(g, bags)
    assert total == 10_000 * width + fill


@settings(max_examples=50, deadline=None)
@given(graph_with_triangulation())
def test_unconstrained_wrapper_is_transparent(gt):
    g, h = gt
    bags = maximal_cliques_chordal(h)
    base = FillInCost()
    assert ConstrainedCost(base).evaluate(g, bags) == base.evaluate(g, bags)


@settings(max_examples=50, deadline=None)
@given(graph_with_triangulation())
def test_satisfied_constraints_do_not_change_value(gt):
    g, h = gt
    bags = list(maximal_cliques_chordal(h))
    base = FillInCost()
    # Every bag of the triangulation is a clique of H_T: including any bag
    # as an inclusion constraint must be satisfied.
    cost = ConstrainedCost(base, include=[frozenset(bags[0])])
    assert cost.evaluate(g, bags) == base.evaluate(g, bags)
