"""Differential tests: the bitset kernel is *exact* w.r.t. the set kernel.

The whole point of ranked enumeration is a bit-for-bit ordered output
stream, so the dense bitset kernel is only admissible if it is
observationally identical to the label-level reference.  These tests
generate random graphs (Hypothesis plus a fixed corpus — well over 200
cases per run) and assert that both kernels produce

* identical minimal-separator sets,
* identical potential-maximal-clique sets,
* identical crossing-relation answers, and
* **identical ordered ranked-enumeration prefixes** — same costs, same
  bag sets, same sequence positions, under two different cost specs.
"""

from hypothesis import given, settings, strategies as st

from repro.api import Session
from repro.core.context import TriangulationContext
from repro.graphs.graph import Graph
from repro.pmc.enumerate import potential_maximal_cliques
from repro.separators.berry import minimal_separators
from repro.separators.crossing import SeparatorFamily

from ..conftest import connected_random_graphs


@st.composite
def small_graphs(draw, min_n=2, max_n=12):
    """Random undirected graphs as (n, edge set)."""
    n = draw(st.integers(min_n, max_n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.sets(st.sampled_from(pairs)) if pairs else st.just(set()))
    return Graph(vertices=range(n), edges=edges)


def ranked_prefix(graph, cost, kernel, k):
    """The first ``k`` answers as comparable (cost, bags) pairs."""
    response = Session(kernel=kernel).top(graph, cost, k=k)
    return [(r.cost, r.triangulation.bags) for r in response.results]


# ---------------------------------------------------------------------------
# Structure equivalence
# ---------------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(small_graphs(max_n=12))
def test_minimal_separator_sets_identical(g):
    assert minimal_separators(g, kernel="sets") == minimal_separators(
        g, kernel="bitset"
    )


@settings(max_examples=60, deadline=None)
@given(small_graphs(max_n=10))
def test_pmc_sets_identical(g):
    seps = minimal_separators(g)
    assert potential_maximal_cliques(
        g, separators=seps, kernel="sets"
    ) == potential_maximal_cliques(g, separators=seps, kernel="bitset")


@settings(max_examples=40, deadline=None)
@given(small_graphs(max_n=10))
def test_crossing_relation_identical(g):
    from repro.graphs.bitgraph import BitGraph

    seps = sorted(minimal_separators(g), key=sorted)
    plain = SeparatorFamily(g, seps)
    bitset = SeparatorFamily(g, seps, bitgraph=BitGraph.from_graph(g))
    for i, s in enumerate(seps):
        for t in seps[i + 1 :]:
            assert plain.crosses(s, t) == bitset.crosses(s, t)


# ---------------------------------------------------------------------------
# Ranked-order equivalence (the paper's contract: ordered, duplicate-free)
# ---------------------------------------------------------------------------
@settings(max_examples=160, deadline=None)
@given(small_graphs(max_n=9), st.sampled_from(["fill", "width"]))
def test_ranked_prefix_identical_random(g, cost):
    if not g.is_connected():
        # Ranked enumeration requires connectivity; keep the case by
        # enumerating the largest component instead of discarding it.
        g = g.subgraph(max(g.connected_components(), key=len))
    assert ranked_prefix(g, cost, "sets", 8) == ranked_prefix(
        g, cost, "bitset", 8
    )


def test_ranked_prefix_identical_corpus(small_graph_zoo):
    # A fixed, deterministic sweep on top of the Hypothesis cases: every
    # zoo graph under both cost specs, deeper prefixes (k=12).
    corpus = list(small_graph_zoo)
    corpus.extend(connected_random_graphs(9, 0.35, 6, seed_base=900))
    corpus.extend(connected_random_graphs(10, 0.25, 4, seed_base=950))
    checked = 0
    for g in corpus:
        for cost in ("fill", "width"):
            assert ranked_prefix(g, cost, "sets", 12) == ranked_prefix(
                g, cost, "bitset", 12
            )
            checked += 1
    assert checked >= 40


def test_full_enumeration_identical_with_width_bound():
    for g in connected_random_graphs(8, 0.4, 4, seed_base=1200):
        sequences = []
        for kernel in ("sets", "bitset"):
            with Session(kernel=kernel).stream(
                g, "fill", width_bound=4
            ) as stream:
                sequences.append(
                    [(r.cost, r.triangulation.bags) for r in stream]
                )
        assert sequences[0] == sequences[1]


def test_contexts_structurally_identical():
    # Same separators, PMCs, blocks (in the same order), and the same
    # block -> candidate-PMC lists — the DP inputs match exactly.
    for g in connected_random_graphs(9, 0.4, 4, seed_base=1300):
        ctx_sets = TriangulationContext.build(g, kernel="sets")
        ctx_bits = TriangulationContext.build(g, kernel="bitset")
        assert ctx_sets.kernel == "sets" and ctx_bits.kernel == "bitset"
        assert ctx_sets.separators == ctx_bits.separators
        assert ctx_sets.pmcs == ctx_bits.pmcs
        assert ctx_sets.blocks == ctx_bits.blocks
        assert ctx_sets.pmc_index == ctx_bits.pmc_index
        assert ctx_sets.root_pmc_order() == ctx_bits.root_pmc_order()


def test_children_of_identical_across_kernels():
    for g in connected_random_graphs(8, 0.45, 3, seed_base=1400):
        ctx_sets = TriangulationContext.build(g, kernel="sets")
        ctx_bits = TriangulationContext.build(g, kernel="bitset")
        for omega in ctx_sets.root_pmc_order():
            assert sorted(
                ctx_sets.children_of(None, omega), key=repr
            ) == sorted(ctx_bits.children_of(None, omega), key=repr)
        for block in ctx_sets.blocks:
            for omega in ctx_sets.pmc_index[block][:3]:
                assert sorted(
                    ctx_sets.children_of(block, omega), key=repr
                ) == sorted(ctx_bits.children_of(block, omega), key=repr)
