"""Differential tests: every fast kernel is *exact* w.r.t. the set kernel.

The whole point of ranked enumeration is a bit-for-bit ordered output
stream, so a mask-level kernel (``bitset``, ``numpy``, or anything
third-party code registers) is only admissible if it is observationally
identical to the label-level reference.  These tests generate random
graphs (Hypothesis plus a fixed corpus — well over 200 cases per run)
and assert, for every registered kernel other than ``sets``,

* identical minimal-separator sets,
* identical potential-maximal-clique sets,
* identical crossing-relation answers, and
* **identical ordered ranked-enumeration prefixes** — same costs, same
  bag sets, same sequence positions, under two different cost specs.

The parametrization is registry-driven: ``numpy`` rows are skip-marked
when the import probe fails (or ``REPRO_DISABLE_NUMPY`` is set), and any
extra kernel registered before collection is swept automatically.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Session
from repro.core.context import TriangulationContext
from repro.graphs.graph import Graph
from repro.graphs.kernels import available_kernels, resolve_kernel
from repro.pmc.enumerate import potential_maximal_cliques
from repro.separators.berry import minimal_separators
from repro.separators.crossing import SeparatorFamily

from ..conftest import connected_random_graphs


def _fast_kernel_params():
    """Every registered non-oracle kernel, skip-marked when unavailable."""
    avail = available_kernels()
    params = [pytest.param("bitset", id="bitset")]
    params.append(
        pytest.param(
            "numpy",
            id="numpy",
            marks=pytest.mark.skipif(
                "numpy" not in avail,
                reason="numpy kernel unavailable (not importable or disabled)",
            ),
        )
    )
    params.extend(
        pytest.param(name, id=name)
        for name in avail
        if name not in ("sets", "bitset", "numpy")
    )
    return params


FAST_KERNELS = _fast_kernel_params()
fast_kernels = pytest.mark.parametrize("kernel", FAST_KERNELS)


@st.composite
def small_graphs(draw, min_n=2, max_n=12):
    """Random undirected graphs as (n, edge set)."""
    n = draw(st.integers(min_n, max_n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.sets(st.sampled_from(pairs)) if pairs else st.just(set()))
    return Graph(vertices=range(n), edges=edges)


def ranked_prefix(graph, cost, kernel, k):
    """The first ``k`` answers as comparable (cost, bags) pairs."""
    response = Session(kernel=kernel).top(graph, cost, k=k)
    return [(r.cost, r.triangulation.bags) for r in response.results]


# ---------------------------------------------------------------------------
# Structure equivalence
# ---------------------------------------------------------------------------
@fast_kernels
@settings(max_examples=80, deadline=None)
@given(g=small_graphs(max_n=12))
def test_minimal_separator_sets_identical(kernel, g):
    assert minimal_separators(g, kernel="sets") == minimal_separators(
        g, kernel=kernel
    )


@fast_kernels
@settings(max_examples=60, deadline=None)
@given(g=small_graphs(max_n=10))
def test_pmc_sets_identical(kernel, g):
    seps = minimal_separators(g)
    assert potential_maximal_cliques(
        g, separators=seps, kernel="sets"
    ) == potential_maximal_cliques(g, separators=seps, kernel=kernel)


@fast_kernels
@settings(max_examples=40, deadline=None)
@given(g=small_graphs(max_n=10))
def test_crossing_relation_identical(kernel, g):
    spec = resolve_kernel(kernel)
    seps = sorted(minimal_separators(g), key=sorted)
    plain = SeparatorFamily(g, seps)
    masked = SeparatorFamily(g, seps, bitgraph=spec.build_graph(g))
    for i, s in enumerate(seps):
        for t in seps[i + 1 :]:
            assert plain.crosses(s, t) == masked.crosses(s, t)


# ---------------------------------------------------------------------------
# Ranked-order equivalence (the paper's contract: ordered, duplicate-free)
# ---------------------------------------------------------------------------
@fast_kernels
@settings(max_examples=160, deadline=None)
@given(g=small_graphs(max_n=9), cost=st.sampled_from(["fill", "width"]))
def test_ranked_prefix_identical_random(kernel, g, cost):
    if not g.is_connected():
        # Ranked enumeration requires connectivity; keep the case by
        # enumerating the largest component instead of discarding it.
        g = g.subgraph(max(g.connected_components(), key=len))
    assert ranked_prefix(g, cost, "sets", 8) == ranked_prefix(
        g, cost, kernel, 8
    )


@fast_kernels
def test_ranked_prefix_identical_corpus(small_graph_zoo, kernel):
    # A fixed, deterministic sweep on top of the Hypothesis cases: every
    # zoo graph under both cost specs, deeper prefixes (k=12).
    corpus = list(small_graph_zoo)
    corpus.extend(connected_random_graphs(9, 0.35, 6, seed_base=900))
    corpus.extend(connected_random_graphs(10, 0.25, 4, seed_base=950))
    checked = 0
    for g in corpus:
        for cost in ("fill", "width"):
            assert ranked_prefix(g, cost, "sets", 12) == ranked_prefix(
                g, cost, kernel, 12
            )
            checked += 1
    assert checked >= 40


@fast_kernels
def test_full_enumeration_identical_with_width_bound(kernel):
    for g in connected_random_graphs(8, 0.4, 4, seed_base=1200):
        sequences = []
        for k in ("sets", kernel):
            with Session(kernel=k).stream(
                g, "fill", width_bound=4
            ) as stream:
                sequences.append(
                    [(r.cost, r.triangulation.bags) for r in stream]
                )
        assert sequences[0] == sequences[1]


@fast_kernels
def test_contexts_structurally_identical(kernel):
    # Same separators, PMCs, blocks (in the same order), and the same
    # block -> candidate-PMC lists — the DP inputs match exactly.
    for g in connected_random_graphs(9, 0.4, 4, seed_base=1300):
        ctx_sets = TriangulationContext.build(g, kernel="sets")
        ctx_fast = TriangulationContext.build(g, kernel=kernel)
        assert ctx_sets.kernel == "sets" and ctx_fast.kernel == kernel
        assert ctx_sets.separators == ctx_fast.separators
        assert ctx_sets.pmcs == ctx_fast.pmcs
        assert ctx_sets.blocks == ctx_fast.blocks
        assert ctx_sets.pmc_index == ctx_fast.pmc_index
        assert ctx_sets.root_pmc_order() == ctx_fast.root_pmc_order()


@fast_kernels
def test_children_of_identical_across_kernels(kernel):
    for g in connected_random_graphs(8, 0.45, 3, seed_base=1400):
        ctx_sets = TriangulationContext.build(g, kernel="sets")
        ctx_fast = TriangulationContext.build(g, kernel=kernel)
        for omega in ctx_sets.root_pmc_order():
            assert sorted(
                ctx_sets.children_of(None, omega), key=repr
            ) == sorted(ctx_fast.children_of(None, omega), key=repr)
        for block in ctx_sets.blocks:
            for omega in ctx_sets.pmc_index[block][:3]:
                assert sorted(
                    ctx_sets.children_of(block, omega), key=repr
                ) == sorted(ctx_fast.children_of(block, omega), key=repr)


# ---------------------------------------------------------------------------
# Batched-scale equivalence: instances big enough that the numpy kernel's
# whole-array paths (above its scalar cutoff) actually engage.
# ---------------------------------------------------------------------------
@fast_kernels
def test_batched_scale_structures_identical(kernel):
    from repro.graphs.generators import connected_erdos_renyi, grid_graph

    for g in (
        grid_graph(4, 4),
        connected_erdos_renyi(16, 0.3, seed=77),
    ):
        seps_sets = minimal_separators(g, kernel="sets")
        seps_fast = minimal_separators(g, kernel=kernel)
        assert seps_sets == seps_fast
        pmcs_sets = potential_maximal_cliques(
            g, separators=seps_sets, kernel="sets"
        )
        pmcs_fast = potential_maximal_cliques(
            g, separators=seps_fast, kernel=kernel
        )
        assert pmcs_sets == pmcs_fast
        assert ranked_prefix(g, "fill", "sets", 5) == ranked_prefix(
            g, "fill", kernel, 5
        )
