"""Property-based tests for triangulation construction."""

from hypothesis import given, settings, strategies as st

from repro.graphs.chordal import is_chordal, maximal_cliques_chordal
from repro.graphs.graph import Graph
from repro.pmc.predicate import is_pmc
from repro.triangulation.lb_triang import lb_triang
from repro.triangulation.mcs_m import mcs_m
from repro.triangulation.minimality import is_minimal_triangulation
from repro.triangulation.saturate import minimal_separators_of_triangulation


@st.composite
def small_graphs(draw, min_n=2, max_n=9):
    n = draw(st.integers(min_n, max_n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.sets(st.sampled_from(pairs)) if pairs else st.just(set()))
    return Graph(vertices=range(n), edges=edges)


@settings(max_examples=50, deadline=None)
@given(small_graphs())
def test_lb_triang_minimal(g):
    h = lb_triang(g)
    assert is_minimal_triangulation(g, h)


@settings(max_examples=50, deadline=None)
@given(small_graphs())
def test_mcs_m_minimal(g):
    h, _meo = mcs_m(g)
    assert is_minimal_triangulation(g, h)


@settings(max_examples=50, deadline=None)
@given(small_graphs())
def test_triangulators_agree_on_chordal_inputs(g):
    if not is_chordal(g):
        return
    assert lb_triang(g) == g
    assert mcs_m(g)[0] == g


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_maximal_cliques_of_triangulation_are_pmcs(g):
    """Definition of PMC: maximal cliques of minimal triangulations."""
    h = lb_triang(g)
    for clique in maximal_cliques_chordal(h):
        assert is_pmc(g, clique)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_triangulation_separator_count(g):
    """A chordal graph on n vertices has at most n-1 minimal separators
    (clique-tree adhesions)."""
    h = lb_triang(g)
    seps = minimal_separators_of_triangulation(h)
    assert len(seps) <= max(g.num_vertices() - 1, 0)
