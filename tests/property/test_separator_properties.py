"""Property-based tests (hypothesis) for the separator machinery."""

from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.separators.berry import (
    full_components,
    is_minimal_separator,
    minimal_separators,
)
from repro.separators.crossing import SeparatorFamily, crosses


@st.composite
def small_graphs(draw, min_n=2, max_n=9):
    """Random undirected graphs as (n, edge set)."""
    n = draw(st.integers(min_n, max_n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.sets(st.sampled_from(pairs)) if pairs else st.just(set()))
    g = Graph(vertices=range(n), edges=edges)
    return g


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_separators_have_two_full_components(g):
    for s in minimal_separators(g):
        assert len(full_components(g, s)) >= 2


@settings(max_examples=60, deadline=None)
@given(small_graphs())
def test_separator_never_contains_whole_component_neighborhood_violation(g):
    # Removing a minimal separator strictly disconnects its full components.
    for s in minimal_separators(g):
        comps = g.components_without(s)
        assert len(comps) >= 2


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_crossing_symmetry(g):
    seps = sorted(minimal_separators(g), key=sorted)
    for i, s in enumerate(seps):
        for t in seps[i + 1 :]:
            assert crosses(g, s, t) == crosses(g, t, s)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_family_cache_agrees_with_direct(g):
    seps = sorted(minimal_separators(g), key=sorted)
    family = SeparatorFamily(g, seps)
    for i, s in enumerate(seps):
        for t in seps[i + 1 :]:
            assert family.crosses(s, t) == crosses(g, s, t)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_extension_is_maximal_and_parallel(g):
    seps = sorted(minimal_separators(g), key=sorted)
    if not seps:
        return
    family = SeparatorFamily(g, seps)
    maximal = family.extend_to_maximal([])
    assert family.is_pairwise_parallel(maximal)
    for s in set(seps) - maximal:
        assert any(family.crosses(s, t) for t in maximal)


@settings(max_examples=40, deadline=None)
@given(small_graphs())
def test_bbc_outputs_are_minimal_separators(g):
    for s in minimal_separators(g):
        assert is_minimal_separator(g, s)
        # minimality: no proper subset obtained by dropping one vertex
        # remains a separator with the same separated pair structure.
        for v in s:
            smaller = s - {v}
            if smaller:
                assert not (
                    is_minimal_separator(g, smaller) and smaller == s
                )
