"""Property-based round-trip tests for graph IO."""

from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.graphs.io import parse_dimacs, parse_gr, to_dimacs, to_gr


@st.composite
def labelled_graphs(draw, max_n=12):
    n = draw(st.integers(1, max_n))
    pairs = [(a, b) for a in range(1, n + 1) for b in range(a + 1, n + 1)]
    edges = draw(st.sets(st.sampled_from(pairs)) if pairs else st.just(set()))
    return Graph(vertices=range(1, n + 1), edges=edges)


@settings(max_examples=60, deadline=None)
@given(labelled_graphs())
def test_gr_round_trip_preserves_structure(g):
    back = parse_gr(to_gr(g))
    assert back.num_vertices() == g.num_vertices()
    assert back.num_edges() == g.num_edges()
    # vertices are renumbered 1..n in insertion order; with integer labels
    # already 1..n the structure must be identical
    assert back == g


@settings(max_examples=60, deadline=None)
@given(labelled_graphs())
def test_dimacs_round_trip_preserves_structure(g):
    back = parse_dimacs(to_dimacs(g))
    assert back == g


@settings(max_examples=30, deadline=None)
@given(labelled_graphs(max_n=8))
def test_formats_agree(g):
    via_gr = parse_gr(to_gr(g))
    via_col = parse_dimacs(to_dimacs(g))
    assert via_gr == via_col
