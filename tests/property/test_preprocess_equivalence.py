"""Differential harness: preprocessed vs direct ranked enumeration.

The proof obligation of the preprocessing subsystem (ISSUE 4): for every
graph and every composable cost, the pipeline
``reduce → atoms → per-atom ranked streams → recomposition merge`` must
emit *the same ranked sequence* as the direct Lawler–Murty enumerator —
same length, same cost at every rank, and within every maximal run of
equal-cost answers the same set of triangulations (the order inside a
tie run is each pipeline's own deterministic tie-break; it is pinned
per-pipeline by the golden corpus).

Hypothesis generates adversarial graphs *biased toward decomposability*
— trees of glued pieces (cycles, cliques, random blobs) that exercise
cut vertices, clique separators, simplicial fringes and disconnected
inputs — plus raw G(n, p) samples.  Across the parametrized cost specs,
kernels and deterministic corpus cases this suite checks well over 200
generated instances per run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.graphs.generators import (
    bowtie_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    ring_of_cycles,
    star_graph,
    tree_graph,
    tree_of_cliques,
)
from repro.graphs.graph import Graph
from tests.conftest import assert_equivalent_ranked

pytestmark = pytest.mark.preprocess

#: Cost specs with a declared composition (see repro.preprocess.recompose).
COMPOSABLE_COSTS = ("width", "fill", "sum-exp-bags")
#: Cap on drained answers per stream — full product spaces explode.
ANSWER_CAP = 80


def ranked_signature(session: Session, graph: Graph, cost: str, **kw):
    """The first ``ANSWER_CAP`` (cost, bag set) pairs of a ranked stream."""
    stream = session.stream(graph, cost, **kw)
    out = []
    try:
        for result in stream:
            out.append((result.cost, frozenset(result.triangulation.bags)))
            if len(out) >= ANSWER_CAP:
                break
    finally:
        stream.close()
    return out


def assert_pipelines_agree(graph: Graph, cost: str, kernel: str = "bitset", **kw):
    on = Session(kernel=kernel, preprocess=True)
    off = Session(kernel=kernel, preprocess=False)
    if not graph.is_connected():
        # The direct pipeline rejects disconnected graphs; compare the
        # preprocessed stream against the component-product reference
        # computed by the brute-force path instead (covered in
        # tests/preprocess/test_recompose.py).  Here: connected only.
        pytest.skip("direct pipeline needs a connected graph")
    a = ranked_signature(on, graph, cost, **kw)
    b = ranked_signature(off, graph, cost, **kw)
    # At the answer cap the final tie run may be cut mid-way on each
    # side; the shared checker skips its (undefined) set comparison.
    assert_equivalent_ranked(a, b, truncated=len(a) >= ANSWER_CAP)


# ----------------------------------------------------------------------
# Hypothesis generators: trees of glued pieces
# ----------------------------------------------------------------------
def _apply_piece(graph: Graph, kind: int, anchor, labels):
    """Attach one piece at ``anchor`` using fresh ``labels``."""
    if kind == 0:  # path
        chain = [anchor, *labels]
        for a, b in zip(chain, chain[1:]):
            graph.add_edge(a, b)
    elif kind == 1:  # cycle through the anchor
        ring = [anchor, *labels]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            graph.add_edge(a, b)
    elif kind == 2:  # clique on the anchor
        members = [anchor, *labels]
        for v in members:
            graph.add_vertex(v)
        graph.saturate(members)
    else:  # near-clique blob: clique minus one edge
        members = [anchor, *labels]
        for v in members:
            graph.add_vertex(v)
        graph.saturate(members)
        if len(labels) >= 2:
            graph.remove_edge(labels[0], labels[1])


@st.composite
def glued_graphs(draw):
    """A connected graph built by gluing 1..5 small pieces at cut points.

    Every piece boundary is a cut vertex — a 1-clique separator — so
    these graphs are rich in atoms; clique pieces additionally produce
    simplicial fringes for the reduction rules.
    """
    graph = Graph(vertices=[0])
    next_label = 1
    pieces = draw(st.integers(min_value=1, max_value=5))
    for _ in range(pieces):
        kind = draw(st.integers(min_value=0, max_value=3))
        size = draw(st.integers(min_value=1, max_value=4))
        anchors = sorted(graph.vertices)
        anchor = anchors[draw(st.integers(0, len(anchors) - 1))]
        labels = list(range(next_label, next_label + size))
        next_label += size
        _apply_piece(graph, kind, anchor, labels)
    return graph


@st.composite
def gnp_graphs(draw):
    """Connected G(n, p) samples (retry over seeds; deterministic)."""
    n = draw(st.integers(min_value=2, max_value=9))
    p = draw(st.sampled_from((0.25, 0.35, 0.5)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    for s in range(seed, seed + 30):
        g = erdos_renyi(n, p, seed=s)
        if g.is_connected():
            return g
    return path_graph(n)  # vanishing-probability fallback


# ----------------------------------------------------------------------
# The differential properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cost", COMPOSABLE_COSTS)
@settings(max_examples=60, deadline=None)
@given(graph=glued_graphs())
def test_glued_graphs_equivalent(graph, cost):
    assert_pipelines_agree(graph, cost)


@pytest.mark.parametrize("cost", ("width", "fill"))
@settings(max_examples=40, deadline=None)
@given(graph=gnp_graphs())
def test_random_graphs_equivalent(graph, cost):
    assert_pipelines_agree(graph, cost)


@settings(max_examples=25, deadline=None)
@given(graph=glued_graphs(), bound=st.integers(min_value=1, max_value=4))
def test_width_bound_equivalent(graph, bound):
    """MinTriangB mode: both pipelines restrict to width <= bound."""
    assert_pipelines_agree(graph, "width", width_bound=bound)


@pytest.mark.parametrize("kernel", ["sets", "bitset"])
@settings(max_examples=20, deadline=None)
@given(graph=glued_graphs())
def test_both_kernels_equivalent(graph, kernel):
    """The composed pipeline is kernel-invariant, like the direct one."""
    assert_pipelines_agree(graph, "fill", kernel=kernel)


@settings(max_examples=30, deadline=None)
@given(graph=glued_graphs())
def test_composed_resume_is_exact(graph):
    """Pause/resume of a preprocessed stream continues bit-for-bit —
    including the rank and the exact within-tie order this time."""
    session = Session()
    full = []
    stream = session.stream(graph, "fill")
    try:
        for result in stream:
            full.append((result.rank, result.cost,
                         frozenset(result.triangulation.bags)))
            if len(full) >= ANSWER_CAP:
                break
    finally:
        stream.close()
    pause = len(full) // 2
    stream = session.stream(graph, "fill")
    head = []
    try:
        for result in stream:
            head.append((result.rank, result.cost,
                         frozenset(result.triangulation.bags)))
            if len(head) >= pause:
                break
        token = stream.checkpoint().to_bytes()
    finally:
        stream.close()
    resumed = session.resume_stream(token)
    tail = []
    try:
        for result in resumed:
            tail.append((result.rank, result.cost,
                         frozenset(result.triangulation.bags)))
            if len(head) + len(tail) >= len(full):
                break
    finally:
        resumed.close()
    assert head + tail == full


# ----------------------------------------------------------------------
# Deterministic corpus (always-run anchors for the generated cases)
# ----------------------------------------------------------------------
CORPUS = [
    paper_example_graph(),
    path_graph(6),
    star_graph(5),
    cycle_graph(6),
    tree_graph(9, seed=2),
    grid_graph(3, 3),
    bowtie_graph(4),
    tree_of_cliques(5, 3),
    ring_of_cycles(2, 5),
    ring_of_cycles(3, 4),
    # 625 answers in one all-equal-cost tie run under fill: exercises
    # the ANSWER_CAP truncation guard of the shared checker.
    ring_of_cycles(4, 5),
]


@pytest.mark.parametrize("cost", COMPOSABLE_COSTS)
@pytest.mark.parametrize("index", range(len(CORPUS)))
def test_corpus_equivalent(index, cost):
    assert_pipelines_agree(CORPUS[index], cost)


@pytest.mark.parametrize("cost", COMPOSABLE_COSTS)
def test_corpus_equivalent_sets_kernel(cost):
    for graph in CORPUS[:6]:
        assert_pipelines_agree(graph, cost, kernel="sets")
