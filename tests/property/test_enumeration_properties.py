"""Property-based tests for the enumeration stack (connected graphs)."""

from hypothesis import given, settings, strategies as st

from repro.baselines.brute import minimal_triangulations_via_mis
from repro.baselines.ckk import ckk_enumeration
from repro.core.ranked import ranked_triangulations
from repro.costs.classic import FillInCost, WidthCost
from repro.graphs.graph import Graph
from repro.pmc.enumerate import potential_maximal_cliques
from repro.pmc.oracle import potential_maximal_cliques_bruteforce
from repro.triangulation.minimality import is_minimal_triangulation


@st.composite
def connected_graphs(draw, min_n=2, max_n=8):
    """Random connected graphs: a random tree plus random extra edges."""
    n = draw(st.integers(min_n, max_n))
    edges = set()
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.add((u, v))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    extra = draw(st.sets(st.sampled_from(pairs)))
    edges |= extra
    return Graph(vertices=range(n), edges=edges)


def fill_key(graph, h):
    return frozenset(
        frozenset(e) for e in h.edges() if not graph.has_edge(*e)
    )


@settings(max_examples=30, deadline=None)
@given(connected_graphs())
def test_pmc_enumeration_matches_oracle(g):
    assert potential_maximal_cliques(g) == potential_maximal_cliques_bruteforce(g)


@settings(max_examples=20, deadline=None)
@given(connected_graphs(max_n=7))
def test_ranked_complete_sorted_duplicate_free(g):
    expected = {fill_key(g, h) for h in minimal_triangulations_via_mis(g)}
    seen = []
    costs = []
    for r in ranked_triangulations(g, FillInCost()):
        seen.append(fill_key(g, r.triangulation.chordal_graph))
        costs.append(r.cost)
        assert is_minimal_triangulation(g, r.triangulation.chordal_graph)
    assert len(seen) == len(set(seen))
    assert set(seen) == expected
    assert costs == sorted(costs)


@settings(max_examples=15, deadline=None)
@given(connected_graphs(max_n=7))
def test_ckk_complete_duplicate_free(g):
    expected = {fill_key(g, h) for h in minimal_triangulations_via_mis(g)}
    seen = [fill_key(g, r.triangulation) for r in ckk_enumeration(g)]
    assert len(seen) == len(set(seen))
    assert set(seen) == expected


@settings(max_examples=15, deadline=None)
@given(connected_graphs(max_n=7), st.integers(1, 4))
def test_bounded_enumeration_is_filtered_enumeration(g, bound):
    full = {
        fill_key(g, r.triangulation.chordal_graph)
        for r in ranked_triangulations(g, WidthCost())
        if r.triangulation.width <= bound
    }
    bounded = {
        fill_key(g, r.triangulation.chordal_graph)
        for r in ranked_triangulations(g, WidthCost(), width_bound=bound)
    }
    assert bounded == full
