"""Server/transport tests: connections, failure paths, resumption.

Each test runs a real :class:`~repro.service.server.EnumerationServer`
on an ephemeral port (via :class:`~repro.service.server.ServerThread`)
and drives it with the blocking :class:`~repro.service.ServiceClient` —
the exact deployment shape of ``repro serve`` / ``repro submit``.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.api import Session
from repro.graphs.generators import (
    connected_erdos_renyi,
    grid_graph,
    paper_example_graph,
)
from repro.service import (
    AnswerFrame,
    CancelledFrame,
    DeadlineFrame,
    ErrorFrame,
    ServerThread,
    ServiceClient,
    ServiceError,
    ServiceRequest,
    StatsFrame,
    serialize_answers,
)


@pytest.fixture(scope="module")
def server():
    with ServerThread(max_workers=2, slice_answers=2) as handle:
        yield handle


@pytest.fixture()
def client(server):
    return ServiceClient(*server.address, timeout=30.0)


def serial_lines(graph, cost, k):
    session = Session()
    stream = session.stream(graph, cost)
    try:
        results = list(itertools.islice(stream, k))
    finally:
        stream.close()
    return serialize_answers(results)


def wait_for_idle(server, timeout=10.0):
    """Block until the scheduler has wound down every admitted job."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.scheduler_stats()["active"] == 0:
            return server.scheduler_stats()
        time.sleep(0.02)
    raise AssertionError(
        f"scheduler still busy after {timeout}s: {server.scheduler_stats()}"
    )


class TestHappyPath:
    def test_top_streams_exact_bytes(self, client):
        graph = connected_erdos_renyi(10, 0.35, seed=0)
        result = client.top(graph, "fill", k=6)
        assert isinstance(result.terminal, StatsFrame)
        assert list(result.answer_lines) == serial_lines(graph, "fill", 6)

    def test_tuple_labelled_graph_round_trips(self, client):
        graph = grid_graph(3, 3)
        result = client.top(graph, "width", k=4)
        assert list(result.answer_lines) == serial_lines(graph, "width", 4)
        assert all(
            isinstance(v, tuple)
            for answer in result.answers
            for bag in answer.bags
            for v in bag
        )

    def test_pagination_via_checkpoint_token(self, client):
        graph = connected_erdos_renyi(10, 0.35, seed=2)
        first = client.top(graph, "fill", k=4)
        assert first.checkpoint is not None
        second = client.resume(first.checkpoint, k=4)
        got = list(first.answer_lines) + list(second.answer_lines)
        assert got == serial_lines(graph, "fill", 8)
        assert [a.rank for a in second.answers] == [4, 5, 6, 7]

    def test_diverse_and_decompositions(self, client):
        graph = paper_example_graph()
        session = Session()

        diverse = client.diverse(graph, "fill", k=2, min_distance=2)
        expected = session.diverse(graph, "fill", k=2, min_distance=2)
        assert len(diverse.answers) == len(expected.results)
        assert [a.cost for a in diverse.answers] == [
            t.cost for t in expected.results
        ]

        decomp = client.decompositions(graph, "width", k=5)
        expected = session.decompositions(graph, "width", k=5)
        assert [a.rank for a in decomp.answers] == [
            r.rank for r in expected.results
        ]

    def test_enumerate_exhausts_small_space(self, client):
        result = client.enumerate(paper_example_graph(), "fill")
        assert result.exhausted
        assert isinstance(result.terminal, StatsFrame)
        assert result.terminal.emitted == len(result.answers) == 2


class TestFailurePaths:
    def test_malformed_frame_gets_in_band_error(self, client):
        stream = client.send_raw(b"this is not json\n")
        frames = list(stream)
        assert len(frames) == 1
        assert isinstance(frames[0], ErrorFrame)
        assert frames[0].code == "bad-request"

    def test_structurally_invalid_request_gets_in_band_error(self, client):
        stream = client.send_raw(b'{"type":"request","op":"warp"}\n')
        frames = list(stream)
        assert isinstance(frames[0], ErrorFrame)

    def test_server_survives_malformed_frames(self, client, server):
        for raw in (b"\n", b"[]\n", b'{"type":"request"}\n', b"{broken\n"):
            list(client.send_raw(raw))
        result = client.top(paper_example_graph(), "fill", k=2)
        assert isinstance(result.terminal, StatsFrame)
        wait_for_idle(server)

    def test_unknown_cost_is_in_band_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.top(paper_example_graph(), cost="nope", k=2)
        assert excinfo.value.frame.code == "bad-request"

    def test_client_disconnect_mid_stream_releases_slot(self, client, server):
        graph = connected_erdos_renyi(12, 0.3, seed=5)
        stream = client.open(
            ServiceRequest(op="enumerate", graph=graph, cost="fill")
        )
        seen = 0
        for frame in stream:
            if isinstance(frame, AnswerFrame):
                seen += 1
            if seen == 2:
                stream.abort()  # hard close, no cancel frame
                break
        stats = wait_for_idle(server)
        assert stats["active"] == 0
        # The slot is really free: a fresh job is served to completion.
        result = client.top(graph, "fill", k=3)
        assert list(result.answer_lines) == serial_lines(graph, "fill", 3)

    def test_in_band_cancel_returns_cancelled_frame_with_token(
        self, client, server
    ):
        graph = connected_erdos_renyi(12, 0.3, seed=6)
        stream = client.open(
            ServiceRequest(op="enumerate", graph=graph, cost="fill")
        )
        answers = []
        for frame in stream:
            if isinstance(frame, AnswerFrame):
                answers.append(frame)
                if len(answers) == 2:
                    stream.cancel()
        assert isinstance(stream.terminal, CancelledFrame)
        assert stream.terminal.checkpoint is not None
        wait_for_idle(server)
        # The cancel token resumes the exact sequence on a new connection.
        more = client.resume(stream.terminal.checkpoint, k=3)
        got = [a.raw for a in answers] + list(more.answer_lines)
        assert got == serial_lines(graph, "fill", len(answers) + 3)

    def test_immediate_disconnect_without_request(self, client, server):
        import socket

        sock = socket.create_connection(client_address(client), timeout=5)
        sock.close()
        result = client.top(paper_example_graph(), "fill", k=1)
        assert isinstance(result.terminal, StatsFrame)
        wait_for_idle(server)


def client_address(client):
    return (client.host, client.port)


class TestDeadlines:
    def test_deadline_frame_carries_resumable_token(self, client, server):
        graph = connected_erdos_renyi(12, 0.3, seed=5)
        result = client.enumerate(graph, "fill", deadline=0.1)
        assert isinstance(result.terminal, DeadlineFrame)
        assert result.checkpoint is not None
        emitted = len(result.answers)
        assert result.terminal.emitted == emitted
        # Resume on a NEW connection: concatenation is bit-identical.
        more = client.resume(result.checkpoint, k=4)
        got = list(result.answer_lines) + list(more.answer_lines)
        assert got == serial_lines(graph, "fill", emitted + 4)
        wait_for_idle(server)

    def test_generous_deadline_does_not_truncate(self, client):
        result = client.enumerate(paper_example_graph(), "fill", deadline=60.0)
        assert isinstance(result.terminal, StatsFrame)
        assert result.exhausted


class TestConcurrentClients:
    def test_parallel_clients_each_get_exact_sequences(self, client, server):
        import threading

        cases = [
            (connected_erdos_renyi(10, 0.35, seed=0), "fill"),
            (connected_erdos_renyi(10, 0.35, seed=100), "width"),
            (grid_graph(3, 3), "fill"),
            (paper_example_graph(), "width"),
        ]
        outcomes: dict[int, list[bytes]] = {}
        errors: list[BaseException] = []

        def worker(i, graph, cost):
            try:
                local = ServiceClient(client.host, client.port, timeout=60.0)
                outcomes[i] = list(local.top(graph, cost, k=6).answer_lines)
            except BaseException as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, g, c))
            for i, (g, c) in enumerate(cases)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        for i, (graph, cost) in enumerate(cases):
            assert outcomes[i] == serial_lines(graph, cost, 6)
        wait_for_idle(server)


class TestForegroundServe:
    def test_serve_entry_point_binds_and_serves(self):
        """The ``repro serve`` entry point, driven via its test hooks."""
        import threading

        from repro.service.server import serve

        bound: list[tuple[str, int]] = []
        ready = threading.Event()
        stop = threading.Event()
        messages: list[str] = []

        def on_bound(address):
            bound.append(address)
            ready.set()

        thread = threading.Thread(
            target=lambda: serve(
                port=0, on_bound=on_bound, stop=stop,
                announce=messages.append,
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        try:
            client = ServiceClient(*bound[0], timeout=30.0)
            result = client.top(paper_example_graph(), "fill", k=2)
            assert isinstance(result.terminal, StatsFrame)
            assert messages and "listening" in messages[0]
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not thread.is_alive()


class TestFrameLimits:
    def test_oversized_request_gets_in_band_error(self):
        with ServerThread(max_workers=1, max_frame_bytes=4096) as handle:
            client = ServiceClient(*handle.address, timeout=30.0)
            big = b'{"type":"request","op":"top","pad":"' + b"x" * 8192 + b'"}\n'
            frames = list(client.send_raw(big))
            assert isinstance(frames[0], ErrorFrame)
            assert "frame limit" in frames[0].message
            # The server survives and serves the next request normally.
            result = client.top(paper_example_graph(), "fill", k=2)
            assert isinstance(result.terminal, StatsFrame)

    def test_large_graph_fits_default_limit(self, client):
        # ~3000 edges serializes far beyond asyncio's 64 KiB default, and
        # must be accepted under the server's raised limit.
        from repro.graphs.generators import erdos_renyi

        graph = erdos_renyi(80, 0.95, seed=1)  # near-complete: chordal-ish
        assert graph.num_edges() > 2500
        result = client.top(graph, "width", k=1)
        assert isinstance(result.terminal, StatsFrame)
        assert len(result.answers) == 1


class TestDecompositionTrees:
    def test_answers_carry_distinct_tree_structures(self, client):
        graph = paper_example_graph()
        result = client.decompositions(graph, "width", k=10)
        assert len(result.answers) == 10
        for answer in result.answers:
            assert answer.tree is not None
            bags, edges = answer.tree
            assert len(edges) == max(len(bags) - 1, 0)
            for a, b in edges:
                assert 0 <= a < len(bags) and 0 <= b < len(bags)
        # Several clique trees share one triangulation (same bag set);
        # the tree field is what tells them apart.
        distinct_frames = {a.raw for a in result.answers}
        assert len(distinct_frames) == 10


class TestShutdownWithLiveClient:
    def test_stopping_server_delivers_cancelled_frame_to_live_stream(self):
        import threading

        graph = connected_erdos_renyi(12, 0.3, seed=5)
        handle = ServerThread(max_workers=1, slice_answers=1).start()
        try:
            client = ServiceClient(*handle.address, timeout=30.0)
            stream = client.open(
                ServiceRequest(op="enumerate", graph=graph, cost="fill")
            )
            first = next(stream)
            assert isinstance(first, AnswerFrame)
            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            frames = list(stream)
            stopper.join(timeout=30)
            # The live client got a proper terminal frame, not a dead socket.
            assert isinstance(stream.terminal, CancelledFrame)
            assert stream.terminal.checkpoint is not None
            answers = [f for f in frames if isinstance(f, AnswerFrame)]
            got = [first.raw] + [a.raw for a in answers]
            assert got == serial_lines(graph, "fill", len(got))
        finally:
            handle.stop()


class TestShutdownRace:
    def test_submit_after_scheduler_close_gets_in_band_error(self):
        with ServerThread(max_workers=1) as handle:
            client = ServiceClient(*handle.address, timeout=30.0)
            # Force the shutdown race: the listener still accepts, but the
            # scheduler refuses admissions.
            handle.server.scheduler._closed = True
            with pytest.raises(ServiceError) as excinfo:
                client.top(paper_example_graph(), "fill", k=1)
            assert excinfo.value.frame.code == "shutting-down"
