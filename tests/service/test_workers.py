"""Unit tests for the multi-process worker backend (``service.workers``).

The differential suite holds the process backend to byte-identity under
concurrency and crashes; this file pins the pool machinery itself —
affinity routing, spill, seat respawn, the pipe round trips, and the
``stats`` observability surface on both backends.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time

import pytest

from repro.api.fingerprint import graph_fingerprint
from repro.graphs.generators import connected_erdos_renyi, paper_example_graph
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceStatsFrame,
    WorkerPool,
)
from repro.service.protocol import ProtocolError, ServiceRequest, new_token_key
from repro.service.workers import (
    DEFAULT_SPILL_THRESHOLD,
    _affinity_index,
)


@contextlib.contextmanager
def pool(workers: int, **kwargs):
    p = WorkerPool(workers, new_token_key(), **kwargs)
    try:
        yield p
    finally:
        p.close()


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_affinity_index_is_consistent_and_in_range():
    fps = [graph_fingerprint(connected_erdos_renyi(8, 0.4, seed=s)) for s in range(6)]
    for size in (1, 2, 3, 8):
        for fp in fps:
            i = _affinity_index(fp, size)
            assert 0 <= i < size
            assert i == _affinity_index(fp, size)  # pure in the fingerprint
    # Not everything collapses onto one worker.
    assert len({_affinity_index(fp, 8) for fp in fps}) > 1


def test_route_prefers_affinity_then_spills_under_load():
    with pool(2) as p:
        fp = graph_fingerprint(paper_example_graph())
        preferred_seat = _affinity_index(fp, 2)
        # Below the spill threshold, warmth wins: every placement sticks
        # to the fingerprint's preferred seat even as its load grows.
        placed = [p.route(fp) for _ in range(DEFAULT_SPILL_THRESHOLD)]
        assert all(h.index == preferred_seat for h in placed)
        # Now the preferred seat is `threshold` jobs busier than the idle
        # one: load beats warmth and the next placement spills.
        spilled = p.route(fp)
        assert spilled.index != preferred_seat
        # Draining the preferred seat restores affinity routing.
        for handle in placed:
            p.release(handle)
        assert p.route(fp).index == preferred_seat


def test_route_rejects_closed_pool():
    p = WorkerPool(1, new_token_key())
    p.close()
    with pytest.raises(RuntimeError, match="closed"):
        p.route("deadbeef")


# ----------------------------------------------------------------------
# Pipe round trips and crash respawn
# ----------------------------------------------------------------------
def test_ping_and_stats_round_trips():
    with pool(1) as p:
        handle = p.route("00")
        kind, pid = handle.round_trip("ping")
        assert kind == "pong" and pid == handle.process.pid
        rows = p.worker_stats()
        assert len(rows) == 1
        row = rows[0]
        assert row["alive"] and row["pid"] == pid
        assert row["active_jobs"] == 1 and row["respawns"] == 0
        assert row["sessions"] == {}  # no job ever ran: cold worker


def test_crash_respawns_seat_with_bumped_generation():
    with pool(2) as p:
        victim = p._workers[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        p.report_crash(victim)
        assert p.respawns == 1
        fresh = p._workers[0]
        assert fresh is not victim
        assert fresh.generation == victim.generation + 1
        assert fresh.round_trip("ping")[0] == "pong"
        # Idempotent: a second report for the same dead handle is a no-op.
        p.report_crash(victim)
        assert p.respawns == 1 and p._workers[0] is fresh


def test_route_revives_dead_seat_lazily():
    """A seat that died without anyone calling ``report_crash`` (e.g. no
    job was pinned to it) is revived on the next routing decision."""
    with pool(1) as p:
        dead = p._workers[0]
        os.kill(dead.process.pid, signal.SIGKILL)
        dead.process.join(timeout=10)
        handle = p.route("00")
        assert handle is not dead and handle.alive
        assert p.respawns == 1


# ----------------------------------------------------------------------
# The stats op, end to end, on both backends
# ----------------------------------------------------------------------
def test_stats_request_validation():
    with pytest.raises(ProtocolError, match="neither graph nor token"):
        ServiceRequest(op="stats", graph=paper_example_graph())


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_service_stats_reports_warm_sessions(backend):
    graph = paper_example_graph()
    with ServerThread(
        max_workers=2, backend=backend, worker_processes=2
    ) as handle:
        client = ServiceClient(*handle.address, timeout=60.0)
        cold = client.service_stats()
        assert isinstance(cold, ServiceStatsFrame)
        assert cold.backend == backend
        assert len(cold.workers) == (1 if backend == "inprocess" else 2)

        # preprocess=False keeps the session context keyed by the request
        # graph's own fingerprint (preprocessing would cache the reduced
        # graph's instead, which is what affinity routing warms but not
        # what this test greps for).
        client.top(graph, "fill", k=2, preprocess=False)
        client.top(graph, "fill", k=2, preprocess=False)  # warm repeat

        warm = client.service_stats()
        fp = graph_fingerprint(graph)
        warm_rows = [
            row
            for row in warm.workers
            if any(
                fp in session.get("warm", ())
                for session in row.get("sessions", {}).values()
            )
        ]
        # Affinity routing pins both requests to ONE worker: exactly one
        # seat holds the warm context, and its cache saw a prepared-table
        # hit on the repeat.
        assert len(warm_rows) == 1
        caches = [
            session["cache"]
            for session in warm_rows[0]["sessions"].values()
            if fp in session.get("warm", ())
        ]
        assert caches[0]["contexts"] >= 1
        assert warm.scheduler["completed"] >= 2


def test_worker_stats_rows_survive_a_busy_worker():
    """A probe that cannot get the dispatch lock degrades to a
    parent-side row flagged ``busy`` instead of blocking the stats job
    behind a long slice."""
    with pool(1) as p:
        handle = p.route("00")
        with handle.dispatch_lock:  # simulate an in-flight slice
            t0 = time.monotonic()
            rows = p.worker_stats()
            assert time.monotonic() - t0 < 10
        assert rows[0].get("busy") is True
        assert rows[0]["pid"] == handle.process.pid
