"""Wire-protocol unit tests: framing, labels, requests, typed frames."""

from __future__ import annotations

import json

import pytest

from repro.graphs.generators import grid_graph, paper_example_graph
from repro.graphs.graph import Graph
from repro.service.protocol import (
    AnswerFrame,
    CancelledFrame,
    DeadlineFrame,
    ErrorFrame,
    ProtocolError,
    ServiceRequest,
    StatsFrame,
    answer_frame,
    decode_frame,
    decode_token,
    encode_frame,
    encode_token,
    graph_from_wire,
    graph_to_wire,
    parse_request,
    typed_frame,
)


class TestFraming:
    def test_round_trip(self):
        frame = {"type": "answer", "rank": 0, "cost": 1.5, "bags": [[1, 2]]}
        assert decode_frame(encode_frame(frame)) == frame

    def test_canonical_bytes_are_key_order_independent(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_encoding_is_compact_single_line(self):
        line = encode_frame({"type": "answer", "bags": [[1, 2], [3]]})
        assert line.count(b"\n") == 1
        assert b" " not in line

    @pytest.mark.parametrize(
        "line", [b"not json\n", b"[1, 2]\n", b'"string"\n', b"\xff\xfe\n"]
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_frame(line)

    def test_token_round_trip(self):
        token = b"\x00\x01binary token\xff"
        assert decode_token(encode_token(token)) == token

    def test_bad_token_raises(self):
        with pytest.raises(ProtocolError):
            decode_token("!!! not base64 !!!")


class TestGraphWire:
    def test_round_trip_int_labels(self):
        g = paper_example_graph()
        restored = graph_from_wire(graph_to_wire(g))
        assert restored == g

    def test_round_trip_tuple_labels(self):
        g = grid_graph(3, 3)
        restored = graph_from_wire(graph_to_wire(g))
        assert restored == g
        assert all(isinstance(v, tuple) for v in restored.vertices)

    def test_round_trip_survives_json(self):
        g = grid_graph(2, 3)
        wire = json.loads(json.dumps(graph_to_wire(g)))
        assert graph_from_wire(wire) == g

    def test_wire_form_is_canonical(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(vertices=[3, 2, 1], edges=[(3, 2), (2, 1)])
        assert graph_to_wire(a) == graph_to_wire(b)

    @pytest.mark.parametrize(
        "wire",
        [
            "not a dict",
            {},
            {"vertices": 3, "edges": []},
            {"vertices": [1], "edges": [[1]]},
            {"vertices": [1], "edges": [[1, 2]]},  # unknown endpoint
            {"vertices": [1, 1], "edges": []},  # duplicate labels collapse?
        ],
    )
    def test_invalid_wire_objects_raise(self, wire):
        if wire == {"vertices": [1, 1], "edges": []}:
            # Duplicate labels are tolerated by Graph (set semantics).
            graph_from_wire(wire)
            return
        with pytest.raises(ProtocolError):
            graph_from_wire(wire)

    def test_unencodable_label_raises(self):
        g = Graph(vertices=[frozenset({1})])
        with pytest.raises(ProtocolError):
            graph_to_wire(g)


class TestServiceRequest:
    def test_frame_round_trip(self):
        request = ServiceRequest(
            op="top",
            graph=grid_graph(2, 2),
            cost="fill",
            k=5,
            deadline=1.5,
            kernel="sets",
            min_distance=2,
        )
        assert parse_request(request.to_frame()) == request

    def test_token_frame_round_trip(self):
        request = ServiceRequest(op="enumerate", token=b"opaque", k=3)
        parsed = parse_request(request.to_frame())
        assert parsed.token == b"opaque"
        assert parsed.graph is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(op="nope", graph=Graph(vertices=[1])),
            dict(op="enumerate"),  # neither graph nor token
            dict(op="enumerate", graph=Graph(vertices=[1]), token=b"x"),
            dict(op="diverse", token=b"x"),  # diverse cannot resume
            dict(op="top", graph=Graph(vertices=[1])),  # top needs k
            dict(op="enumerate", graph=Graph(vertices=[1]), k=-1),
            dict(op="enumerate", graph=Graph(vertices=[1]), deadline=0),
            dict(op="enumerate", graph=Graph(vertices=[1]), answer_budget=-2),
        ],
    )
    def test_invalid_requests_raise(self, kwargs):
        with pytest.raises(ProtocolError):
            ServiceRequest(**kwargs)

    @pytest.mark.parametrize(
        "frame",
        [
            {"type": "nope"},
            {"type": "request"},  # no op
            {"type": "request", "op": "enumerate"},  # no graph/token
            {"type": "request", "op": "top", "graph": {"vertices": [1], "edges": []}, "k": "five"},
            {"type": "request", "op": "top", "graph": {"vertices": [1], "edges": []}, "k": True},
            {"type": "request", "op": "enumerate", "token": 42},
            {"type": "request", "op": "enumerate", "graph": {"vertices": [1], "edges": []}, "kernel": "gpu"},
            {"type": "request", "op": "enumerate", "graph": {"vertices": [1], "edges": []}, "v": 99},
            {"type": "request", "op": "diverse", "graph": {"vertices": [1], "edges": []}, "k": 3, "min_distance": "2"},
        ],
    )
    def test_invalid_frames_raise(self, frame):
        with pytest.raises(ProtocolError):
            parse_request(frame)


class TestTypedFrames:
    def test_answer_frame_round_trip(self):
        from repro.api import Session

        g = grid_graph(2, 3)
        response = Session().top(g, "fill", k=1)
        frame = answer_frame(response.results[0])
        raw = encode_frame(frame)
        typed = typed_frame(decode_frame(raw), raw=raw)
        assert isinstance(typed, AnswerFrame)
        assert typed.rank == 0
        assert typed.raw == raw
        # Bags decode back to tuple labels in canonical order.
        assert all(
            all(isinstance(v, tuple) for v in bag) for bag in typed.bags
        )

    def test_terminal_frames(self):
        cases = [
            (
                {
                    "type": "stats",
                    "emitted": 3,
                    "expansions": 7,
                    "exhausted": False,
                    "elapsed_seconds": 0.5,
                    "engine": "SerialStrategy",
                    "preprocessed": False,
                    "next_rank": 3,
                    "checkpoint": encode_token(b"tok"),
                },
                StatsFrame,
            ),
            (
                {"type": "deadline", "emitted": 2, "next_rank": 2,
                 "checkpoint": encode_token(b"tok")},
                DeadlineFrame,
            ),
            (
                {"type": "cancelled", "emitted": 1, "next_rank": 1,
                 "checkpoint": None},
                CancelledFrame,
            ),
            ({"type": "error", "code": "bad-request", "message": "x"}, ErrorFrame),
        ]
        for frame, expected_type in cases:
            typed = typed_frame(frame)
            assert isinstance(typed, expected_type)
        assert typed_frame(cases[0][0]).checkpoint == b"tok"
        assert typed_frame(cases[2][0]).checkpoint is None

    def test_unknown_or_incomplete_frames_raise(self):
        with pytest.raises(ProtocolError):
            typed_frame({"type": "mystery"})
        with pytest.raises(ProtocolError):
            typed_frame({"type": "answer", "rank": 0})  # missing fields

    def test_answer_frames_are_timing_free(self):
        """Two runs of the same request serialize to identical bytes."""
        from repro.api import Session

        g = paper_example_graph()
        lines = []
        for _ in range(2):
            response = Session().top(g, "fill", k=3)
            lines.append(
                [encode_frame(answer_frame(r)) for r in response.results]
            )
        assert lines[0] == lines[1]
