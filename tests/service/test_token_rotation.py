"""Resume-token keying across server restarts and key rotation.

Resume tokens are HMAC-signed before the pickled checkpoint inside is
ever deserialized, so the signing key decides whether a token survives
a server restart.  These tests pin down the three regimes:

* a shared secret (``REPRO_TOKEN_SECRET`` or ``token_key=``) makes a
  token minted by one server instance resume the *exact* answer
  sequence on a fresh instance;
* a rotated key rejects the stale token with the distinct
  ``token_key_mismatch`` error code (not the generic ``bad-request``),
  so operators can tell key drift from client bugs;
* a structurally broken token stays a plain ``bad-request``.

The suite runs against both execution backends (the process pool
re-verifies tokens inside the worker children with the same key).
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.api import Session
from repro.graphs.generators import connected_erdos_renyi
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceError,
    serialize_answers,
)
from repro.service.protocol import ENV_TOKEN_SECRET, resolve_token_key

BACKENDS = [
    tok.strip()
    for tok in os.environ.get(
        "REPRO_SERVICE_BACKENDS", "inprocess,process"
    ).split(",")
    if tok.strip()
]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def server_kwargs(backend):
    kwargs = {"max_workers": 2, "slice_answers": 2, "backend": backend}
    if backend == "process":
        kwargs["worker_processes"] = 2
    return kwargs


def serial_lines(graph, cost, k):
    session = Session()
    stream = session.stream(graph, cost)
    try:
        results = list(itertools.islice(stream, k))
    finally:
        stream.close()
    return serialize_answers(results)


class TestResolveTokenKey:
    def test_explicit_key_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_TOKEN_SECRET, "env-secret")
        assert resolve_token_key(b"explicit") == b"explicit"

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_TOKEN_SECRET, "env-secret")
        assert resolve_token_key(None) == b"env-secret"

    def test_random_key_without_either(self, monkeypatch):
        monkeypatch.delenv(ENV_TOKEN_SECRET, raising=False)
        assert resolve_token_key(None) != resolve_token_key(None)


class TestRestartWithSharedSecret:
    def test_env_secret_makes_tokens_survive_restart(
        self, backend, monkeypatch
    ):
        monkeypatch.setenv(ENV_TOKEN_SECRET, "rotation-suite-secret")
        graph = connected_erdos_renyi(10, 0.35, seed=2)
        with ServerThread(**server_kwargs(backend)) as first:
            client = ServiceClient(*first.address, timeout=60.0)
            page = client.top(graph, "fill", k=4)
            token = page.checkpoint
        assert token is not None
        # A brand-new server process-equivalent: fresh scheduler, fresh
        # backend, same environment secret.  The token must continue the
        # exact global answer sequence, byte for byte.
        with ServerThread(**server_kwargs(backend)) as second:
            client = ServiceClient(*second.address, timeout=60.0)
            rest = client.resume(token, k=4)
        got = list(page.answer_lines) + list(rest.answer_lines)
        assert got == serial_lines(graph, "fill", 8)
        assert [a.rank for a in rest.answers] == [4, 5, 6, 7]

    def test_explicit_key_equivalent_to_env(self, backend, monkeypatch):
        monkeypatch.delenv(ENV_TOKEN_SECRET, raising=False)
        graph = connected_erdos_renyi(10, 0.35, seed=0)
        key = b"shared-file-secret"
        with ServerThread(token_key=key, **server_kwargs(backend)) as first:
            client = ServiceClient(*first.address, timeout=60.0)
            token = client.top(graph, "fill", k=3).checkpoint
        with ServerThread(token_key=key, **server_kwargs(backend)) as second:
            client = ServiceClient(*second.address, timeout=60.0)
            rest = client.resume(token, k=3)
        assert [a.rank for a in rest.answers] == [3, 4, 5]


class TestKeyRotation:
    def test_rotated_key_yields_distinct_error_code(
        self, backend, monkeypatch
    ):
        monkeypatch.delenv(ENV_TOKEN_SECRET, raising=False)
        graph = connected_erdos_renyi(10, 0.35, seed=0)
        with ServerThread(
            token_key=b"key-alpha", **server_kwargs(backend)
        ) as first:
            client = ServiceClient(*first.address, timeout=60.0)
            token = client.top(graph, "fill", k=3).checkpoint
        with ServerThread(
            token_key=b"key-beta", **server_kwargs(backend)
        ) as second:
            client = ServiceClient(*second.address, timeout=60.0)
            with pytest.raises(ServiceError) as excinfo:
                client.resume(token, k=3)
        assert excinfo.value.frame.code == "token_key_mismatch"

    def test_default_random_keys_do_not_share_tokens(
        self, backend, monkeypatch
    ):
        monkeypatch.delenv(ENV_TOKEN_SECRET, raising=False)
        graph = connected_erdos_renyi(10, 0.35, seed=2)
        with ServerThread(**server_kwargs(backend)) as first:
            client = ServiceClient(*first.address, timeout=60.0)
            token = client.top(graph, "fill", k=3).checkpoint
        with ServerThread(**server_kwargs(backend)) as second:
            client = ServiceClient(*second.address, timeout=60.0)
            with pytest.raises(ServiceError) as excinfo:
                client.resume(token, k=3)
        assert excinfo.value.frame.code == "token_key_mismatch"

    def test_truncated_token_stays_bad_request(self, backend, monkeypatch):
        monkeypatch.delenv(ENV_TOKEN_SECRET, raising=False)
        with ServerThread(**server_kwargs(backend)) as handle:
            client = ServiceClient(*handle.address, timeout=60.0)
            with pytest.raises(ServiceError) as excinfo:
                client.resume(b"ABC", k=3)  # shorter than the HMAC tag
        assert excinfo.value.frame.code == "bad-request"
