"""Deadlines run on the monotonic clock, not wall time (ISSUE 9).

An NTP step (or an operator touching the system clock) must not expire
— or extend — a running job's deadline.  These tests make ``time.time``
leap forward by ~17 minutes on every call; a wall-clock deadline
implementation would cut the very first slice short, while the
monotonic implementation finishes the job normally on both backends.
"""

from __future__ import annotations

import asyncio
import itertools
import time

import pytest

from repro.graphs.generators import connected_erdos_renyi
from repro.service.protocol import ServiceRequest
from repro.service.scheduler import EnumerationScheduler


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def leaping_wall_clock(monkeypatch):
    """Every ``time.time()`` call jumps 1000 s forward from a base far
    in the future.  ``time.monotonic`` is left untouched."""
    base = time.time() + 10_000.0
    calls = itertools.count()
    monkeypatch.setattr(time, "time", lambda: base + 1000.0 * next(calls))


def _submit_and_drain(backend):
    graph = connected_erdos_renyi(10, 0.35, seed=0)

    async def main():
        kwargs = {"slice_answers": 2, "backend": backend}
        if backend == "process":
            kwargs["worker_processes"] = 1
        scheduler = EnumerationScheduler(**kwargs)
        try:
            job = await scheduler.submit(
                ServiceRequest(
                    op="top",
                    graph=graph,
                    cost="fill",
                    k=6,
                    deadline=60.0,
                )
            )
            return await job.drain()
        finally:
            await scheduler.close()

    return run(main())


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_deadline_ignores_wall_clock_steps(leaping_wall_clock, backend):
    frames = _submit_and_drain(backend)
    terminal = frames[-1]
    # Wall time advanced by dozens of "minutes" during the job; the
    # 60-second deadline must still be nowhere near expiry.
    assert terminal["type"] == "stats", terminal
    assert terminal["emitted"] == 6
    assert len([f for f in frames if f.get("type") == "answer"]) == 6


def test_remote_runner_reply_window_is_monotonic(leaping_wall_clock):
    """The parent-side slice spec hands the worker its remaining budget;
    computed against wall time it would collapse to the 1e-6 floor after
    one clock step and the worker would stop after a single answer."""
    frames = _submit_and_drain("process")
    assert frames[-1]["type"] == "stats"
    assert frames[-1]["emitted"] == 6
