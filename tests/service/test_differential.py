"""The service differential harness — the PR's acceptance criterion.

N ≥ 8 concurrent clients over mixed graphs, costs, and kernels each
receive ``answer`` frame byte sequences **bit-identical** to what a
serial ``Session.stream`` run of the same request serializes to —
including across a mid-stream pause (in-band cancel) and a resume via
checkpoint token on a brand-new connection, and after a *hard* client
disconnect replayed from a previously held token.

Bit-identity is checked at the byte level: the raw NDJSON lines the
client read off the socket against
:func:`repro.service.protocol.serialize_answers` over the serial run.

The whole suite runs twice — once against the in-process backend (the
oracle) and once against the multi-process worker backend — and adds a
worker-crash scenario: a worker SIGKILLed mid-stream is respawned and
the job replayed from its last acknowledged checkpoint, with the
client-visible bytes still identical to an uninterrupted serial run.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time

import pytest

from repro.api import Session
from repro.graphs.generators import (
    bowtie_graph,
    connected_erdos_renyi,
    grid_graph,
    paper_example_graph,
    ring_of_cycles,
)
from repro.service import (
    AnswerFrame,
    ServerThread,
    ServiceClient,
    ServiceRequest,
    serialize_answers,
)

#: (name, graph factory, cost, kernel) — ten mixed workloads, at least
#: eight of which run concurrently in the main differential test.  The
#: bowtie and ring instances route through the preprocessing pipeline
#: (composed streams); the grid exercises tuple vertex labels.
WORKLOADS = [
    ("gnp-a-fill", lambda: connected_erdos_renyi(10, 0.35, seed=0), "fill", "bitset"),
    ("gnp-a-width", lambda: connected_erdos_renyi(10, 0.35, seed=0), "width", "sets"),
    ("gnp-b-fill", lambda: connected_erdos_renyi(10, 0.35, seed=2), "fill", "bitset"),
    ("gnp-c-width", lambda: connected_erdos_renyi(9, 0.4, seed=3), "width", "bitset"),
    ("grid-3x3-fill", lambda: grid_graph(3, 3), "fill", "bitset"),
    ("grid-3x3-width", lambda: grid_graph(3, 3), "width", "sets"),
    ("paper-fill", paper_example_graph, "fill", "bitset"),
    ("bowtie-width", lambda: bowtie_graph(4), "width", "bitset"),
    ("ring-c5-fill", lambda: ring_of_cycles(2, 5), "fill", "bitset"),
    ("gnp-d-fill", lambda: connected_erdos_renyi(12, 0.3, seed=6), "fill", "sets"),
]

K = 8


def serial_lines(graph, cost, k, kernel):
    """Reference bytes: a serial ``Session.stream`` run, serialized."""
    session = Session(kernel=kernel)
    stream = session.stream(graph, cost)
    try:
        results = list(itertools.islice(stream, k))
    finally:
        stream.close()
    return serialize_answers(results)


#: Both execution backends must pass the identical differential suite:
#: "inprocess" is the GIL-bound oracle, "process" the worker-pool tier.
#: CI narrows the run to one backend per matrix leg via
#: ``REPRO_SERVICE_BACKENDS`` (comma-separated).
BACKENDS = [
    tok.strip()
    for tok in os.environ.get(
        "REPRO_SERVICE_BACKENDS", "inprocess,process"
    ).split(",")
    if tok.strip()
]

needs_process_backend = pytest.mark.skipif(
    "process" not in BACKENDS,
    reason="worker-crash recovery exists only on the process backend",
)


@pytest.fixture(scope="module", params=BACKENDS)
def server(request):
    # Two worker slots, small slices: with 8+ admitted jobs this forces
    # heavy interleaving — the adversarial regime for sequence mixing.
    with ServerThread(
        max_workers=2,
        slice_answers=2,
        backend=request.param,
        worker_processes=2,
    ) as handle:
        yield handle


def test_concurrent_clients_bit_identical_to_serial(server):
    assert len(WORKLOADS) >= 8
    outcomes: dict[str, list[bytes]] = {}
    errors: list[tuple[str, BaseException]] = []
    barrier = threading.Barrier(len(WORKLOADS))

    def run_client(name, factory, cost, kernel):
        try:
            client = ServiceClient(*server.address, timeout=120.0)
            barrier.wait(timeout=30)  # all requests hit the server at once
            result = client.top(factory(), cost, k=K, kernel=kernel)
            outcomes[name] = list(result.answer_lines)
        except BaseException as exc:
            errors.append((name, exc))
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=run_client, args=spec, name=spec[0])
        for spec in WORKLOADS
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    for name, factory, cost, kernel in WORKLOADS:
        expected = serial_lines(factory(), cost, K, kernel)
        assert outcomes[name] == expected, (
            f"{name}: streamed bytes diverged from the serial reference"
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_pause_resume_concatenation_bit_identical(backend):
    """Mid-stream in-band cancel, then resume on a NEW connection: the
    concatenated answer bytes equal one uninterrupted serial run.

    A dedicated tight-backpressure server (frame buffer of 2) makes the
    pause deterministic: while the client withholds reads, the producer
    can sit at most a few frames ahead, so on graphs with enough answers
    the cancel always lands mid-enumeration — never after a drain.
    """
    cases = [
        (lambda: connected_erdos_renyi(12, 0.3, seed=5), "fill", "bitset", 3),
        (lambda: connected_erdos_renyi(12, 0.3, seed=6), "fill", "sets", 4),
        (lambda: ring_of_cycles(2, 5), "fill", "bitset", 2),  # 25 answers
    ]
    with ServerThread(
        max_workers=1,
        slice_answers=1,
        max_pending_frames=2,
        backend=backend,
        worker_processes=1,
    ) as handle:
        for factory, cost, kernel, pause_after in cases:
            graph = factory()
            client = ServiceClient(*handle.address, timeout=60.0)
            stream = client.open(
                ServiceRequest(
                    op="enumerate", graph=graph, cost=cost, kernel=kernel
                )
            )
            first: list[AnswerFrame] = []
            for frame in stream:
                if isinstance(frame, AnswerFrame):
                    first.append(frame)
                    if len(first) == pause_after:
                        stream.cancel()
            token = stream.terminal.checkpoint
            assert token is not None, (
                f"{cost}/{kernel}: stream drained before the cancel landed"
            )
            # A fresh connection — and a fresh socket — continues it.
            second = client.resume(token, k=4, kernel=kernel)
            got = [a.raw for a in first] + list(second.answer_lines)
            expected = serial_lines(graph, cost, len(first) + 4, kernel)
            assert got == expected


def test_hard_disconnect_then_resume_from_held_token(server):
    """A client that crashes mid-stream resumes from the last token it
    durably held (the previous page's checkpoint): the replayed suffix
    is bit-identical, unaffected by the crashed job server-side."""
    graph = connected_erdos_renyi(12, 0.3, seed=5)
    client = ServiceClient(*server.address, timeout=60.0)

    page = client.top(graph, "fill", k=3)
    token = page.checkpoint
    assert token is not None

    # Resume, read a couple of answers, then crash (no cancel frame).
    stream = client.open(ServiceRequest(op="enumerate", token=token))
    seen = 0
    for frame in stream:
        if isinstance(frame, AnswerFrame):
            seen += 1
            if seen == 2:
                stream.abort()
                break

    # Replay from the SAME held token on a new connection.
    replay = client.resume(token, k=5)
    got = list(page.answer_lines) + list(replay.answer_lines)
    assert got == serial_lines(graph, "fill", 3 + 5, "bitset")

    # The crashed job wound down: the scheduler is fully idle again.
    import time

    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if server.scheduler_stats()["active"] == 0:
            break
        time.sleep(0.02)
    assert server.scheduler_stats()["active"] == 0


def test_concurrent_pause_resume_storm(server):
    """Eight clients all pausing and resuming concurrently: every
    concatenation stays exact under maximal checkpoint churn."""
    specs = [spec for spec in WORKLOADS[:8]]
    outcomes: dict[str, tuple[list[bytes], int]] = {}
    errors: list[tuple[str, BaseException]] = []

    def run_client(name, factory, cost, kernel):
        try:
            graph = factory()
            client = ServiceClient(*server.address, timeout=120.0)
            first = client.top(graph, cost, k=3, kernel=kernel)
            lines = list(first.answer_lines)
            if first.checkpoint is not None and not first.exhausted:
                second = client.resume(first.checkpoint, k=3, kernel=kernel)
                lines += list(second.answer_lines)
            outcomes[name] = (lines, len(lines))
        except BaseException as exc:
            errors.append((name, exc))

    threads = [
        threading.Thread(target=run_client, args=spec) for spec in specs
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    for name, factory, cost, kernel in specs:
        lines, count = outcomes[name]
        assert lines == serial_lines(factory(), cost, count, kernel)


# ----------------------------------------------------------------------
# Worker-crash recovery (process backend only)
# ----------------------------------------------------------------------
def _crash_server():
    """One worker, one slot, tight backpressure: the SIGKILL below always
    lands while the job is mid-stream, and the respawned seat must pick
    the job back up from its last acknowledged checkpoint."""
    return ServerThread(
        max_workers=1,
        slice_answers=1,
        max_pending_frames=2,
        backend="process",
        worker_processes=1,
    )


@needs_process_backend
def test_worker_crash_midstream_bit_identical():
    """SIGKILL the only worker mid-enumeration: the job re-dispatches to
    the respawned worker from the last acknowledged slice checkpoint and
    the client's answer bytes stay identical to an uninterrupted serial
    run — the crash is invisible on the wire."""
    graph = ring_of_cycles(2, 5)  # 25 answers; the kill lands well inside
    k = 12
    with _crash_server() as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        pid = client.service_stats().workers[0]["pid"]
        stream = client.open(
            ServiceRequest(op="top", graph=graph, cost="fill", k=k)
        )
        lines: list[bytes] = []
        killed = False
        for frame in stream:
            if isinstance(frame, AnswerFrame):
                lines.append(frame.raw)
                if len(lines) == 4 and not killed:
                    os.kill(pid, signal.SIGKILL)
                    killed = True
        assert killed
        assert lines == serial_lines(graph, "fill", k, "bitset"), (
            "answer bytes diverged across the worker crash"
        )
        stats = client.service_stats()
        assert stats.backend == "process"
        assert any(row.get("respawns", 0) >= 1 for row in stats.workers), (
            "the killed worker seat was never respawned"
        )
        assert any(row.get("alive") for row in stats.workers)


@needs_process_backend
def test_worker_crash_replay_only_op_bit_identical():
    """Crash recovery for a non-pausable op (``diverse``): no checkpoint
    exists, so the re-dispatched job deterministically replays from rank
    0 and skips the answers the client already holds — the delivered
    bytes still match an uninterrupted run of the same request."""
    graph = ring_of_cycles(2, 5)
    request = ServiceRequest(op="diverse", graph=graph, cost="fill", k=6)
    with _crash_server() as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        expected = list(client.collect(request).answer_lines)
        pid = client.service_stats().workers[0]["pid"]
        stream = client.open(request)
        lines: list[bytes] = []
        killed = False
        for frame in stream:
            if isinstance(frame, AnswerFrame):
                lines.append(frame.raw)
                if len(lines) == 2 and not killed:
                    os.kill(pid, signal.SIGKILL)
                    killed = True
        assert killed
        assert lines == expected, (
            "replayed diverse bytes diverged across the worker crash"
        )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if handle.scheduler_stats()["active"] == 0:
                break
            time.sleep(0.02)
        assert handle.scheduler_stats()["active"] == 0
