"""Registry-driven wire validation: a registered kernel is a valid
kernel *everywhere*, immediately.

The ISSUE's regression scenario: third-party code registers a kernel via
:func:`repro.graphs.kernels.register_kernel` and the name must be
accepted end-to-end — ``ServiceRequest`` construction, ``parse_request``
on a decoded frame, the scheduler's session pool, and the HTTP gateway —
with no hardcoded name list anywhere on the path.  (The end-to-end legs
run the in-process backend: subprocess workers cannot see kernels
registered only in the parent.)
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.graphs.bitgraph import BitGraph
from repro.graphs.generators import paper_example_graph
from repro.graphs.kernels import (
    KernelSpec,
    available_kernels,
    register_kernel,
    unregister_kernel,
)
from repro.service.protocol import (
    ProtocolError,
    ServiceRequest,
    graph_to_wire,
    parse_request,
    serialize_answers,
)

TEST_KERNEL = "test-wire"


@pytest.fixture
def wire_kernel():
    spec = register_kernel(
        KernelSpec(
            name=TEST_KERNEL,
            description="bitset rebadged for wire-validation tests",
            build=lambda graph, indexer=None: BitGraph.from_graph(
                graph, indexer
            ),
            capabilities=frozenset({"masks"}),
            priority=-10,  # never wins "auto"
        )
    )
    try:
        yield spec
    finally:
        unregister_kernel(TEST_KERNEL)


class TestRequestValidation:
    def test_registered_kernel_accepted_in_frames(self, wire_kernel):
        frame = {
            "type": "request",
            "op": "top",
            "graph": graph_to_wire(paper_example_graph()),
            "cost": "fill",
            "k": 3,
            "kernel": TEST_KERNEL,
        }
        request = parse_request(frame)
        assert request.kernel == TEST_KERNEL
        # And survives a wire round trip.
        assert parse_request(request.to_frame()).kernel == TEST_KERNEL

    def test_unregistered_kernel_rejected_with_registry_names(self):
        with pytest.raises(ProtocolError, match="sets"):
            ServiceRequest(
                op="top", graph=paper_example_graph(), k=3, kernel="gpu"
            )

    def test_auto_normalized_to_concrete_name_at_parse_time(self):
        request = ServiceRequest(
            op="top", graph=paper_example_graph(), k=3, kernel="auto"
        )
        assert request.kernel != "auto"
        assert request.kernel in available_kernels()

    def test_unavailable_kernel_rejected(self, monkeypatch):
        if "numpy" not in available_kernels():
            pytest.skip("numpy kernel unavailable")
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        with pytest.raises(ProtocolError, match="unavailable"):
            ServiceRequest(
                op="top", graph=paper_example_graph(), k=3, kernel="numpy"
            )

    def test_auto_degrades_on_the_wire(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        request = ServiceRequest(
            op="top", graph=paper_example_graph(), k=3, kernel="auto"
        )
        assert request.kernel == "bitset"


class TestEndToEnd:
    def test_registered_kernel_served_by_gateway(self, wire_kernel):
        from repro.gateway import GatewayClient, GatewayThread

        graph = paper_example_graph()
        expected = serialize_answers(
            Session(kernel="bitset").top(graph, "fill", k=3).results
        )
        with GatewayThread(max_workers=1) as handle:
            client = GatewayClient(*handle.address, timeout=60.0)
            result = client.submit(
                {
                    "op": "top",
                    "graph": graph_to_wire(graph),
                    "cost": "fill",
                    "k": 3,
                    "kernel": TEST_KERNEL,
                }
            ).collect()
            assert result.answer_lines == expected
            page = client.metrics()
        assert "# TYPE repro_kernel_info gauge" in page
        assert f'kernel="{TEST_KERNEL}"' in page

    def test_kernel_registry_stats_lists_registered_kernel(self, wire_kernel):
        from repro.service.scheduler import kernel_registry_stats

        stats = kernel_registry_stats()
        assert TEST_KERNEL in stats["available"]
        assert stats["registered"][TEST_KERNEL]["available"] is True
        assert stats["auto"] in ("numpy", "bitset")
