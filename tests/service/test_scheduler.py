"""Scheduler-level tests: fairness, budgets, deadlines, cancellation.

These drive :class:`~repro.service.scheduler.EnumerationScheduler`
directly inside ``asyncio.run`` — no sockets — so the concurrency
semantics are tested apart from the transport.
"""

from __future__ import annotations

import asyncio
import itertools

import pytest

from repro.api import Session
from repro.graphs.generators import (
    connected_erdos_renyi,
    grid_graph,
    paper_example_graph,
)
from repro.graphs.graph import Graph
from repro.service.protocol import ServiceRequest, serialize_answers
from repro.service.scheduler import EnumerationScheduler


def run(coro):
    return asyncio.run(coro)


def answers_of(frames):
    return [f for f in frames if f["type"] == "answer"]


def serial_lines(graph, cost, k, kernel="bitset"):
    """The reference: frame bytes of a serial ``Session.stream`` run."""
    session = Session(kernel=kernel)
    stream = session.stream(graph, cost)
    try:
        results = list(itertools.islice(stream, k))
    finally:
        stream.close()
    return serialize_answers(results)


def job_lines(frames):
    from repro.service.protocol import encode_frame

    return [encode_frame(f) for f in answers_of(frames)]


class TestBasicServing:
    def test_top_job_matches_serial_stream(self):
        graph = connected_erdos_renyi(10, 0.35, seed=0)

        async def main():
            scheduler = EnumerationScheduler(max_workers=2)
            job = await scheduler.submit(
                ServiceRequest(op="top", graph=graph, cost="fill", k=8)
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "stats"
        assert job_lines(frames) == serial_lines(graph, "fill", 8)
        assert frames[-1]["checkpoint"] is not None
        assert frames[-1]["next_rank"] == len(frames) - 1

    def test_enumerate_drains_to_exhaustion(self):
        graph = paper_example_graph()

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", graph=graph, cost="fill")
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        stats = frames[-1]
        assert stats["type"] == "stats"
        assert stats["exhausted"] is True
        assert stats["emitted"] == len(answers_of(frames))
        assert stats["checkpoint"] is None  # nothing left to resume

    def test_sets_kernel_jobs_match_bitset_jobs(self):
        graph = connected_erdos_renyi(9, 0.4, seed=3)

        async def main(kernel):
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(
                    op="top", graph=graph, cost="width", k=6, kernel=kernel
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        assert job_lines(run(main("bitset"))) == job_lines(run(main("sets")))

    def test_same_graph_jobs_share_one_context(self):
        graph = connected_erdos_renyi(10, 0.35, seed=1)

        async def main():
            scheduler = EnumerationScheduler(max_workers=2)
            jobs = [
                await scheduler.submit(
                    ServiceRequest(op="top", graph=graph, cost="fill", k=4)
                )
                for _ in range(3)
            ]
            frame_sets = [await job.drain() for job in jobs]
            info = scheduler.session("bitset").cache_info()
            await scheduler.close()
            return frame_sets, info

        frame_sets, info = run(main())
        reference = job_lines(frame_sets[0])
        assert all(job_lines(fs) == reference for fs in frame_sets)
        assert info["builds"] == 1  # one context served every client

    def test_diverse_and_decompositions_jobs(self):
        graph = paper_example_graph()

        async def main(op, **kw):
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op=op, graph=graph, cost="fill", **kw)
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        diverse = run(main("diverse", k=2, min_distance=2))
        assert diverse[-1]["type"] == "stats"
        session = Session()
        expected = session.diverse(graph, "fill", k=2, min_distance=2)
        assert len(answers_of(diverse)) == len(expected.results)

        decomp = run(main("decompositions", k=5))
        expected = session.decompositions(graph, "fill", k=5)
        got = answers_of(decomp)
        assert [f["rank"] for f in got] == [r.rank for r in expected.results]
        assert [f["cost"] for f in got] == [r.cost for r in expected.results]


class TestFairness:
    def test_expensive_job_does_not_starve_cheap_one(self):
        """With ONE worker slot, a later cheap job finishes while an
        earlier expensive one is still streaming — the slices interleave."""
        expensive = connected_erdos_renyi(11, 0.4, seed=7)
        cheap = paper_example_graph()

        async def main():
            scheduler = EnumerationScheduler(max_workers=1, slice_answers=1)
            order: list[str] = []

            async def consume(tag, job):
                frames = await job.drain()
                order.append(tag)
                return frames

            big = await scheduler.submit(
                ServiceRequest(op="top", graph=expensive, cost="fill", k=40)
            )
            small = await scheduler.submit(
                ServiceRequest(op="top", graph=cheap, cost="fill", k=2)
            )
            big_frames, small_frames = await asyncio.gather(
                consume("big", big), consume("small", small)
            )
            await scheduler.close()
            return order, big_frames, small_frames

        order, big_frames, small_frames = run(main())
        assert order[0] == "small", "cheap job was starved by the big one"
        # Interleaving never corrupts either sequence.
        assert job_lines(big_frames) == serial_lines(expensive, "fill", 40)
        assert job_lines(small_frames) == serial_lines(cheap, "fill", 2)

    def test_many_concurrent_jobs_all_serve_exact_sequences(self):
        cases = [
            (connected_erdos_renyi(10, 0.35, seed=0), "fill"),
            (connected_erdos_renyi(10, 0.35, seed=100), "width"),
            (grid_graph(3, 3), "fill"),
            (paper_example_graph(), "width"),
        ]

        async def main():
            scheduler = EnumerationScheduler(max_workers=3, slice_answers=2)
            jobs = [
                await scheduler.submit(
                    ServiceRequest(op="top", graph=g, cost=c, k=6)
                )
                for g, c in cases
            ]
            frame_sets = await asyncio.gather(*(j.drain() for j in jobs))
            await scheduler.close()
            return frame_sets

        for (graph, cost), frames in zip(cases, run(main())):
            assert job_lines(frames) == serial_lines(graph, cost, 6)


class TestBudgetsDeadlinesCancellation:
    def test_answer_budget_caps_and_checkpoints(self):
        graph = connected_erdos_renyi(10, 0.35, seed=2)

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(
                    op="enumerate", graph=graph, cost="fill", answer_budget=3
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        stats = frames[-1]
        assert len(answers_of(frames)) == 3
        assert stats["type"] == "stats"
        assert stats["next_rank"] == 3
        assert stats["exhausted"] is False
        assert stats["checkpoint"] is not None

    def test_deadline_emits_terminal_deadline_frame_with_resume_token(self):
        graph = connected_erdos_renyi(12, 0.3, seed=5)

        async def main():
            scheduler = EnumerationScheduler(slice_answers=1)
            job = await scheduler.submit(
                ServiceRequest(
                    op="enumerate", graph=graph, cost="fill", deadline=0.05
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames, scheduler

        (frames, scheduler) = run(main())
        terminal = frames[-1]
        assert terminal["type"] == "deadline"
        assert terminal["checkpoint"] is not None
        assert terminal["emitted"] == len(answers_of(frames))
        # The token is a real (signed) checkpoint resuming the exact suffix.
        from repro.service.protocol import decode_token

        token = scheduler.open_token(decode_token(terminal["checkpoint"]))
        session = Session()
        resumed = session.resume(token, k=4)
        emitted = len(answers_of(frames))
        reference = serial_lines(graph, "fill", emitted + 4)
        got = job_lines(frames) + serialize_answers(resumed.results)
        assert got == reference

    def test_cancel_releases_and_reports(self):
        graph = connected_erdos_renyi(12, 0.3, seed=6)

        async def main():
            scheduler = EnumerationScheduler(max_workers=1, slice_answers=1)
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", graph=graph, cost="fill")
            )
            frames = []
            while True:
                frame = await job.next_frame()
                frames.append(frame)
                if frame["type"] != "answer":
                    break
                if len(frames) == 2:
                    scheduler.cancel(job)
            await job.wait()
            stats = scheduler.stats()
            await scheduler.close()
            return frames, stats

        frames, stats = run(main())
        assert frames[-1]["type"] == "cancelled"
        assert frames[-1]["checkpoint"] is not None
        assert stats["active"] == 0
        assert stats["completed"] == stats["admitted"] == 1

    def test_cancel_before_any_answer(self):
        graph = connected_erdos_renyi(10, 0.35, seed=4)

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", graph=graph, cost="fill")
            )
            scheduler.cancel(job)
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "cancelled"


class TestErrorPaths:
    def test_unknown_cost_is_in_band_error(self):
        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(
                    op="enumerate", graph=paper_example_graph(), cost="nope"
                )
            )
            frames = await job.drain()
            stats = scheduler.stats()
            await scheduler.close()
            return frames, stats

        frames, stats = run(main())
        assert frames[-1]["type"] == "error"
        assert frames[-1]["code"] == "bad-request"
        assert stats["active"] == 0

    def test_disconnected_graph_without_composition_is_in_band_error(self):
        graph = Graph(vertices=[1, 2, 3, 4], edges=[(1, 2), (3, 4)])

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(
                    op="enumerate",
                    graph=graph,
                    cost="lex-width-fill",  # no composition: no atom split
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "error"
        assert "connected" in frames[-1]["message"]

    def test_scheduler_survives_failed_jobs(self):
        async def main():
            scheduler = EnumerationScheduler()
            bad = await scheduler.submit(
                ServiceRequest(
                    op="enumerate", graph=paper_example_graph(), cost="nope"
                )
            )
            await bad.drain()
            good = await scheduler.submit(
                ServiceRequest(
                    op="top", graph=paper_example_graph(), cost="fill", k=2
                )
            )
            frames = await good.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "stats"
        assert answers_of(frames)

    def test_corrupt_resume_token_is_in_band_error(self):
        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", token=b"garbage")
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "error"

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EnumerationScheduler(max_workers=0)
        with pytest.raises(ValueError):
            EnumerationScheduler(slice_answers=0)

    def test_submit_after_close_raises(self):
        async def main():
            scheduler = EnumerationScheduler()
            await scheduler.close()
            with pytest.raises(RuntimeError):
                await scheduler.submit(
                    ServiceRequest(
                        op="top", graph=paper_example_graph(), cost="fill", k=1
                    )
                )

        run(main())


class TestBackpressure:
    def test_slow_consumer_bounds_the_frame_queue(self):
        """A job whose consumer stalls stops slicing at the queue bound
        instead of buffering the whole enumeration server-side."""
        graph = connected_erdos_renyi(12, 0.3, seed=5)

        async def main():
            scheduler = EnumerationScheduler(
                max_workers=1, slice_answers=1, max_pending_frames=3
            )
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", graph=graph, cost="fill")
            )
            # Let the producer run without any consumption: it must stall
            # at the bound rather than keep enumerating.
            for _ in range(50):
                await asyncio.sleep(0.005)
                if job.frames.qsize() >= 3:
                    break
            stalled_at = job.frames.qsize()
            assert stalled_at <= 3
            await asyncio.sleep(0.05)
            assert job.frames.qsize() <= 3  # still bounded after a pause
            # Catching up resumes the stream with the exact sequence.
            frames = []
            while True:
                frame = await job.next_frame()
                frames.append(frame)
                if frame["type"] != "answer":
                    break
                if len([f for f in frames if f["type"] == "answer"]) >= 8:
                    scheduler.cancel(job)
            answer_frames = [f for f in frames if f["type"] == "answer"]
            await scheduler.close()
            return answer_frames

        from repro.service.protocol import encode_frame

        answer_frames = run(main())
        got = [encode_frame(f) for f in answer_frames]
        assert got == serial_lines(graph, "fill", len(got))

    def test_close_unblocks_abandoned_backpressured_jobs(self):
        graph = connected_erdos_renyi(12, 0.3, seed=5)

        async def main():
            scheduler = EnumerationScheduler(
                max_workers=1, slice_answers=1, max_pending_frames=2
            )
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", graph=graph, cost="fill")
            )
            # Never consume: the producer blocks on the full queue.
            for _ in range(50):
                await asyncio.sleep(0.005)
                if job.frames.qsize() >= 2:
                    break
            await scheduler.close()  # must not deadlock
            return scheduler.stats()

        stats = run(main())
        assert stats["active"] == 0

    def test_validation_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            EnumerationScheduler(max_pending_frames=0)


class TestExhaustionReporting:
    def test_capped_decompositions_are_not_reported_exhausted(self):
        graph = paper_example_graph()  # 10 width-ranked decompositions

        async def main(k):
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="decompositions", graph=graph, cost="width", k=k)
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        capped = run(main(2))
        assert len(answers_of(capped)) == 2
        assert capped[-1]["exhausted"] is False
        drained = run(main(20))
        assert len(answers_of(drained)) == 10
        assert drained[-1]["exhausted"] is True


class TestDiverseParity:
    def test_answer_budget_matches_session_surface(self):
        """The service's diverse jobs and Session.diverse are one
        implementation: the k/answer_budget interaction must agree."""
        graph = connected_erdos_renyi(10, 0.35, seed=0)

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(
                    op="diverse", graph=graph, cost="fill", k=5,
                    answer_budget=2, min_distance=1,
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        from repro.api import EnumerationRequest

        frames = run(main())
        expected = Session().execute(
            EnumerationRequest(
                graph=graph, cost="fill", k=5, mode="diverse",
                min_distance=1, answer_budget=2,
            )
        )
        got = answers_of(frames)
        assert len(got) == len(expected.results) == 2
        assert [f["cost"] for f in got] == [t.cost for t in expected.results]


class TestTokenAuthentication:
    def test_tampered_token_is_rejected_before_unpickling(self):
        graph = connected_erdos_renyi(10, 0.35, seed=2)

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="top", graph=graph, cost="fill", k=3)
            )
            frames = await job.drain()
            from repro.service.protocol import decode_token

            token = bytearray(decode_token(frames[-1]["checkpoint"]))
            token[-1] ^= 0xFF  # flip one payload byte
            bad = await scheduler.submit(
                ServiceRequest(op="enumerate", token=bytes(token))
            )
            bad_frames = await bad.drain()
            await scheduler.close()
            return bad_frames

        frames = run(main())
        assert frames[-1]["type"] == "error"
        # Tampered bytes and a rotated key are indistinguishable to the
        # HMAC check, so both report the key-mismatch code (distinct
        # from ``bad-request`` structural errors like truncation).
        assert frames[-1]["code"] == "token_key_mismatch"
        assert "authentication" in frames[-1]["message"]

    def test_foreign_token_is_rejected(self):
        """A token minted by one scheduler instance does not resume on
        another (random per-instance keys) unless keys are shared."""
        graph = connected_erdos_renyi(10, 0.35, seed=2)

        async def mint():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="top", graph=graph, cost="fill", k=3)
            )
            frames = await job.drain()
            await scheduler.close()
            from repro.service.protocol import decode_token

            return decode_token(frames[-1]["checkpoint"]), scheduler.token_key

        token, key = run(mint())

        async def replay(token_key=None):
            scheduler = EnumerationScheduler(token_key=token_key)
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", token=token, k=2)
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        foreign = run(replay())
        assert foreign[-1]["type"] == "error"
        assert "authentication" in foreign[-1]["message"]
        shared = run(replay(token_key=key))  # shared key: portable tokens
        assert shared[-1]["type"] == "stats"
        assert [f["rank"] for f in answers_of(shared)] == [3, 4]

    def test_raw_pickle_never_reaches_the_loader(self):
        """The signing gate rejects unauthenticated bytes outright —
        the pickle loader must never see them."""
        payload = b"cos\nsystem\n(S'true'\ntR."  # classic reduce payload

        async def main():
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(op="enumerate", token=payload * 3)
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "error"
        assert "authentication" in frames[-1]["message"]


class TestDiverseExhaustionSemantics:
    def test_scan_cap_is_not_reported_as_exhaustion(self):
        graph = connected_erdos_renyi(12, 0.3, seed=5)  # 200+ answers

        async def main(scan_limit):
            scheduler = EnumerationScheduler()
            job = await scheduler.submit(
                ServiceRequest(
                    op="diverse", graph=graph, cost="fill", k=50,
                    min_distance=10, scan_limit=scan_limit,
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main(scan_limit=3))
        stats = frames[-1]
        assert stats["type"] == "stats"
        # Only the 3-deep scan window ended; the ranked space did not.
        assert stats["exhausted"] is False
        assert stats["expansions"] > 0  # real source-stream measurements
        assert stats["engine"] != "none"


class TestDiverseInterruption:
    def test_deadline_interrupts_a_long_diverse_scan(self):
        """Cancel/deadline land mid-scan (between scanned candidates),
        not only between kept answers — a diverse job that keeps nothing
        must still honor its deadline."""
        graph = connected_erdos_renyi(12, 0.3, seed=5)  # 200+ answers

        async def main():
            scheduler = EnumerationScheduler(slice_answers=1)
            job = await scheduler.submit(
                ServiceRequest(
                    op="diverse", graph=graph, cost="fill", k=50,
                    min_distance=10_000,  # nothing after the first matches
                    scan_limit=100_000, deadline=0.15,
                )
            )
            frames = await job.drain()
            await scheduler.close()
            return frames

        import time as _time

        started = _time.monotonic()
        frames = run(main())
        elapsed = _time.monotonic() - started
        assert frames[-1]["type"] == "deadline"
        assert elapsed < 5, f"deadline ignored for {elapsed:.1f}s of scanning"

    def test_cancel_interrupts_a_long_diverse_scan(self):
        graph = connected_erdos_renyi(12, 0.3, seed=5)

        async def main():
            scheduler = EnumerationScheduler(slice_answers=1)
            job = await scheduler.submit(
                ServiceRequest(
                    op="diverse", graph=graph, cost="fill", k=50,
                    min_distance=10_000, scan_limit=100_000,
                )
            )
            await asyncio.sleep(0.1)  # let the scan get going
            scheduler.cancel(job)
            frames = await job.drain()
            await scheduler.close()
            return frames

        frames = run(main())
        assert frames[-1]["type"] == "cancelled"
