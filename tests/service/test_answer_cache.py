"""Scheduler-level answer-prefix serving (ISSUE 9 acceptance).

A repeat ``top``/``enumerate`` request against a warmed cache must be
served from disk without consuming an executor slot or a worker seat —
on both execution backends — with answer bytes identical to live
enumeration, and the serve must be observable (``answers_served``
scheduler counter, ``engine == "cache"`` terminal frame, untouched
worker sessions).
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import connected_erdos_renyi
from repro.service import ServerThread, ServiceClient
from repro.service.protocol import StatsFrame

K = 6


@pytest.fixture(autouse=True)
def _isolated_cache_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_TOKEN_SECRET", raising=False)


def server_kwargs(backend, cache_dir, **extra):
    kwargs = {
        "max_workers": 2,
        "backend": backend,
        "cache_dir": str(cache_dir),
        **extra,
    }
    if backend == "process":
        kwargs["worker_processes"] = 2
    return kwargs


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_repeat_top_serves_without_worker_seat(tmp_path, backend):
    graph = connected_erdos_renyi(10, 0.35, seed=0)
    cache_dir = tmp_path / "cache"
    with ServerThread(**server_kwargs(backend, cache_dir)) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        live = client.top(graph, "fill", k=K)
    assert isinstance(live.terminal, StatsFrame)
    assert live.terminal.engine != "cache"

    with ServerThread(**server_kwargs(backend, cache_dir)) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        warm = client.top(graph, "fill", k=K)
        stats = ServiceClient(*handle.address, timeout=60.0).service_stats()

    assert warm.answer_lines == live.answer_lines
    assert isinstance(warm.terminal, StatsFrame)
    assert warm.terminal.engine == "cache"
    assert warm.terminal.emitted == K
    assert stats.scheduler["answers_served"] >= 1
    # Zero worker dispatch: the job never reached a worker seat, so no
    # worker session was ever opened for the graph's kernel.
    for row in stats.workers:
        assert not row.get("sessions"), row


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_extension_write_back_then_pure_hit(tmp_path, backend):
    """k'=2K after a warmed k=K: live bytes match a cache-less server,
    and the extended prefix then serves the repeat entirely from disk."""
    graph = connected_erdos_renyi(10, 0.35, seed=0)
    with ServerThread(max_workers=2, backend=backend) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        reference = client.top(graph, "fill", k=2 * K)

    cache_dir = tmp_path / "cache"
    with ServerThread(**server_kwargs(backend, cache_dir)) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        client.top(graph, "fill", k=K)
    with ServerThread(**server_kwargs(backend, cache_dir)) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        extended = client.top(graph, "fill", k=2 * K)
        repeat = client.top(graph, "fill", k=2 * K)
        stats = ServiceClient(*handle.address, timeout=60.0).service_stats()

    assert extended.answer_lines == reference.answer_lines
    assert repeat.answer_lines == reference.answer_lines
    assert isinstance(repeat.terminal, StatsFrame)
    assert repeat.terminal.engine == "cache"
    assert stats.scheduler["answers_served"] >= 1


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_token_resume_serves_from_disk(tmp_path, backend):
    """A resume token whose page is covered by the cached prefix replays
    from disk on a fresh server sharing the signing key."""
    graph = connected_erdos_renyi(10, 0.35, seed=2)
    key = b"answer-cache-suite"
    cache_dir = tmp_path / "cache"
    with ServerThread(
        token_key=key, **server_kwargs(backend, cache_dir)
    ) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        page = client.top(graph, "fill", k=4)
        token = page.checkpoint
        first_rest = client.resume(token, k=4)
    assert token is not None

    with ServerThread(
        token_key=key, **server_kwargs(backend, cache_dir)
    ) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        rest = client.resume(token, k=4)
        stats = ServiceClient(*handle.address, timeout=60.0).service_stats()

    assert rest.answer_lines == first_rest.answer_lines
    assert isinstance(rest.terminal, StatsFrame)
    assert rest.terminal.engine == "cache"
    assert [a.rank for a in rest.answers] == [4, 5, 6, 7]
    assert stats.scheduler["answers_served"] >= 1
    for row in stats.workers:
        assert not row.get("sessions"), row


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_cached_serve_returns_resumable_token(tmp_path, backend):
    """The checkpoint on a cache-served terminal frame is a live token:
    resuming it continues the exact sequence."""
    graph = connected_erdos_renyi(10, 0.35, seed=0)
    cache_dir = tmp_path / "cache"
    with ServerThread(**server_kwargs(backend, cache_dir)) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        # k=K first so the record keeps an interior checkpoint at K,
        # making the later k=K page servable from disk.
        client.top(graph, "fill", k=K)
        live = client.top(graph, "fill", k=2 * K)
    with ServerThread(**server_kwargs(backend, cache_dir)) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        warm = client.top(graph, "fill", k=K)
        assert warm.terminal.engine == "cache"
        token = warm.checkpoint
        assert token is not None
        rest = client.resume(token, k=K)
    got = list(warm.answer_lines) + list(rest.answer_lines)
    assert got == list(live.answer_lines)
