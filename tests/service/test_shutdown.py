"""SIGINT shutdown ordering of a foreground ``repro serve``.

A real ``repro serve --backend process`` subprocess is interrupted while
a slice is in flight.  The teardown contract under audit:

* the signal triggers the *orderly* stop path (cancel jobs → join every
  worker seat → close backend sessions), not an exception unwinding
  mid-teardown;
* no worker child outlives the server — workers ignore the terminal's
  SIGINT (they share the foreground process group) and wait for the
  parent's ``shutdown`` message;
* the shared on-disk artifact store is closed, not abandoned: after
  exit the sqlite WAL sidecar is checkpointed away (a hot non-empty
  ``-wal`` file is the signature of a store handle that died mid-write).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.graphs.generators import connected_erdos_renyi
from repro.service import AnswerFrame, ServiceClient, ServiceRequest

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="child enumeration and signal delivery use /proc and POSIX signals",
)


def _children_of(pid: int) -> set[int]:
    """Direct child PIDs of ``pid`` (every thread's children)."""
    found: set[int] = set()
    task_dir = f"/proc/{pid}/task"
    try:
        for tid in os.listdir(task_dir):
            try:
                with open(f"{task_dir}/{tid}/children") as fh:
                    found.update(int(tok) for tok in fh.read().split())
            except OSError:
                continue
    except OSError:
        pass
    return found


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _survivors(pids: set[int], timeout: float = 10.0) -> set[int]:
    """PIDs of ``pids`` still alive after a grace window.

    Worker seats are joined *before* the parent exits, but the
    multiprocessing resource tracker (also a child) only notices the
    parent's death via pipe EOF, asynchronously — give it a moment.
    """
    deadline = time.monotonic() + timeout
    alive = {pid for pid in pids if _pid_alive(pid)}
    while alive and time.monotonic() < deadline:
        time.sleep(0.05)
        alive = {pid for pid in alive if _pid_alive(pid)}
    return alive


@pytest.fixture
def serve_proc(tmp_path):
    cache_dir = tmp_path / "cache"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--backend",
            "process",
            "--workers",
            "2",
            "--cache-dir",
            str(cache_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        yield proc, cache_dir
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()


def _bound_port(proc) -> int:
    line = proc.stdout.readline()
    assert "listening on" in line, f"unexpected first line: {line!r}"
    return int(line.rsplit(":", 1)[1])


def test_sigint_mid_slice_reaps_workers_and_cools_the_wal(serve_proc):
    proc, cache_dir = serve_proc
    port = _bound_port(proc)

    # Two worker seats spawn with the backend, before any job arrives.
    deadline = time.monotonic() + 30
    children: set[int] = set()
    while time.monotonic() < deadline and len(children) < 2:
        children = _children_of(proc.pid)
        time.sleep(0.05)
    assert len(children) >= 2, f"worker seats never appeared: {children}"

    # Put a slice in flight: open a long job and wait for the first
    # answer frame, which proves a worker is actively enumerating (and
    # writing artifacts through the shared store).
    client = ServiceClient("127.0.0.1", port, timeout=60.0)
    stream = client.open(
        ServiceRequest(
            op="enumerate",
            graph=connected_erdos_renyi(12, 0.3, seed=6),
            cost="fill",
            k=100_000,
        )
    )
    first = next(stream)
    assert isinstance(first, AnswerFrame)

    # Interrupt exactly as Ctrl-C would, mid-stream.
    proc.send_signal(signal.SIGINT)
    assert proc.wait(timeout=60) == 0
    output = proc.stdout.read()
    assert "shutting down" in output

    stream.close()

    # Every worker seat was joined before the parent exited.
    survivors = _survivors(children)
    assert not survivors, f"orphaned worker processes: {survivors}"

    # The shared store closed cleanly: sqlite checkpoints and removes
    # the WAL sidecar when the last handle closes; a hot WAL means a
    # handle was abandoned mid-write.
    assert (cache_dir / "artifacts.sqlite").exists()
    wal = cache_dir / "artifacts.sqlite-wal"
    assert not wal.exists() or wal.stat().st_size == 0, (
        f"hot WAL left behind ({wal.stat().st_size} bytes)"
    )


def test_sigterm_is_an_orderly_stop_too(serve_proc):
    proc, cache_dir = serve_proc
    port = _bound_port(proc)
    client = ServiceClient("127.0.0.1", port, timeout=60.0)
    result = client.top(
        connected_erdos_renyi(10, 0.35, seed=0), "fill", k=3
    )
    assert len(result.answers) == 3
    children = _children_of(proc.pid)
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    assert not _survivors(children)
    wal = cache_dir / "artifacts.sqlite-wal"
    assert not wal.exists() or wal.stat().st_size == 0
