"""Tests for MinTriang: optimal minimal triangulation via the block DP."""

import pytest

from repro.baselines.brute import minimal_triangulations_bruteforce
from repro.core.context import TriangulationContext
from repro.core.mintriang import min_triangulation, min_triangulation_with_context
from repro.costs.classic import FillInCost, LexWidthFillCost, SumExpBagCost, WidthCost
from repro.graphs.chordal import fill_in, maximal_cliques_chordal, treewidth_chordal
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    tree_graph,
)
from repro.graphs.graph import Graph
from repro.triangulation.minimality import is_minimal_triangulation
from tests.conftest import connected_random_graphs


class TestOptimality:
    def test_width_matches_bruteforce(self):
        for g in connected_random_graphs(7, 0.4, 10, seed_base=300):
            result = min_triangulation(g, WidthCost())
            expected = min(
                treewidth_chordal(h) for h in minimal_triangulations_bruteforce(g)
            )
            assert result.cost == expected
            assert result.width == expected

    def test_fill_matches_bruteforce(self):
        for g in connected_random_graphs(7, 0.4, 10, seed_base=400):
            result = min_triangulation(g, FillInCost())
            expected = min(
                fill_in(g, h) for h in minimal_triangulations_bruteforce(g)
            )
            assert result.cost == expected
            assert result.fill_in() == expected

    def test_result_is_minimal_triangulation(self):
        for g in connected_random_graphs(9, 0.3, 6, seed_base=500):
            for cost in (WidthCost(), FillInCost(), SumExpBagCost()):
                result = min_triangulation(g, cost)
                assert is_minimal_triangulation(g, result.chordal_graph), cost.name

    def test_bags_are_maximal_cliques(self):
        for g in connected_random_graphs(8, 0.35, 6, seed_base=600):
            result = min_triangulation(g, FillInCost())
            assert result.bags == maximal_cliques_chordal(result.chordal_graph)

    def test_sum_exp_matches_bruteforce(self):
        for g in connected_random_graphs(7, 0.4, 6, seed_base=700):
            result = min_triangulation(g, SumExpBagCost(2.0))
            expected = min(
                sum(2.0 ** len(b) for b in maximal_cliques_chordal(h))
                for h in minimal_triangulations_bruteforce(g)
            )
            assert result.cost == pytest.approx(expected)

    def test_lex_cost_minimizes_width_first(self):
        for g in connected_random_graphs(7, 0.45, 6, seed_base=800):
            lex = min_triangulation(g, LexWidthFillCost(g))
            wopt = min_triangulation(g, WidthCost())
            assert lex.width == wopt.width


class TestKnownGraphs:
    def test_paper_example_width(self, paper_graph):
        result = min_triangulation(paper_graph, WidthCost())
        assert result.cost == 2  # H2 of Figure 1(b)

    def test_paper_example_fill(self, paper_graph):
        result = min_triangulation(paper_graph, FillInCost())
        assert result.cost == 1  # saturate {u, v}

    def test_cycle(self):
        g = cycle_graph(8)
        assert min_triangulation(g, WidthCost()).cost == 2
        assert min_triangulation(g, FillInCost()).cost == 5  # n - 3

    def test_grid_3x3_treewidth(self):
        assert min_triangulation(grid_graph(3, 3), WidthCost()).cost == 3

    def test_grid_2xk_treewidth(self):
        assert min_triangulation(grid_graph(2, 5), WidthCost()).cost == 2

    def test_chordal_graphs_zero_fill(self):
        for g in (path_graph(6), complete_graph(5), tree_graph(9, seed=1)):
            result = min_triangulation(g, FillInCost())
            assert result.cost == 0
            assert result.chordal_graph == g

    def test_empty_and_tiny(self):
        assert min_triangulation(Graph(), WidthCost()).bags == frozenset()
        single = Graph(vertices=[7])
        assert min_triangulation(single, WidthCost()).bags == {frozenset({7})}


class TestDisconnected:
    def test_componentwise(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)])
        result = min_triangulation(g, FillInCost())
        assert result.cost == 1  # only the 4-cycle needs one chord
        assert is_minimal_triangulation(g, result.chordal_graph)

    def test_isolated_vertices(self):
        g = Graph(vertices=[1, 2, 3])
        result = min_triangulation(g, WidthCost())
        assert result.bags == {frozenset({1}), frozenset({2}), frozenset({3})}


class TestContextReuse:
    def test_same_context_multiple_costs(self, paper_graph):
        ctx = TriangulationContext.build(paper_graph)
        w = min_triangulation_with_context(ctx, WidthCost())
        f = min_triangulation_with_context(ctx, FillInCost())
        assert w.cost == 2 and f.cost == 1

    def test_width_bound_feasible(self):
        g = cycle_graph(6)
        result = min_triangulation(g, FillInCost(), width_bound=2)
        assert result is not None
        assert result.width <= 2

    def test_width_bound_infeasible(self):
        g = complete_graph(5)  # treewidth 4
        assert min_triangulation(g, WidthCost(), width_bound=2) is None

    def test_width_bound_matches_filtered_optimum(self):
        for g in connected_random_graphs(7, 0.5, 6, seed_base=900):
            unbounded = min_triangulation(g, FillInCost())
            b = int(unbounded.width)
            bounded = min_triangulation(g, FillInCost(), width_bound=b)
            assert bounded is not None
            assert bounded.cost == unbounded.cost or bounded.width <= b


class TestTriangulationObject:
    def test_minimal_separators_property(self, paper_graph):
        result = min_triangulation(paper_graph, FillInCost())
        assert result.minimal_separators == {
            frozenset({"u", "v"}),
            frozenset({"v"}),
        }

    def test_len_is_bag_count(self, paper_graph):
        result = min_triangulation(paper_graph, FillInCost())
        assert len(result) == len(result.bags) == 4
