"""Tests for the exact-measure facade (treewidth, minimum fill-in)."""

import pytest

from repro.core.exact import (
    minimum_fill_in,
    treewidth,
    weighted_minimum_fill_in,
    weighted_treewidth,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    mycielski_graph,
    path_graph,
    petersen_graph,
    tree_graph,
)
from repro.graphs.graph import Graph


class TestTreewidth:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (Graph(), -1),
            (Graph(vertices=[1]), 0),
            (path_graph(7), 1),
            (tree_graph(10, seed=2), 1),
            (cycle_graph(9), 2),
            (complete_graph(6), 5),
            (grid_graph(3, 3), 3),
            (grid_graph(4, 4), 4),
            (petersen_graph(), 4),
            (hypercube_graph(3), 3),
            (mycielski_graph(4), 5),
        ],
    )
    def test_known_values(self, graph, expected):
        assert treewidth(graph) == expected

    def test_disconnected_max_over_components(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (3, 4)])
        assert treewidth(g) == 2

    def test_against_networkx_heuristic_lower(self):
        # networkx's min-degree heuristic is an upper bound on treewidth.
        import networkx as nx
        from networkx.algorithms.approximation import treewidth_min_degree

        from repro.graphs.generators import erdos_renyi

        for seed in range(6):
            g = erdos_renyi(11, 0.3, seed=seed)
            ub, _ = treewidth_min_degree(g.to_networkx())
            assert treewidth(g) <= ub


class TestMinimumFillIn:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(5), 0),
            (cycle_graph(4), 1),
            (cycle_graph(8), 5),
            (complete_graph(5), 0),
            (grid_graph(2, 3), 2),
        ],
    )
    def test_known_values(self, graph, expected):
        assert minimum_fill_in(graph) == expected

    def test_chordal_is_zero(self):
        assert minimum_fill_in(tree_graph(12, seed=4)) == 0


class TestWeightedVariants:
    def test_weighted_treewidth_with_cardinality(self):
        g = cycle_graph(6)
        value, tri = weighted_treewidth(g, lambda bag: float(len(bag)))
        assert value == 3.0  # bags of size 3
        assert tri.width == 2

    def test_weighted_fill_uniform(self):
        g = cycle_graph(6)
        value, tri = weighted_minimum_fill_in(g, lambda u, v: 1.0)
        assert value == 3.0  # n - 3 chords
        assert tri.fill_in() == 3

    def test_weighted_fill_steers_choice(self):
        # C4 has two minimal triangulations (chord {0,2} or {1,3});
        # pricing one chord higher forces the other.
        g = cycle_graph(4)

        def price(u, v):
            return 100.0 if frozenset((u, v)) == frozenset({0, 2}) else 1.0

        value, tri = weighted_minimum_fill_in(g, price)
        assert value == 1.0
        assert tri.chordal_graph.has_edge(1, 3)
