"""Tests for the diversity extension (paper §8 future work)."""

from repro.core.diversity import (
    diverse_top_k,
    max_min_dispersion_k,
    triangulation_distance,
)
from repro.core.ranked import top_k_triangulations
from repro.costs.classic import FillInCost, WidthCost
from repro.graphs.generators import cycle_graph, paper_example_graph


class TestDistance:
    def test_zero_iff_same(self, paper_graph):
        a, b = top_k_triangulations(paper_graph, WidthCost(), 2)
        assert triangulation_distance(a, a) == 0
        assert triangulation_distance(a, b) > 0

    def test_symmetric(self, paper_graph):
        a, b = top_k_triangulations(paper_graph, WidthCost(), 2)
        assert triangulation_distance(a, b) == triangulation_distance(b, a)

    def test_paper_example_value(self, paper_graph):
        # Fill sets: {uv} vs {w1w2, w1w3, w2w3} → symmetric difference 4.
        a, b = top_k_triangulations(paper_graph, FillInCost(), 2)
        assert triangulation_distance(a, b) == 4


class TestDiverseTopK:
    def test_min_distance_one_is_plain_top_k(self):
        g = cycle_graph(6)
        plain = top_k_triangulations(g, FillInCost(), 5)
        diverse = diverse_top_k(g, FillInCost(), 5, min_distance=1)
        assert [t.bags for t in diverse] == [t.bags for t in plain]

    def test_pairwise_separation_enforced(self):
        g = cycle_graph(7)
        kept = diverse_top_k(g, FillInCost(), 6, min_distance=4)
        for i, a in enumerate(kept):
            for b in kept[i + 1 :]:
                assert triangulation_distance(a, b) >= 4

    def test_first_is_optimum(self):
        g = cycle_graph(7)
        kept = diverse_top_k(g, FillInCost(), 3, min_distance=3)
        assert kept[0].cost == 4  # C7 optimum fill = n - 3

    def test_respects_scan_limit(self):
        g = cycle_graph(7)
        kept = diverse_top_k(g, FillInCost(), 10, min_distance=100, scan_limit=5)
        assert len(kept) == 1  # nothing is 100 apart; only the optimum kept

    def test_k_zero(self):
        assert diverse_top_k(cycle_graph(5), FillInCost(), 0) == []

    def test_width_bound_threads_through(self):
        """Regression: diverse_top_k used to silently ignore width bounds.

        C6 has treewidth 2, so a bound of 1 must yield nothing, a bound
        of 2 must filter nothing, and both must agree with the bounded
        ranked stream rather than scanning the unbounded one.
        """
        g = cycle_graph(6)
        assert diverse_top_k(g, FillInCost(), 5, width_bound=1) == []
        bounded = diverse_top_k(g, FillInCost(), 5, width_bound=2)
        unbounded = diverse_top_k(g, FillInCost(), 5)
        assert [t.bags for t in bounded] == [t.bags for t in unbounded]
        for tri in bounded:
            assert tri.width <= 2


class TestMaxMinDispersion:
    def test_selects_k(self):
        g = cycle_graph(7)
        pool = top_k_triangulations(g, FillInCost(), 12)
        chosen = max_min_dispersion_k(pool, 4)
        assert len(chosen) == 4
        assert chosen[0].bags == pool[0].bags  # seeded with the optimum

    def test_dispersion_not_worse_than_prefix(self):
        g = cycle_graph(7)
        pool = top_k_triangulations(g, FillInCost(), 12)

        def min_dist(ts):
            return min(
                triangulation_distance(a, b)
                for i, a in enumerate(ts)
                for b in ts[i + 1 :]
            )

        greedy = max_min_dispersion_k(pool, 4)
        prefix = pool[:4]
        assert min_dist(greedy) >= min_dist(prefix)

    def test_small_pool(self):
        g = cycle_graph(4)
        pool = top_k_triangulations(g, FillInCost(), 2)
        assert len(max_min_dispersion_k(pool, 10)) == 2
        assert max_min_dispersion_k([], 3) == []
