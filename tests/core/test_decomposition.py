"""Tests for TreeDecomposition validation and properness."""

import pytest

from repro.core.decomposition import TreeDecomposition
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_example_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.triangulation.lb_triang import lb_triang


def paper_decompositions(g):
    """The five tree decompositions of Figure 1(c), hand-encoded."""
    w = ["w1", "w2", "w3"]
    t1 = TreeDecomposition(
        {0: {"u", *w}, 1: {"v", *w}, 2: {"v", "v'"}},
        [(0, 1), (1, 2)],
    )
    t2 = TreeDecomposition(
        {0: {"u", "v", "w1"}, 1: {"u", "v", "w2"}, 2: {"u", "v", "w3"}, 3: {"v", "v'"}},
        [(0, 1), (1, 2), (1, 3)],
    )
    # T1': T1 with w1 added to the bottom bag (strictly subsumed by T1)
    t1p = TreeDecomposition(
        {0: {"u", *w}, 1: {"v", *w}, 2: {"v", "v'", "w1"}},
        [(0, 1), (1, 2)],
    )
    # T2': bottom two bags of T2 merged
    t2p = TreeDecomposition(
        {0: {"u", "v", "w1"}, 1: {"u", "v", "w2", "w3"}, 2: {"v", "v'"}},
        [(0, 1), (1, 2)],
    )
    return t1, t2, t1p, t2p


class TestConstruction:
    def test_edge_count_enforced(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {1}, 1: {2}}, [])
        with pytest.raises(ValueError):
            TreeDecomposition({0: {1}}, [(0, 0)])

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {1}}, [(0, 5)])

    def test_width(self):
        td = TreeDecomposition({0: {1, 2, 3}, 1: {3, 4}}, [(0, 1)])
        assert td.width == 2
        assert len(td) == 2


class TestValidity:
    def test_paper_decompositions_valid(self, paper_graph):
        for td in paper_decompositions(paper_graph):
            assert td.is_valid(paper_graph)

    def test_missing_vertex(self):
        g = path_graph(3)
        td = TreeDecomposition({0: {0, 1}}, [])
        assert not td.is_valid(g)

    def test_missing_edge(self):
        g = cycle_graph(3)
        td = TreeDecomposition({0: {0, 1}, 1: {1, 2}, 2: {2, 0}}, [(0, 1), (1, 2)])
        # all vertices/edges covered? edge (2,0) is in bag 2... but vertex 0
        # occurs in bags 0 and 2 which are not adjacent: junction fails.
        assert not td.is_valid(g)

    def test_junction_property_violation(self):
        g = path_graph(4)
        td = TreeDecomposition(
            {0: {0, 1}, 1: {2, 3}, 2: {1, 2}}, [(0, 1), (1, 2)]
        )
        assert not td.is_valid(g)  # vertex 2 occurs at nodes 1,2 not adjacent?
        # nodes 1 and 2 are adjacent; vertex 1 occurs at 0 and 2, path through 1
        # which lacks it.

    def test_cyclic_edges_rejected_by_validity(self):
        g = path_graph(3)
        td = TreeDecomposition(
            {0: {0, 1}, 1: {1, 2}, 2: {1}}, [(0, 1), (1, 2)]
        )
        assert td.is_valid(g)


class TestProperness:
    def test_figure1_properness(self, paper_graph):
        t1, t2, t1p, t2p = paper_decompositions(paper_graph)
        assert t1.is_proper(paper_graph)
        assert t2.is_proper(paper_graph)
        assert not t1p.is_proper(paper_graph)  # strictly subsumed by T1
        assert not t2p.is_proper(paper_graph)  # strictly subsumed by T2

    def test_clique_tree_check(self, paper_graph):
        t1, *_ = paper_decompositions(paper_graph)
        h1 = paper_graph.copy()
        h1.saturate({"w1", "w2", "w3"})
        assert t1.is_clique_tree(h1)
        assert not t1.is_clique_tree(paper_graph)


class TestFromBags:
    def test_from_triangulation(self):
        for seed in range(6):
            g = erdos_renyi(9, 0.3, seed=seed)
            h = lb_triang(g)
            td = TreeDecomposition.from_triangulation(h)
            assert td.is_valid(h)
            assert td.is_valid(g)
            if g.is_connected():
                assert td.is_proper(g)

    def test_single_bag(self):
        td = TreeDecomposition.from_bags([{1, 2, 3}])
        triangle = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        assert td.is_valid(triangle)
        assert td.is_proper(triangle)

    def test_disconnected_bags_stitched(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        td = TreeDecomposition.from_bags([{1, 2}, {3, 4}])
        assert td.is_valid(g)
