"""Tests for maximum-spanning-tree / clique-tree enumeration."""

import math
from itertools import combinations

import pytest

from repro.core.spanning import clique_trees, count_clique_trees, maximum_spanning_trees
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.triangulation.lb_triang import lb_triang


def brute_force_max_spanning_trees(n, edges):
    """All maximum spanning trees by trying every (n-1)-subset of edges."""
    best_weight = -math.inf
    trees = []
    for subset in combinations(range(len(edges)), n - 1):
        # check it forms a spanning tree
        parent = list(range(n))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        ok = True
        weight = 0.0
        for i in subset:
            w, a, b = edges[i]
            ra, rb = find(a), find(b)
            if ra == rb:
                ok = False
                break
            parent[ra] = rb
            weight += w
        if not ok:
            continue
        if weight > best_weight + 1e-9:
            best_weight = weight
            trees = [frozenset(subset)]
        elif abs(weight - best_weight) <= 1e-9:
            trees.append(frozenset(subset))
    return set(trees)


class TestMaximumSpanningTrees:
    def test_matches_bruteforce_random(self):
        import random

        for seed in range(10):
            rng = random.Random(seed)
            n = rng.randint(3, 6)
            edges = []
            for a in range(n):
                for b in range(a + 1, n):
                    if rng.random() < 0.7:
                        edges.append((float(rng.randint(1, 3)), a, b))
            got = {frozenset(t) for t in maximum_spanning_trees(n, edges)}
            expected = brute_force_max_spanning_trees(n, edges)
            assert got == expected, seed

    def test_unique_weights_single_tree(self):
        edges = [(3.0, 0, 1), (2.0, 1, 2), (1.0, 0, 2)]
        trees = list(maximum_spanning_trees(3, edges))
        assert len(trees) == 1
        assert trees[0] == [0, 1]

    def test_uniform_weights_counts_all_spanning_trees(self):
        # K_4 with equal weights: Cayley's formula gives 4^2 = 16 trees.
        edges = [(1.0, a, b) for a in range(4) for b in range(a + 1, 4)]
        assert len(list(maximum_spanning_trees(4, edges))) == 16

    def test_disconnected_yields_nothing(self):
        assert list(maximum_spanning_trees(3, [(1.0, 0, 1)])) == []

    def test_trivial_sizes(self):
        assert list(maximum_spanning_trees(0, [])) == []
        assert list(maximum_spanning_trees(1, [])) == [[]]


class TestCliqueTrees:
    def test_path_single_clique_tree(self):
        # Path cliques: {i,i+1} chains; adjacent cliques share one vertex;
        # the clique tree is unique.
        assert count_clique_trees(path_graph(5)) == 1

    def test_star_counts(self):
        # K_{1,3}: cliques {0,i} all share vertex 0 pairwise: any spanning
        # tree of the triangle-of-cliques works → 3 labeled trees on 3 nodes.
        assert count_clique_trees(star_graph(3)) == 3

    def test_complete_graph(self):
        assert count_clique_trees(complete_graph(5)) == 1

    def test_all_results_are_clique_trees(self):
        for seed in range(5):
            g = erdos_renyi(8, 0.35, seed=seed)
            if not g.is_connected():
                continue
            h = lb_triang(g)
            for td in clique_trees(h):
                assert td.is_clique_tree(h)
                assert td.is_valid(g)
                assert td.is_proper(g)

    def test_limit(self):
        g = star_graph(4)
        assert count_clique_trees(g, limit=2) == 2

    def test_disconnected_rejected(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        with pytest.raises(ValueError):
            list(clique_trees(g))

    def test_count_matches_spanning_tree_structure(self):
        # C_6 triangulated by chords {0,2},{0,3},{0,4} ("fan"): count must
        # equal the number of max spanning trees of its clique graph.
        g = cycle_graph(6)
        h = g.copy()
        h.add_edges([(0, 2), (0, 3), (0, 4)])
        count = count_clique_trees(h)
        assert count >= 1
        tds = list(clique_trees(h))
        assert len({tuple(sorted(map(tuple, map(sorted, td.bags.values())))) + tuple(sorted(td.edges)) for td in tds}) == len(tds)
