"""Tests for RankedTriang: completeness, order, no duplicates, constraints."""


import pytest

from repro.baselines.brute import (
    minimal_triangulations_bruteforce,
    minimal_triangulations_via_mis,
)
from repro.core.context import TriangulationContext
from repro.core.ranked import ranked_triangulations, top_k_triangulations
from repro.costs.classic import FillInCost, LexWidthFillCost, SumExpBagCost, WidthCost
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_example_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.triangulation.minimality import is_minimal_triangulation
from tests.conftest import connected_random_graphs, fill_key


ALL_COSTS = [WidthCost(), FillInCost(), SumExpBagCost(2.0)]


class TestPaperExample:
    def test_exactly_two_results(self, paper_graph):
        results = list(ranked_triangulations(paper_graph, WidthCost()))
        assert len(results) == 2
        assert [r.cost for r in results] == [2.0, 3.0]
        assert [r.rank for r in results] == [0, 1]

    def test_fill_order(self, paper_graph):
        results = list(ranked_triangulations(paper_graph, FillInCost()))
        assert [r.cost for r in results] == [1.0, 3.0]


class TestCompleteness:
    def test_matches_bruteforce(self):
        for g in connected_random_graphs(7, 0.4, 10, seed_base=1000):
            expected = {fill_key(g, h) for h in minimal_triangulations_bruteforce(g)}
            for cost in ALL_COSTS:
                got = [
                    fill_key(g, r.triangulation.chordal_graph)
                    for r in ranked_triangulations(g, cost)
                ]
                assert len(got) == len(set(got)), f"duplicates under {cost.name}"
                assert set(got) == expected, cost.name

    def test_matches_mis_oracle_larger(self):
        for g in connected_random_graphs(9, 0.3, 4, seed_base=1100):
            expected = {fill_key(g, h) for h in minimal_triangulations_via_mis(g)}
            got = {
                fill_key(g, r.triangulation.chordal_graph)
                for r in ranked_triangulations(g, FillInCost())
            }
            assert got == expected

    def test_partition_loop_covers_all_answers(self):
        """Regression guard for the paper's `k-1` loop-bound typo.

        With the loop running only to k-1 the cycle C_5 (5 minimal
        triangulations) loses answers; through k it is complete.
        """
        g = cycle_graph(5)
        results = list(ranked_triangulations(g, FillInCost()))
        assert len(results) == 5
        g6 = cycle_graph(6)
        # Catalan-like count for C_6 triangulations by non-crossing chords.
        expected = {fill_key(g6, h) for h in minimal_triangulations_bruteforce(g6)}
        got = {
            fill_key(g6, r.triangulation.chordal_graph)
            for r in ranked_triangulations(g6, FillInCost())
        }
        assert got == expected

    def test_chordal_graph_single_result(self):
        g = path_graph(6)
        results = list(ranked_triangulations(g, WidthCost()))
        assert len(results) == 1
        assert results[0].triangulation.chordal_graph == g

    def test_complete_graph(self):
        results = list(ranked_triangulations(complete_graph(4), WidthCost()))
        assert len(results) == 1
        assert results[0].cost == 3


class TestOrdering:
    def test_nondecreasing_costs(self):
        for g in connected_random_graphs(8, 0.35, 6, seed_base=1200):
            for cost in ALL_COSTS:
                costs = [r.cost for r in ranked_triangulations(g, cost)]
                assert costs == sorted(costs), cost.name

    def test_first_is_global_optimum(self):
        from repro.core.mintriang import min_triangulation

        for g in connected_random_graphs(8, 0.35, 6, seed_base=1300):
            first = next(iter(ranked_triangulations(g, FillInCost())))
            assert first.cost == min_triangulation(g, FillInCost()).cost

    def test_lex_cost_orders_by_width_then_fill(self):
        g = paper_example_graph()
        results = list(ranked_triangulations(g, LexWidthFillCost(g)))
        pairs = [
            (r.triangulation.width, r.triangulation.fill_in()) for r in results
        ]
        assert pairs == sorted(pairs)


class TestResultsAreValid:
    def test_each_result_is_minimal_triangulation(self):
        for g in connected_random_graphs(8, 0.4, 4, seed_base=1400):
            for r in ranked_triangulations(g, WidthCost()):
                assert is_minimal_triangulation(g, r.triangulation.chordal_graph)

    def test_elapsed_is_monotone(self, paper_graph):
        results = list(ranked_triangulations(paper_graph, WidthCost()))
        times = [r.elapsed_seconds for r in results]
        assert times == sorted(times)

    def test_constraint_metadata_satisfied(self):
        """Every emitted result satisfies the partition it represents."""
        from repro.costs.constrained import satisfies_constraints

        for g in connected_random_graphs(7, 0.45, 4, seed_base=1500):
            for r in ranked_triangulations(g, FillInCost()):
                assert satisfies_constraints(
                    g, r.triangulation.bags, r.include, r.exclude
                )


class TestTopK:
    def test_top_k(self, paper_graph):
        top = top_k_triangulations(paper_graph, WidthCost(), 1)
        assert len(top) == 1
        assert top[0].cost == 2

    def test_top_k_exhausts(self, paper_graph):
        top = top_k_triangulations(paper_graph, WidthCost(), 99)
        assert len(top) == 2

    def test_islice_laziness(self):
        # Taking only the first result must not enumerate everything.
        g = erdos_renyi(12, 0.3, seed=5)
        if not g.is_connected():
            pytest.skip("sample disconnected")
        it = ranked_triangulations(g, WidthCost())
        first = next(it)
        assert first.rank == 0


class TestEdgesAndErrors:
    def test_empty_graph(self):
        assert list(ranked_triangulations(Graph(), WidthCost())) == []

    def test_disconnected_rejected(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        with pytest.raises(ValueError):
            list(ranked_triangulations(g, WidthCost()))

    def test_shared_context(self, paper_graph):
        ctx = TriangulationContext.build(paper_graph)
        a = list(ranked_triangulations(paper_graph, WidthCost(), context=ctx))
        b = list(ranked_triangulations(paper_graph, FillInCost(), context=ctx))
        assert len(a) == len(b) == 2
