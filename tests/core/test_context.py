"""Tests for the shared TriangulationContext initialization."""

import pytest

from repro.core.context import TriangulationContext
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_example_graph,
)
from repro.graphs.graph import Graph
from repro.pmc.predicate import is_pmc
from repro.separators.berry import SeparatorLimitExceeded


class TestBuild:
    def test_paper_example(self, paper_graph):
        ctx = TriangulationContext.build(paper_graph)
        assert len(ctx.separators) == 3
        # {u,v,wi} for i=1..3, {v,v'}, {u,w1,w2,w3}, {v,w1,w2,w3}
        assert len(ctx.pmcs) == 6
        # full blocks: S1 has 2 (both full), S2 has 3, S3 has 2
        assert len(ctx.blocks) == 7
        assert ctx.init_seconds >= 0

    def test_blocks_sorted(self):
        ctx = TriangulationContext.build(erdos_renyi(10, 0.3, seed=2))
        sizes = [len(b) for b in ctx.blocks]
        assert sizes == sorted(sizes)

    def test_index_is_correct_and_complete(self):
        for seed in range(6):
            g = erdos_renyi(8, 0.4, seed=seed)
            if not g.is_connected():
                continue
            ctx = TriangulationContext.build(g)
            for block, pmcs in ctx.pmc_index.items():
                for om in pmcs:
                    assert block.separator < om <= block.vertices
            # Completeness: every (full block, PMC) inclusion is indexed.
            for block in ctx.blocks:
                expected = {
                    om
                    for om in ctx.pmcs
                    if block.separator < om <= block.vertices
                }
                assert set(ctx.pmc_index[block]) == expected

    def test_every_full_block_has_a_candidate(self):
        ctx = TriangulationContext.build(erdos_renyi(9, 0.35, seed=1))
        for block in ctx.blocks:
            assert ctx.pmc_index[block], block

    def test_disconnected_rejected(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        with pytest.raises(ValueError):
            TriangulationContext.build(g)

    def test_complete_graph(self):
        ctx = TriangulationContext.build(complete_graph(4))
        assert ctx.separators == set()
        assert ctx.pmcs == {frozenset(range(4))}
        assert ctx.blocks == []

    def test_limits_propagate(self):
        g = erdos_renyi(14, 0.4, seed=0)
        with pytest.raises(SeparatorLimitExceeded):
            TriangulationContext.build(g, separator_limit=2)
        with pytest.raises(SeparatorLimitExceeded):
            TriangulationContext.build(g, pmc_limit=2)

    def test_stats(self, paper_graph):
        stats = TriangulationContext.build(paper_graph).stats()
        assert stats["vertices"] == 6
        assert stats["edges"] == 7
        assert stats["minimal_separators"] == 3
        assert stats["pmcs"] == 6


class TestWidthBound:
    def test_filters_by_size(self):
        g = cycle_graph(6)
        full = TriangulationContext.build(g)
        bounded = TriangulationContext.build(g, width_bound=2)
        assert all(len(s) <= 2 for s in bounded.separators)
        assert all(len(om) <= 3 for om in bounded.pmcs)
        assert bounded.separators <= full.separators
        assert bounded.pmcs <= full.pmcs

    def test_bound_recorded(self):
        ctx = TriangulationContext.build(cycle_graph(5), width_bound=3)
        assert ctx.width_bound == 3


class TestChildrenCache:
    def test_children_match_structure(self, paper_graph):
        ctx = TriangulationContext.build(paper_graph)
        omega = frozenset({"u", "w1", "w2", "w3"})
        assert is_pmc(paper_graph, omega)
        children = ctx.children_of(None, omega)
        assert len(children) == 1
        (child,) = children
        assert child.separator == frozenset({"w1", "w2", "w3"})
        assert child.component == frozenset({"v", "v'"})

    def test_cache_returns_same_object(self, paper_graph):
        ctx = TriangulationContext.build(paper_graph)
        omega = frozenset({"u", "w1", "w2", "w3"})
        assert ctx.children_of(None, omega) is ctx.children_of(None, omega)

    def test_block_subgraph_cached(self, paper_graph):
        ctx = TriangulationContext.build(paper_graph)
        block = ctx.blocks[0]
        assert ctx.block_subgraph(block) is ctx.block_subgraph(block)
        assert ctx.block_subgraph(block).vertex_set() == block.vertices
