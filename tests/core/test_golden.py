"""Golden regression corpus: pinned top-20 ranked sequences.

``tests/data/golden_top20.json`` stores, for nine fixed graphs under two
cost specs and both pipelines (direct enumeration and the preprocessing
pipeline of ``repro.preprocess``), the exact (cost, bag set) sequence of
the first 20 ranked answers.  Both graph kernels must reproduce every
sequence bit-for-bit, forever — any change to DP tie-breaking, pivot
order, heap layout, the kernels, the reduction rules, the atom
decomposition or the recomposition merge that reorders an output stream
fails here.  (The two pipelines agree on costs and answer sets but may
order equal-cost ties differently; each pipeline's order is pinned
separately — ``tests/property/test_preprocess_equivalence.py`` holds the
cross-pipeline equivalence.)

Regenerate (only when an *intentional* ordering change is made, with the
set-kernel reference)::

    PYTHONPATH=src python -m tests.core.test_golden

The writer refuses to run under pytest so the corpus cannot be clobbered
accidentally.  An explicit output path regenerates elsewhere::

    PYTHONPATH=src python -m tests.core.test_golden /tmp/golden.json

which is how CI's golden-drift job works: it regenerates into a temp
file and fails with a diff when the bytes do not match the checked-in
corpus — silent regeneration drift cannot land.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import Session
from repro.graphs.generators import (
    bowtie_graph,
    connected_erdos_renyi,
    grid_graph,
    paper_example_graph,
    petersen_graph,
    ring_of_cycles,
    tree_of_cliques,
)
from repro.graphs.ordering import vertex_set_sort_key, vertex_sort_key

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_top20.json"
TOP_K = 20
COST_SPECS = ("width", "fill")
#: Pipelines: "direct" is the core Lawler-Murty enumerator, "preprocess"
#: routes through reductions + atoms + ranked recomposition.
MODES = ("direct", "preprocess")


#: name -> (graph factory, label decoder for the JSON round trip).
GRAPHS = {
    "gnp-n10-p0.35-a": (
        lambda: connected_erdos_renyi(10, 0.35, seed=0),
        lambda v: v,
    ),
    "gnp-n10-p0.35-b": (
        lambda: connected_erdos_renyi(10, 0.35, seed=100),
        lambda v: v,
    ),
    "gnp-n12-p0.25": (
        lambda: connected_erdos_renyi(12, 0.25, seed=200),
        lambda v: v,
    ),
    "grid-4x4": (lambda: grid_graph(4, 4), tuple),
    "pace100-petersen": (petersen_graph, lambda v: v),
    "paper-example": (paper_example_graph, lambda v: v),
    # Decomposable additions (ISSUE 4): the degenerate chordal cases
    # (constant-only recomposition) and a two-variable-atom product.
    "bowtie-k4": (lambda: bowtie_graph(4), lambda v: v),
    "tree-of-cliques": (lambda: tree_of_cliques(5, 4), lambda v: v),
    "ring-of-c5": (lambda: ring_of_cycles(2, 5), lambda v: v),
}


def serialize_sequence(results):
    """Canonical JSON form of a ranked prefix: [[cost, [sorted bags]]]."""
    out = []
    for r in results:
        bags = sorted(
            (sorted(bag, key=vertex_sort_key) for bag in r.triangulation.bags),
            key=vertex_set_sort_key,
        )
        out.append([r.cost, [list(b) for b in bags]])
    return out


def load_golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def _decode(case_expected, decoder):
    return [
        [cost, [sorted((decoder(v) for v in bag), key=vertex_sort_key) for bag in bags]]
        for cost, bags in case_expected
    ]


def _observed(name, cost, kernel, mode):
    factory, _decoder = GRAPHS[name]
    session = Session(kernel=kernel, preprocess=(mode == "preprocess"))
    response = session.top(factory(), cost, k=TOP_K)
    sequence = serialize_sequence(response.results)
    # Normalize label containers the same way the decoder does (tuples
    # survive in memory, lists in JSON).
    return [
        [c, [sorted(bag, key=vertex_sort_key) for bag in bags]]
        for c, bags in sequence
    ]


def _kernel_params():
    from repro.graphs.kernels import available_kernels

    params = ["sets", "bitset"]
    params.append(
        pytest.param(
            "numpy",
            marks=pytest.mark.skipif(
                "numpy" not in available_kernels(),
                reason="numpy kernel unavailable",
            ),
        )
    )
    return params


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("kernel", _kernel_params())
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_golden_top20(name, kernel, mode):
    golden = load_golden()
    _factory, decoder = GRAPHS[name]
    for cost in COST_SPECS:
        expected = _decode(golden[name][cost][mode], decoder)
        assert _observed(name, cost, kernel, mode) == expected, (
            f"{name} under cost {cost!r} diverged from the golden sequence "
            f"with kernel {kernel!r} and pipeline {mode!r}"
        )


@pytest.mark.parametrize("name", ["paper-example", "grid-4x4"])
def test_auto_matches_golden_without_numpy(name, monkeypatch):
    """The no-numpy degradation leg: with the numpy kernel disabled,
    ``kernel="auto"`` must resolve to ``bitset`` and reproduce the
    golden sequences byte-for-byte."""
    from repro.graphs.kernels import resolve_kernel

    monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
    assert resolve_kernel("auto").name == "bitset"
    golden = load_golden()
    _factory, decoder = GRAPHS[name]
    for cost in COST_SPECS:
        expected = _decode(golden[name][cost]["direct"], decoder)
        assert _observed(name, cost, "auto", "direct") == expected, (
            f"{name}/{cost}: auto->bitset diverged from the golden "
            "sequence with numpy disabled"
        )


def test_golden_corpus_shape():
    golden = load_golden()
    assert set(golden) == set(GRAPHS)
    for name, by_cost in golden.items():
        assert set(by_cost) == set(COST_SPECS)
        for cost, by_mode in by_cost.items():
            assert set(by_mode) == set(MODES)
            for mode, seq in by_mode.items():
                assert 1 <= len(seq) <= TOP_K
                costs = [c for c, _bags in seq]
                assert costs == sorted(costs), (
                    f"{name}/{cost}/{mode} not cost-ordered"
                )
            # The pipelines must agree on the cost sequence even though
            # tie order within a cost level may differ.
            assert [c for c, _b in by_mode["direct"]] == [
                c for c, _b in by_mode["preprocess"]
            ], f"{name}/{cost}: pipelines disagree on costs"


def _regenerate(path: Path = GOLDEN_PATH) -> None:
    golden = {}
    for name in sorted(GRAPHS):
        golden[name] = {}
        for cost in COST_SPECS:
            golden[name][cost] = {}
            for mode in MODES:
                seq = _observed(name, cost, "sets", mode)
                golden[name][cost][mode] = seq
                print(f"{name:>18} {cost:>6} {mode:>10}: {len(seq)} answers")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    _regenerate(Path(sys.argv[1]) if len(sys.argv) > 1 else GOLDEN_PATH)
