"""Tests for ranked proper-tree-decomposition enumeration (Prop. 6.1)."""

import itertools

from repro.core.proper import ranked_tree_decompositions, top_k_tree_decompositions
from repro.costs.classic import FillInCost, WidthCost
from repro.graphs.generators import cycle_graph, paper_example_graph
from tests.conftest import connected_random_graphs


class TestRankedDecompositions:
    def test_costs_nondecreasing(self, paper_graph):
        results = list(ranked_tree_decompositions(paper_graph, WidthCost()))
        costs = [r.cost for r in results]
        assert costs == sorted(costs)
        assert [r.rank for r in results] == list(range(len(results)))

    def test_all_proper_and_valid(self):
        for g in connected_random_graphs(7, 0.4, 3, seed_base=1800):
            for r in itertools.islice(
                ranked_tree_decompositions(g, FillInCost()), 15
            ):
                assert r.decomposition.is_valid(g)
                assert r.decomposition.is_proper(g)

    def test_decomposition_matches_triangulation(self, paper_graph):
        for r in ranked_tree_decompositions(paper_graph, WidthCost()):
            assert r.decomposition.bag_set() == r.triangulation.bags

    def test_per_triangulation_cap(self, paper_graph):
        capped = list(
            ranked_tree_decompositions(paper_graph, WidthCost(), per_triangulation=1)
        )
        # exactly one decomposition per minimal triangulation
        assert len(capped) == 2

    def test_expansion_multiplicity(self):
        # A star is chordal (one minimal triangulation — itself) but has
        # several clique trees; the stream must expand all of them.
        from repro.graphs.generators import star_graph

        g = star_graph(3)
        tds = list(ranked_tree_decompositions(g, FillInCost()))
        distinct_triangulations = {r.triangulation.bags for r in tds}
        assert len(distinct_triangulations) == 1
        assert len(tds) == 3  # labeled trees on the 3 edge-cliques

    def test_unique_clique_trees_on_cycle(self):
        # Every minimal triangulation of C_6 has exactly one clique tree,
        # so decomposition count equals triangulation count (Catalan(4)).
        g = cycle_graph(6)
        tds = list(itertools.islice(ranked_tree_decompositions(g, FillInCost()), 40))
        assert len(tds) == 14
        assert len({r.triangulation.bags for r in tds}) == 14

    def test_top_k(self, paper_graph):
        top = top_k_tree_decompositions(paper_graph, WidthCost(), 3)
        assert len(top) == 3
        assert top[0].cost <= top[-1].cost
