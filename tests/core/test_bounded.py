"""Tests for the bounded-width variant (MinTriangB / Theorem 4.5)."""


from repro.core.ranked import ranked_triangulations
from repro.costs.classic import FillInCost, WidthCost
from repro.graphs.generators import complete_graph, cycle_graph, grid_graph
from tests.conftest import connected_random_graphs, fill_key


class TestBoundedEnumeration:
    def test_equals_filtered_full_enumeration(self):
        for g in connected_random_graphs(7, 0.45, 6, seed_base=1600):
            full = list(ranked_triangulations(g, FillInCost()))
            for bound in (2, 3, 4):
                expected = {
                    fill_key(g, r.triangulation.chordal_graph)
                    for r in full
                    if r.triangulation.width <= bound
                }
                got = {
                    fill_key(g, r.triangulation.chordal_graph)
                    for r in ranked_triangulations(
                        g, FillInCost(), width_bound=bound
                    )
                }
                assert got == expected, (bound,)

    def test_all_results_within_bound(self):
        g = grid_graph(3, 3)
        for r in ranked_triangulations(g, FillInCost(), width_bound=3):
            assert r.triangulation.width <= 3

    def test_order_preserved(self):
        for g in connected_random_graphs(7, 0.5, 4, seed_base=1700):
            costs = [
                r.cost
                for r in ranked_triangulations(g, FillInCost(), width_bound=3)
            ]
            assert costs == sorted(costs)

    def test_infeasible_bound_yields_nothing(self):
        g = complete_graph(5)
        assert list(ranked_triangulations(g, WidthCost(), width_bound=2)) == []

    def test_exact_bound_on_cycle(self):
        # Every minimal triangulation of a cycle has width exactly 2,
        # so bound 2 changes nothing and bound 1 is infeasible.
        g = cycle_graph(6)
        full = list(ranked_triangulations(g, FillInCost()))
        bounded = list(ranked_triangulations(g, FillInCost(), width_bound=2))
        assert len(full) == len(bounded)
        assert list(ranked_triangulations(g, FillInCost(), width_bound=1)) == []
