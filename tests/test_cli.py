"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import cycle_graph, petersen_graph
from repro.graphs.io import write_graph


@pytest.fixture
def gr_file(tmp_path):
    path = tmp_path / "cycle6.gr"
    write_graph(cycle_graph(6), path)
    return str(path)


class TestStats:
    def test_stats(self, gr_file, capsys):
        assert main(["stats", gr_file]) == 0
        out = capsys.readouterr().out
        assert "vertices: 6" in out
        assert "minimal separators: 9" in out

    def test_disconnected_graph_errors(self, tmp_path, capsys):
        from repro.graphs.graph import Graph

        path = tmp_path / "two.gr"
        write_graph(Graph(edges=[(1, 2), (3, 4)]), path)
        assert main(["stats", str(path)]) == 2


class TestTreewidth:
    def test_cycle(self, gr_file, capsys):
        assert main(["treewidth", gr_file]) == 0
        out = capsys.readouterr().out
        assert "treewidth: 2" in out
        assert "minimum fill-in: 3" in out

    def test_petersen(self, tmp_path, capsys):
        path = tmp_path / "petersen.gr"
        write_graph(petersen_graph(), path)
        assert main(["treewidth", str(path)]) == 0
        assert "treewidth: 4" in capsys.readouterr().out


class TestEnumerate:
    def test_default_width(self, gr_file, capsys):
        assert main(["enumerate", gr_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("#") == 3
        assert "width=2" in out

    def test_fill_cost(self, gr_file, capsys):
        assert main(["enumerate", gr_file, "--cost", "fill", "--top", "2"]) == 0
        assert "cost=3.0" in capsys.readouterr().out

    def test_width_bound_infeasible(self, gr_file, capsys):
        assert main(["enumerate", gr_file, "--width-bound", "1"]) == 0
        assert "no feasible" in capsys.readouterr().out

    def test_diverse(self, gr_file, capsys):
        assert main(["enumerate", gr_file, "--top", "3", "--diverse", "4"]) == 0
        out = capsys.readouterr().out
        assert "#0" in out

    def test_unknown_cost_rejected(self, gr_file):
        with pytest.raises(SystemExit):
            main(["enumerate", gr_file, "--cost", "bogus"])


class TestCheckpointResume:
    def test_resume_continues_the_sequence(self, gr_file, tmp_path, capsys):
        token = str(tmp_path / "state.bin")
        assert main(
            ["enumerate", gr_file, "--cost", "fill", "--top", "2",
             "--checkpoint", token]
        ) == 0
        head = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("#")
        ]
        assert main(["enumerate", gr_file, "--resume", token, "--top", "2"]) == 0
        tail = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("#")
        ]
        assert main(["enumerate", gr_file, "--cost", "fill", "--top", "4"]) == 0
        uninterrupted = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("#")
        ]
        assert head + tail == uninterrupted

    def test_resume_rejects_different_graph(self, gr_file, tmp_path, capsys):
        token = str(tmp_path / "state.bin")
        assert main(
            ["enumerate", gr_file, "--top", "1", "--checkpoint", token]
        ) == 0
        capsys.readouterr()
        other = tmp_path / "petersen.gr"
        write_graph(petersen_graph(), other)
        assert main(["enumerate", str(other), "--resume", token]) == 2
        assert "different graph" in capsys.readouterr().err

    def test_resume_with_diverse_rejected(self, gr_file, tmp_path, capsys):
        token = str(tmp_path / "state.bin")
        assert main(
            ["enumerate", gr_file, "--resume", token, "--diverse", "2"]
        ) == 2
        assert "--diverse" in capsys.readouterr().err


class TestDatasets:
    def test_lists_families(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "TPC-H" in out
        assert "Pace2016-100s" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestPreprocessFlag:
    @pytest.fixture
    def decomposable_file(self, tmp_path):
        from repro.graphs.generators import ring_of_cycles

        path = tmp_path / "ring.gr"
        write_graph(ring_of_cycles(2, 5), path)
        return str(path)

    def test_no_preprocess_same_costs(self, decomposable_file, capsys):
        assert main(["enumerate", decomposable_file, "--cost", "fill",
                     "--top", "25"]) == 0
        on = capsys.readouterr().out
        assert main(["enumerate", decomposable_file, "--cost", "fill",
                     "--top", "25", "--no-preprocess"]) == 0
        off = capsys.readouterr().out

        def costs(text):
            return [line.split("cost=")[1].split()[0]
                    for line in text.splitlines() if line.startswith("#")]

        assert costs(on) == costs(off)
        assert len(costs(on)) == 25

    def test_composed_checkpoint_resume_roundtrip(
        self, decomposable_file, tmp_path, capsys
    ):
        token = str(tmp_path / "ring.ckpt")
        assert main(["enumerate", decomposable_file, "--cost", "fill",
                     "--top", "25"]) == 0
        uninterrupted = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("#")
        ]
        assert main(["enumerate", decomposable_file, "--cost", "fill",
                     "--top", "8", "--checkpoint", token]) == 0
        head = [line for line in capsys.readouterr().out.splitlines()
                if line.startswith("#")]
        assert main(["enumerate", decomposable_file, "--resume", token,
                     "--top", "17"]) == 0
        tail = [line for line in capsys.readouterr().out.splitlines()
                if line.startswith("#")]
        assert head + tail == uninterrupted


class TestServeSubmit:
    """`repro submit` against a live in-process service."""

    @pytest.fixture()
    def service(self):
        from repro.service import ServerThread

        with ServerThread(max_workers=2) as handle:
            yield handle.address

    def test_submit_streams_answers(self, service, gr_file, capsys):
        host, port = service
        rc = main([
            "submit", gr_file, "--cost", "fill", "--top", "3",
            "--host", host, "--port", str(port),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("#") >= 1
        assert "stats:" in out

    def test_submit_format_table(self, service, gr_file, capsys):
        host, port = service
        rc = main([
            "submit", gr_file, "--cost", "fill", "--top", "3",
            "--format", "table", "--host", host, "--port", str(port),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.splitlines()
        assert lines[0].split() == ["rank", "cost", "width", "bags"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("0")
        # Structured modes keep stdout machine-readable: the terminal
        # summary moves to stderr.
        assert "stats:" not in captured.out
        assert "stats:" in captured.err

    def test_submit_format_csv(self, service, gr_file, capsys):
        import csv as csv_mod
        import io as io_mod

        host, port = service
        rc = main([
            "submit", gr_file, "--cost", "fill", "--top", "2",
            "--format", "csv", "--host", host, "--port", str(port),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        rows = list(csv_mod.reader(io_mod.StringIO(captured.out)))
        assert rows[0] == ["rank", "cost", "width", "bags"]
        assert len(rows) == 3
        assert rows[1][0] == "0"

    def test_submit_format_json(self, service, gr_file, capsys):
        import json as json_mod

        host, port = service
        rc = main([
            "submit", gr_file, "--cost", "fill", "--top", "2",
            "--format", "json", "--host", host, "--port", str(port),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json_mod.loads(captured.out)
        assert [row["rank"] for row in payload] == [0, 1]
        assert all(
            isinstance(row["bags"], list) and row["cost"] >= 0
            for row in payload
        )

    def test_submit_checkpoint_resume_continues(
        self, service, gr_file, tmp_path, capsys
    ):
        host, port = service
        token = str(tmp_path / "service.tok")
        assert main([
            "submit", gr_file, "--mode", "enumerate", "--cost", "fill",
            "--top", "20", "--host", host, "--port", str(port),
        ]) == 0
        uninterrupted = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("#")
        ]
        assert main([
            "submit", gr_file, "--mode", "enumerate", "--cost", "fill",
            "--top", "2", "--host", host, "--port", str(port),
            "--checkpoint", token,
        ]) == 0
        head = [line for line in capsys.readouterr().out.splitlines()
                if line.startswith("#")]
        assert main([
            "submit", "--resume", token, "--top", "18",
            "--host", host, "--port", str(port),
        ]) == 0
        tail = [line for line in capsys.readouterr().out.splitlines()
                if line.startswith("#")]
        assert head + tail == uninterrupted[: len(head) + len(tail)]

    def test_submit_diverse_mode(self, service, gr_file, capsys):
        host, port = service
        rc = main([
            "submit", gr_file, "--mode", "diverse", "--top", "2",
            "--min-distance", "2", "--host", host, "--port", str(port),
        ])
        assert rc == 0
        assert "#" in capsys.readouterr().out

    def test_submit_rejects_graph_plus_resume(self, gr_file, tmp_path, capsys):
        rc = main([
            "submit", gr_file, "--resume", str(tmp_path / "nope.tok"),
        ])
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_submit_unreachable_server_errors(self, gr_file, capsys):
        rc = main([
            "submit", gr_file, "--host", "127.0.0.1", "--port", "1",
        ])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_k_zero_is_an_empty_page(self, service, tmp_path, capsys):
        from repro.graphs.generators import paper_example_graph

        host, port = service
        path = tmp_path / "paper.gr"
        write_graph(paper_example_graph(), path)
        rc = main([
            "submit", str(path), "--cost", "width", "--top", "0",
            "--host", host, "--port", str(port),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stats: 0 answers" in out

    def test_submit_resume_rejects_conflicting_flags(self, gr_file, tmp_path, capsys):
        rc = main([
            "submit", "--resume", str(tmp_path / "tok.bin"),
            "--cost", "fill", "--mode", "diverse",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--mode" in err and "--cost" in err

    def test_submit_checkpoint_on_exhausted_run_succeeds(
        self, service, gr_file, tmp_path, capsys
    ):
        host, port = service
        token = str(tmp_path / "done.tok")
        rc = main([
            "submit", gr_file, "--mode", "enumerate", "--cost", "fill",
            "--top", "500", "--host", host, "--port", str(port),
            "--checkpoint", token,
        ])
        out = capsys.readouterr().out
        assert rc == 0  # exhausting the space is success, not failure
        assert "(exhausted)" in out

    def test_submit_checkpoint_on_diverse_mode_errors(
        self, service, gr_file, tmp_path, capsys
    ):
        host, port = service
        rc = main([
            "submit", gr_file, "--mode", "diverse", "--top", "2",
            "--host", host, "--port", str(port),
            "--checkpoint", str(tmp_path / "nope.tok"),
        ])
        assert rc == 1
        assert "pausable" in capsys.readouterr().err
