"""Tests for the Table 2 metrics."""

import math

from repro.bench.harness import TimedResult, TimedRun
from repro.bench.metrics import (
    aggregate_metrics,
    compute_metrics,
    relative_percent,
)


def make_run(times_widths_fills, init=0.5, failed=None):
    run = TimedRun(
        algorithm="alg", graph_name="g", budget_seconds=10.0, init_seconds=init
    )
    run.failed = failed
    for t, w, f in times_widths_fills:
        run.results.append(TimedResult(elapsed_seconds=t, width=w, fill=f))
    return run


class TestComputeMetrics:
    def test_basic(self):
        run = make_run([(1.0, 3, 10), (2.0, 3, 12), (4.0, 4, 11)], init=1.0)
        m = compute_metrics(run)
        assert m.count == 3
        assert m.delay == 4.0 / 3
        assert m.delay_no_init == 1.0
        assert m.min_width == 3
        assert m.num_min_width == 2
        assert m.min_fill == 10
        assert m.num_min_fill == 1
        # widths within 1.1 * 3 = 3.3 → the two 3s; fills within 11.0 → 10, 11
        assert m.num_near_width == 2
        assert m.num_near_fill == 2

    def test_empty_run(self):
        m = compute_metrics(make_run([]))
        assert m.count == 0
        assert math.isinf(m.delay)
        assert m.min_width is None

    def test_failed_run(self):
        m = compute_metrics(make_run([(1.0, 3, 4)], failed="blew up"))
        assert m.failed
        assert m.count == 0


class TestAggregate:
    def test_sums_and_means(self):
        a = compute_metrics(make_run([(1.0, 3, 5), (2.0, 3, 6)], init=1.0))
        b = compute_metrics(make_run([(2.0, 2, 4)], init=3.0))
        agg = aggregate_metrics([a, b])
        assert agg["count"] == 3
        assert agg["init"] == 2.0
        assert agg["num_min_width"] == 3  # 2 + 1
        assert agg["graphs"] == 2

    def test_all_failed(self):
        agg = aggregate_metrics([compute_metrics(make_run([], failed="x"))])
        assert agg["count"] == 0
        assert math.isinf(agg["delay"])


class TestRelativePercent:
    def test_normal(self):
        assert relative_percent(12.2, 100) == 12.2

    def test_zero_reference(self):
        assert relative_percent(0, 0) == 100.0
        assert math.isinf(relative_percent(5, 0))
