"""Tests for report rendering and persistence."""

import json

from repro.bench.reporting import (
    ascii_series,
    format_table,
    format_value,
    save_report,
)


class TestFormatValue:
    def test_floats(self):
        assert format_value(3.0) == "3"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.00123) == "0.0012"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "-"

    def test_none_and_str(self):
        assert format_value(None) == "-"
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_renders_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestAsciiSeries:
    def test_renders(self):
        chart = ascii_series([(0, 1), (1, 10), (2, 100)], log_y=True)
        assert "*" in chart

    def test_empty(self):
        assert ascii_series([]) == "(no points)\n"


class TestSaveReport:
    def test_writes_json_and_txt(self, tmp_path):
        rows = [{"x": 1, "s": frozenset({"a"})}]
        path = save_report("demo", rows, "table text", base=tmp_path)
        assert path.exists()
        data = json.loads(path.read_text())
        assert data[0]["x"] == 1
        assert (tmp_path / "demo.txt").read_text() == "table text"
