"""Tests for the time-budgeted experiment harness."""

import time

from repro.bench.harness import (
    MS_TERMINATED,
    NOT_TERMINATED,
    TERMINATED,
    TimedResult,
    probe_tractability,
    run_with_budget,
)
from repro.graphs.generators import cycle_graph, erdos_renyi, path_graph
from repro.separators.berry import SeparatorLimitExceeded


class TestProbe:
    def test_easy_graph_terminates(self):
        probe = probe_tractability("p6", path_graph(6), ms_budget=5, pmc_budget=5)
        assert probe.status == TERMINATED
        assert probe.num_separators == 4
        assert probe.num_pmcs == 5

    def test_hard_graph_fails_ms(self):
        g = erdos_renyi(40, 0.3, seed=1)
        probe = probe_tractability("hard", g, ms_budget=0.05, pmc_budget=0.05)
        assert probe.status in (NOT_TERMINATED, MS_TERMINATED)

    def test_pmc_budget_distinguishes(self):
        # Generous MS budget + zero PMC budget → MS_TERMINATED.
        g = erdos_renyi(16, 0.3, seed=2)
        probe = probe_tractability("mid", g, ms_budget=30, pmc_budget=0.0)
        assert probe.status == MS_TERMINATED
        assert probe.num_separators is not None
        assert probe.num_pmcs is None

    def test_counts_recorded(self):
        probe = probe_tractability("c6", cycle_graph(6), ms_budget=5, pmc_budget=5)
        assert probe.vertices == 6
        assert probe.edges == 6
        assert probe.num_separators == 9


class TestRunWithBudget:
    def _stream(self, times):
        for i, t in enumerate(times):
            yield TimedResult(elapsed_seconds=t, width=i, fill=i)

    def test_cuts_at_budget(self):
        run = run_with_budget(
            "alg", "g", lambda: self._stream([0.1, 0.5, 2.5, 3.0]), budget_seconds=1.0
        )
        assert run.count == 2
        assert not run.exhausted

    def test_exhausted_flag(self):
        run = run_with_budget(
            "alg", "g", lambda: self._stream([0.1, 0.2]), budget_seconds=1.0
        )
        assert run.count == 2
        assert run.exhausted

    def test_max_results(self):
        run = run_with_budget(
            "alg",
            "g",
            lambda: self._stream([0.1, 0.2, 0.3]),
            budget_seconds=10,
            max_results=2,
        )
        assert run.count == 2

    def test_failure_capture(self):
        def boom():
            raise SeparatorLimitExceeded("too many")
            yield  # pragma: no cover

        run = run_with_budget("alg", "g", boom, budget_seconds=1.0)
        assert run.failed == "too many"
        assert run.count == 0
