"""Integration tests for the experiment drivers (tiny budgets)."""

from repro.bench.experiments import (
    ckk_run,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    ranked_run,
    table2,
)
from repro.graphs.generators import cycle_graph, paper_example_graph


class TestRunners:
    def test_ranked_run_on_paper_graph(self, paper_graph):
        run = ranked_run("paper", paper_graph, "width", budget=10.0)
        assert run.count == 2
        assert run.exhausted
        widths = [r.width for r in run.results]
        assert widths == [2, 3]

    def test_ckk_run_on_paper_graph(self, paper_graph):
        run = ckk_run("paper", paper_graph, budget=10.0)
        assert run.count == 2
        assert run.init_seconds == 0.0

    def test_ranked_fill_run(self):
        run = ranked_run("c6", cycle_graph(6), "fill", budget=10.0)
        assert run.count == 14
        fills = [r.fill for r in run.results]
        assert fills == sorted(fills)


class TestDrivers:
    def test_figure5_subset(self):
        summary, probes = figure5(
            ms_budget=0.5, pmc_budget=1.0, datasets=["TPC-H"]
        )
        assert summary[0]["dataset"] == "TPC-H"
        assert summary[0]["terminated"] == 22
        assert len(probes) == 22

    def test_figure6_filters_intractable(self):
        probes = [
            {"dataset": "d", "graph": "a", "edges": 5, "minseps": 3},
            {"dataset": "d", "graph": "b", "edges": 9, "minseps": None},
        ]
        points = figure6(probes)
        assert len(points) == 1

    def test_figure7_tiny(self):
        rows = figure7(sizes=(8,), draws=1, budget=1.0)
        assert len(rows) == 8
        assert {r["p"] for r in rows} == {round(k / 8, 4) for k in range(1, 9)}

    def test_table2_tiny(self):
        rows = table2(
            budget=1.0,
            datasets=["ObjectDetection"],
            ms_budget=0.5,
            pmc_budget=1.0,
            max_graphs_per_dataset=1,
        )
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "RankedTriang"
        assert rows[1]["algorithm"] == "CKK"
        assert rows[1]["init"] == 0.0

    def test_figure8_tiny(self):
        rows = figure8(budget=1.0, sizes=(10,), draws=1, probabilities=(0.3, 0.7))
        assert rows
        for r in rows:
            assert r["n"] == 10

    def test_figure9_explicit_cases(self, paper_graph):
        rows = figure9(
            budget=1.0, interval=0.5, case_graphs=[("paper", paper_graph)]
        )
        algos = {r["algorithm"] for r in rows}
        assert algos == {"RankedTriang", "CKK"}
        ranked_final = [
            r
            for r in rows
            if r["algorithm"] == "RankedTriang" and r["time"] >= 1.0
        ][-1]
        assert ranked_final["results"] == 2
        assert ranked_final["min_width"] == 2
