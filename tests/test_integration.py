"""End-to-end integration tests across the full stack.

These exercise realistic multi-module pipelines: dataset → context →
ranked enumeration → decomposition validation → baseline parity, i.e. the
exact paths the benchmarks and examples run, at assertion strength.
"""

import itertools


from repro import (
    FillInCost,
    LexWidthFillCost,
    TriangulationContext,
    WidthCost,
    ckk_enumeration,
    minimum_fill_in,
    ranked_tree_decompositions,
    ranked_triangulations,
    treewidth,
)
from repro.baselines.brute import minimal_triangulations_via_mis
from repro.graphs.lowerbounds import treewidth_lower_bound
from repro.triangulation import is_minimal_triangulation, lb_triang, mcs_m
from repro.workloads.tpch import tpch_instances
from repro.workloads.pace import control_flow_graph
from tests.conftest import fill_key


class TestTpchPipeline:
    """The paper: 'computing all minimal triangulations [of TPC-H] is a
    matter of a few seconds' — we assert exact three-way parity."""

    def test_full_parity_on_all_queries(self):
        for name, graph in tpch_instances():
            if graph.num_vertices() < 2 or not graph.is_connected():
                continue
            oracle = {fill_key(graph, h) for h in minimal_triangulations_via_mis(graph)}
            ranked = {
                fill_key(graph, r.triangulation.chordal_graph)
                for r in ranked_triangulations(graph, FillInCost())
            }
            ckk = {
                fill_key(graph, r.triangulation) for r in ckk_enumeration(graph)
            }
            assert ranked == oracle == ckk, name

    def test_decompositions_usable_downstream(self):
        # For every query: the best decomposition is valid, proper, and of
        # width bounded by the query size.
        for name, graph in tpch_instances():
            if graph.num_vertices() < 2 or not graph.is_connected():
                continue
            best = next(
                iter(ranked_tree_decompositions(graph, WidthCost()))
            )
            assert best.decomposition.is_valid(graph), name
            assert best.decomposition.is_proper(graph), name
            assert best.decomposition.width <= graph.num_vertices() - 1


class TestControlFlowPipeline:
    def test_bounds_sandwich_exact_treewidth(self):
        from repro.graphs.chordal import treewidth_chordal

        for seed in range(5):
            graph = control_flow_graph(16, seed=seed)
            lower = treewidth_lower_bound(graph)
            exact = treewidth(graph)
            upper = treewidth_chordal(lb_triang(graph))
            assert lower <= exact <= upper, seed

    def test_heuristics_vs_exact_fill(self):
        for seed in range(5):
            graph = control_flow_graph(14, seed=seed)
            exact = minimum_fill_in(graph)
            lb_fill = lb_triang(graph).num_edges() - graph.num_edges()
            mcs_fill = mcs_m(graph)[0].num_edges() - graph.num_edges()
            assert exact <= lb_fill
            assert exact <= mcs_fill


class TestSharedContextConsistency:
    def test_three_costs_one_context(self):
        graph = control_flow_graph(15, seed=2)
        ctx = TriangulationContext.build(graph)
        by_width = list(
            itertools.islice(
                ranked_triangulations(graph, WidthCost(), context=ctx), 8
            )
        )
        by_fill = list(
            itertools.islice(
                ranked_triangulations(graph, FillInCost(), context=ctx), 8
            )
        )
        by_lex = list(
            itertools.islice(
                ranked_triangulations(graph, LexWidthFillCost(graph), context=ctx), 8
            )
        )
        # All produce genuinely minimal triangulations of the same graph.
        for results in (by_width, by_fill, by_lex):
            for r in results:
                assert is_minimal_triangulation(
                    graph, r.triangulation.chordal_graph
                )
        # Lex-first result is simultaneously width-optimal...
        assert by_lex[0].triangulation.width == by_width[0].triangulation.width
        # ...and fill-optimal among width-optimal results.
        width_opt_fills = [
            r.triangulation.fill_in()
            for r in by_width
            if r.triangulation.width == by_width[0].triangulation.width
        ]
        assert by_lex[0].triangulation.fill_in() <= min(width_opt_fills)


class TestPaperExampleGolden:
    """Every number the paper states about its running example."""

    def test_figure1_and_section2(self, paper_graph):
        # Example 2.4: exactly these three minimal separators.
        from repro import minimal_separators

        assert minimal_separators(paper_graph) == {
            frozenset({"w1", "w2", "w3"}),
            frozenset({"u", "v"}),
            frozenset({"v"}),
        }
        # Figure 1(b): exactly two minimal triangulations, H1 and H2.
        results = list(ranked_triangulations(paper_graph, WidthCost()))
        assert len(results) == 2
        h2, h1 = results[0].triangulation, results[1].triangulation
        # T2 (clique tree of H2) has bags {u,v,wi} and {v,v'}.
        assert h2.bags == frozenset(
            [
                frozenset({"u", "v", "w1"}),
                frozenset({"u", "v", "w2"}),
                frozenset({"u", "v", "w3"}),
                frozenset({"v", "v'"}),
            ]
        )
        # T1 (clique tree of H1) has bags {u,w*}, {v,w*}, {v,v'}.
        assert h1.bags == frozenset(
            [
                frozenset({"u", "w1", "w2", "w3"}),
                frozenset({"v", "w1", "w2", "w3"}),
                frozenset({"v", "v'"}),
            ]
        )
        # Theorem 2.5 round trip: MinSep(H) are maximal parallel sets.
        assert h1.minimal_separators == frozenset(
            [frozenset({"w1", "w2", "w3"}), frozenset({"v"})]
        )
        assert h2.minimal_separators == frozenset(
            [frozenset({"u", "v"}), frozenset({"v"})]
        )
