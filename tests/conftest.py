"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    tree_graph,
)

# Hypothesis profiles: "ci" derandomizes example generation so the
# property suite — in particular the kernel-differential tests — explores
# the same cases on every run (the CI workflow exports
# HYPOTHESIS_PROFILE=ci).  Per-test @settings(...) decorators still apply
# on top; only the attributes they set are overridden.
settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def fill_key(graph: Graph, triangulation: Graph) -> frozenset:
    """Canonical identity of a triangulation: its fill edge set."""
    return frozenset(
        frozenset(e) for e in triangulation.edges() if not graph.has_edge(*e)
    )


def assert_equivalent_ranked(preprocessed, direct, truncated=False):
    """Ranked-sequence equality up to order within equal-cost tie runs.

    The canonical checker of the preprocessing differential harness
    (shared by ``tests/property/test_preprocess_equivalence.py`` and
    ``benchmarks/bench_preprocess.py``): pointwise-equal costs, and the
    same *set* of triangulations inside every maximal equal-cost run —
    each pipeline's order within a run is its own deterministic
    tie-break, pinned per-pipeline by the golden corpus.

    ``truncated=True`` marks sequences cut off at an answer cap: the
    final tie run may then be only partially enumerated on each side
    (legitimately different subsets), so its set comparison is skipped —
    costs are still compared pointwise all the way.
    """
    assert len(preprocessed) == len(direct)
    assert [c for c, _ in preprocessed] == [c for c, _ in direct]
    i = 0
    while i < len(direct):
        j = i
        while j < len(direct) and direct[j][0] == direct[i][0]:
            j += 1
        if truncated and j == len(direct):
            break
        assert {bags for _, bags in preprocessed[i:j]} == {
            bags for _, bags in direct[i:j]
        }, f"tie run at cost {direct[i][0]} (ranks {i}..{j - 1}) differs"
        i = j


def connected_random_graphs(n: int, p: float, count: int, seed_base: int = 0):
    """Up to ``count`` connected G(n, p) samples (deterministic seeds)."""
    out = []
    seed = seed_base
    while len(out) < count and seed < seed_base + 10 * count + 50:
        g = erdos_renyi(n, p, seed=seed)
        seed += 1
        if g.num_vertices() and g.is_connected():
            out.append(g)
    return out


@pytest.fixture
def paper_graph() -> Graph:
    """The running example of the paper (Figure 1(a))."""
    return paper_example_graph()


@pytest.fixture
def small_graph_zoo() -> list[Graph]:
    """A diverse corpus of small graphs for cross-validation tests."""
    zoo = [
        path_graph(1),
        path_graph(2),
        path_graph(5),
        cycle_graph(4),
        cycle_graph(6),
        complete_graph(4),
        grid_graph(2, 3),
        grid_graph(3, 3),
        tree_graph(7, seed=1),
        paper_example_graph(),
    ]
    zoo.extend(connected_random_graphs(7, 0.4, 4, seed_base=100))
    zoo.extend(connected_random_graphs(8, 0.3, 3, seed_base=200))
    return zoo
