"""Tests for generalized hypertree decompositions."""

import itertools


from repro.costs.hypergraph import Hypergraph
from repro.hypertree.ghd import (
    ghd_from_tree_decomposition,
    minimum_ghd,
    ranked_ghds,
)
from repro.core.decomposition import TreeDecomposition


def triangle_query() -> Hypergraph:
    return Hypergraph([("a", "b"), ("b", "c"), ("c", "a")])


def cycle_query(n: int) -> Hypergraph:
    vars_ = [f"x{i}" for i in range(n)]
    return Hypergraph(
        [(vars_[i], vars_[(i + 1) % n]) for i in range(n)]
    )


def acyclic_query() -> Hypergraph:
    # R(a,b,c) ⋈ S(c,d) ⋈ T(d,e): alpha-acyclic → ghw 1.
    return Hypergraph([("a", "b", "c"), ("c", "d"), ("d", "e")])


class TestMinimumGhd:
    def test_acyclic_width_one(self):
        ghd = minimum_ghd(acyclic_query())
        assert ghd.width == 1
        assert ghd.is_valid()

    def test_triangle_width_two(self):
        ghd = minimum_ghd(triangle_query())
        assert ghd.width == 2
        assert ghd.is_valid()

    def test_cycle_queries(self):
        # ghw of an n-cycle query is 2 for n >= 4.
        for n in (4, 5, 6):
            ghd = minimum_ghd(cycle_query(n))
            assert ghd.width == 2, n
            assert ghd.is_valid()

    def test_covers_are_minimum(self):
        from repro.costs.hypergraph import minimum_edge_cover_size

        ghd = minimum_ghd(cycle_query(5))
        for node, bag in ghd.decomposition.bags.items():
            assert len(ghd.covers[node]) == minimum_edge_cover_size(
                ghd.hypergraph, bag
            )


class TestRankedGhds:
    def test_nondecreasing_width(self):
        widths = [
            g.width for g in itertools.islice(ranked_ghds(cycle_query(6)), 8)
        ]
        assert widths == sorted(widths)
        assert widths[0] == 2

    def test_all_valid(self):
        for ghd in itertools.islice(ranked_ghds(triangle_query()), 4):
            assert ghd.is_valid()


class TestFromTreeDecomposition:
    def test_explicit_construction(self):
        q = acyclic_query()
        td = TreeDecomposition(
            {0: {"a", "b", "c"}, 1: {"c", "d"}, 2: {"d", "e"}},
            [(0, 1), (1, 2)],
        )
        ghd = ghd_from_tree_decomposition(q, td)
        assert ghd.width == 1
        assert ghd.is_valid()

    def test_invalid_when_td_invalid(self):
        q = acyclic_query()
        # missing vertex e
        td = TreeDecomposition({0: {"a", "b", "c"}, 1: {"c", "d"}}, [(0, 1)])
        ghd = ghd_from_tree_decomposition(q, td)
        assert not ghd.is_valid()

    def test_repr(self):
        ghd = minimum_ghd(triangle_query())
        assert "width=2" in repr(ghd)
