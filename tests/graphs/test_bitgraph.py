"""Unit tests for the dense bitset graph kernel.

Every query of :class:`BitGraph` is checked against the label-level
:class:`Graph` reference on a corpus of structured and random graphs —
the per-operation half of the differential harness (the end-to-end half
lives in ``tests/property/test_kernel_equivalence.py``).
"""

import pytest

from repro.graphs.bitgraph import BitGraph, VertexIndexer, iter_bits, validate_kernel
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph

from ..conftest import connected_random_graphs


def corpus():
    zoo = [
        Graph(),
        path_graph(1),
        path_graph(2),
        path_graph(6),
        cycle_graph(5),
        complete_graph(5),
        star_graph(4),
        grid_graph(3, 3),
        paper_example_graph(),
        erdos_renyi(9, 0.3, seed=3),  # may be disconnected — on purpose
        erdos_renyi(10, 0.5, seed=4),
    ]
    zoo.extend(connected_random_graphs(8, 0.4, 3, seed_base=500))
    return zoo


def encode(graph):
    bitgraph = BitGraph.from_graph(graph)
    return bitgraph, bitgraph.indexer


class TestVertexIndexer:
    def test_round_trip_and_order(self):
        ix = VertexIndexer(["b", "a", 7])
        assert len(ix) == 3
        assert ix.labels == ("b", "a", 7)
        assert ix.index_of("a") == 1
        assert ix.label_of(2) == 7
        assert "b" in ix and "z" not in ix

    def test_mask_round_trip(self):
        ix = VertexIndexer(range(10))
        mask = ix.mask_of([2, 5, 9])
        assert mask == (1 << 2) | (1 << 5) | (1 << 9)
        assert ix.labels_of(mask) == frozenset({2, 5, 9})
        assert ix.sorted_labels_of(mask) == [2, 5, 9]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            VertexIndexer([1, 2, 1])

    def test_arbitrary_hashable_labels(self):
        labels = [(0, 1), "x", frozenset({3}), None]
        ix = VertexIndexer(labels)
        mask = ix.mask_of(labels)
        assert ix.labels_of(mask) == frozenset(labels)


def test_iter_bits():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b101001)) == [0, 3, 5]


def test_validate_kernel():
    assert validate_kernel("bitset") == "bitset"
    assert validate_kernel("sets") == "sets"
    # "auto" resolves to a concrete registered name, never itself.
    assert validate_kernel("auto") in ("numpy", "bitset")
    with pytest.raises(ValueError):
        validate_kernel("quantum")


class TestBitGraphEncoding:
    def test_graph_round_trip(self):
        for g in corpus():
            bitgraph, _ = encode(g)
            assert bitgraph.to_graph() == g
            assert bitgraph.num_vertices() == g.num_vertices()

    def test_copy_is_independent(self):
        g = cycle_graph(4)
        bitgraph, ix = encode(g)
        clone = bitgraph.copy()
        clone.saturate(bitgraph.full_mask)
        assert bitgraph.to_graph() == g
        assert clone.to_graph() == Graph.complete(g.vertices)

    def test_induced_view(self):
        g = grid_graph(3, 3)
        bitgraph, ix = encode(g)
        keep = [(0, 0), (0, 1), (1, 1), (2, 2)]
        view = bitgraph.induced(ix.mask_of(keep))
        assert view.to_graph() == g.subgraph(keep)


class TestBitGraphQueries:
    def test_neighborhood_of_set(self):
        for g in corpus():
            bitgraph, ix = encode(g)
            vs = list(g.vertices)
            for probe in (vs[:1], vs[: len(vs) // 2], vs):
                if not probe:
                    continue
                expected = g.neighborhood_of_set(probe)
                got = bitgraph.neighborhood_of_set(ix.mask_of(probe))
                assert ix.labels_of(got) == frozenset(expected)

    def test_components_without(self):
        for g in corpus():
            bitgraph, ix = encode(g)
            vs = list(g.vertices)
            for removed in ([], vs[:2], vs[::2]):
                expected = sorted(
                    map(frozenset, g.components_without(removed)), key=sorted
                )
                got = sorted(
                    (
                        ix.labels_of(m)
                        for m in bitgraph.components_without(ix.mask_of(removed))
                    ),
                    key=sorted,
                )
                assert got == expected

    def test_components_with_neighborhoods(self):
        for g in corpus():
            bitgraph, ix = encode(g)
            vs = list(g.vertices)
            removed = ix.mask_of(vs[::3])
            for comp, nbh in bitgraph.components_with_neighborhoods(
                bitgraph.full_mask & ~removed
            ):
                assert nbh == bitgraph.neighborhood_of_set(comp)

    def test_component_of(self):
        g = path_graph(6)
        bitgraph, ix = encode(g)
        comp = bitgraph.component_of(ix.index_of(0), removed=ix.mask_of([3]))
        assert ix.labels_of(comp) == frozenset({0, 1, 2})
        with pytest.raises(ValueError):
            bitgraph.component_of(ix.index_of(3), removed=ix.mask_of([3]))

    def test_is_clique(self):
        for g in corpus():
            bitgraph, ix = encode(g)
            vs = list(g.vertices)
            for probe in (vs[:1], vs[:3], vs):
                assert bitgraph.is_clique(ix.mask_of(probe)) == g.is_clique(probe)

    def test_missing_pair_count(self):
        for g in corpus():
            bitgraph, ix = encode(g)
            vs = list(g.vertices)
            for probe in (vs[:3], vs):
                assert bitgraph.missing_pair_count(ix.mask_of(probe)) == sum(
                    1 for _ in g.missing_edges(probe)
                )

    def test_is_connected(self):
        for g in corpus():
            bitgraph, _ = encode(g)
            assert bitgraph.is_connected() == g.is_connected()

    def test_saturate_matches_graph_saturate(self):
        for g in corpus():
            if g.num_vertices() < 3:
                continue
            bitgraph, ix = encode(g)
            bag = list(g.vertices)[:3]
            expected = g.copy()
            expected.saturate(bag)
            clone = bitgraph.copy()
            clone.saturate(ix.mask_of(bag))
            assert clone.to_graph() == expected


class TestBfsOrder:
    def test_prefix_connectivity_invariant(self):
        # Every prefix of the order must induce at most as many components
        # as the whole graph (the PMC enumerator's requirement).
        for g in corpus():
            bitgraph, ix = encode(g)
            order = [ix.label_of(i) for i in bitgraph.bfs_order()]
            assert sorted(map(repr, order)) == sorted(map(repr, g.vertices))
            total = len(g.connected_components())
            for i in range(1, len(order) + 1):
                sub = g.subgraph(order[:i])
                assert len(sub.connected_components()) <= total

    def test_start_vertex_honored(self):
        g = grid_graph(2, 3)
        bitgraph, ix = encode(g)
        start = ix.index_of((1, 2))
        assert bitgraph.bfs_order(start)[0] == start
        with pytest.raises(ValueError):
            path = path_graph(2)
            bg2 = BitGraph.from_graph(path)
            bg2.bfs_order(5)
