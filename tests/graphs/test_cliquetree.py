"""Tests for clique trees and chordal minimal separators."""

import pytest

from repro.graphs.chordal import is_chordal, maximal_cliques_chordal
from repro.graphs.cliquetree import (
    clique_tree,
    clique_tree_from_cliques,
    minimal_separators_chordal,
)
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi,
    path_graph,
    star_graph,
    tree_graph,
)
from repro.graphs.graph import Graph


def junction_property_holds(bags, edges) -> bool:
    """Check the junction-tree property of a clique tree by brute force."""
    adjacency = {b: [] for b in bags}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    vertices = set()
    for b in bags:
        vertices |= b

    def occurrences_connected(v) -> bool:
        nodes = [b for b in bags if v in b]
        if len(nodes) <= 1:
            return True
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            u = stack.pop()
            for w in adjacency[u]:
                if v in w and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == len(nodes)

    return all(occurrences_connected(v) for v in vertices)


class TestCliqueTree:
    def test_path(self):
        bags, edges = clique_tree(path_graph(4))
        assert len(bags) == 3
        assert len(edges) == 2
        assert junction_property_holds(bags, edges)

    def test_complete(self):
        bags, edges = clique_tree(complete_graph(5))
        assert len(bags) == 1
        assert edges == []

    def test_star(self):
        bags, edges = clique_tree(star_graph(4))
        assert all(len(b) == 2 for b in bags)
        assert len(edges) == 3

    def test_random_chordal_junction_property(self):
        # Random chordal connected graphs via LB-Triang of G(n, p) samples.
        from repro.triangulation.lb_triang import lb_triang

        found = 0
        for seed in range(20):
            base = erdos_renyi(10, 0.3, seed=seed)
            if not base.is_connected():
                continue
            g = lb_triang(base)
            assert is_chordal(g)
            found += 1
            bags, edges = clique_tree(g)
            assert bags == maximal_cliques_chordal(g)
            assert len(edges) == len(bags) - 1
            assert junction_property_holds(bags, edges)
        assert found >= 5  # the sweep must actually exercise cases

    def test_disconnected_stitched(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        bags, edges = clique_tree(g)
        assert len(bags) == 2
        assert len(edges) == 1  # forest stitched into a tree


class TestChordalSeparators:
    def test_path(self):
        seps = minimal_separators_chordal(path_graph(4))
        assert seps == {frozenset({1}), frozenset({2})}

    def test_complete_has_none(self):
        assert minimal_separators_chordal(complete_graph(4)) == set()

    def test_tree_separators_are_internal_vertices(self):
        g = tree_graph(10, seed=3)
        seps = minimal_separators_chordal(g)
        internal = {v for v in g.vertices if g.degree(v) >= 2}
        assert seps == {frozenset({v}) for v in internal}

    def test_matches_direct_enumeration(self):
        from repro.separators.berry import minimal_separators

        for seed in range(40):
            g = erdos_renyi(8, 0.5, seed=seed)
            if not is_chordal(g) or not g.is_connected():
                continue
            assert minimal_separators_chordal(g) == minimal_separators(g)

    def test_nonchordal_raises(self):
        from repro.graphs.generators import cycle_graph

        with pytest.raises(ValueError):
            minimal_separators_chordal(cycle_graph(4))


class TestFromCliques:
    def test_max_weight_choice(self):
        # Two big cliques sharing two vertices and a small one sharing one:
        # the tree must join the big cliques directly (weight 2 edge).
        a = frozenset({1, 2, 3})
        b = frozenset({2, 3, 4})
        c = frozenset({4, 5})
        edges = clique_tree_from_cliques({a, b, c})
        assert (a, b) in edges or (b, a) in edges
