"""Tests for the PACE .td decomposition format."""

import pytest

from repro.core.decomposition import TreeDecomposition
from repro.core.mintriang import min_triangulation
from repro.costs.classic import WidthCost
from repro.graphs.generators import cycle_graph, grid_graph, petersen_graph
from repro.graphs.graph import Graph
from repro.graphs.td_io import parse_td, read_td, to_td, write_td


TD_SAMPLE = """c a decomposition of a path on four vertices
s td 3 2 4
b 1 1 2
b 2 2 3
b 3 3 4
1 2
2 3
"""


class TestParse:
    def test_sample(self):
        td = parse_td(TD_SAMPLE)
        assert len(td) == 3
        assert td.width == 1
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert td.is_valid(g)

    def test_missing_solution_line(self):
        with pytest.raises(ValueError):
            parse_td("b 1 1 2\n")

    def test_duplicate_solution_line(self):
        with pytest.raises(ValueError):
            parse_td("s td 1 1 1\ns td 1 1 1\nb 1 1\n")

    def test_bag_count_mismatch(self):
        with pytest.raises(ValueError):
            parse_td("s td 2 1 2\nb 1 1\n")

    def test_unknown_bag_edge(self):
        with pytest.raises(ValueError):
            parse_td("s td 1 1 1\nb 1 1\n1 7\n")

    def test_duplicate_bag(self):
        with pytest.raises(ValueError):
            parse_td("s td 2 1 2\nb 1 1\nb 1 2\n")

    def test_empty_bag_allowed(self):
        td = parse_td("s td 2 1 1\nb 1 1\nb 2\n1 2\n")
        assert frozenset() in td.bag_set()


class TestSerialize:
    def test_round_trip(self):
        for graph in (cycle_graph(6), grid_graph(3, 3), petersen_graph()):
            relabeled, _ = graph.relabeled()
            result = min_triangulation(relabeled, WidthCost())
            td = TreeDecomposition.from_bags(result.bags)
            back = parse_td(to_td(td, relabeled))
            assert back.bag_set() == td.bag_set()
            assert back.width == td.width
            assert back.is_valid(relabeled)

    def test_non_integer_labels_rejected(self):
        td = TreeDecomposition({0: {"a", "b"}}, [])
        with pytest.raises(ValueError):
            to_td(td)

    def test_vertex_count_from_graph(self):
        g = Graph(vertices=[1, 2, 3], edges=[(1, 2)])  # vertex 3 isolated
        td = TreeDecomposition({0: {1, 2}, 1: {3}}, [(0, 1)])
        text = to_td(td, g)
        assert text.splitlines()[0] == "s td 2 2 3"


class TestFiles:
    def test_write_read(self, tmp_path):
        g = cycle_graph(5)
        result = min_triangulation(g, WidthCost())
        td = TreeDecomposition.from_bags(result.bags)
        path = tmp_path / "out.td"
        write_td(td, path, g)
        back = read_td(path)
        assert back.is_valid(g)


class TestCliIntegration:
    def test_decompose_then_validate(self, tmp_path):
        from repro.cli import main
        from repro.graphs.io import write_graph

        graph_path = tmp_path / "g.gr"
        td_path = tmp_path / "g.td"
        write_graph(cycle_graph(6), graph_path)
        assert main(["decompose", str(graph_path), str(td_path)]) == 0
        assert main(["validate", str(graph_path), str(td_path)]) == 0
        assert main(["validate", str(graph_path), str(td_path), "--proper"]) == 0

    def test_validate_rejects_wrong_graph(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import write_graph

        graph_path = tmp_path / "g.gr"
        other_path = tmp_path / "h.gr"
        td_path = tmp_path / "g.td"
        write_graph(cycle_graph(6), graph_path)
        write_graph(grid_graph(3, 3), other_path)
        assert main(["decompose", str(graph_path), str(td_path)]) == 0
        assert main(["validate", str(other_path), str(td_path)]) == 1
        assert "INVALID" in capsys.readouterr().out
