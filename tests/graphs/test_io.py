"""Tests for PACE .gr / DIMACS graph IO."""

import pytest

from repro.graphs.generators import grid_graph, petersen_graph
from repro.graphs.graph import Graph
from repro.graphs.io import (
    parse_dimacs,
    parse_gr,
    read_graph,
    to_dimacs,
    to_gr,
    write_graph,
)


GR_SAMPLE = """c example from the PACE format spec
p tw 4 3
1 2
2 3
3 4
"""

DIMACS_SAMPLE = """c coloring instance
p edge 4 4
e 1 2
e 2 3
e 3 4
e 4 1
"""


class TestGr:
    def test_parse(self):
        g = parse_gr(GR_SAMPLE)
        assert g.num_vertices() == 4
        assert g.num_edges() == 3
        assert g.has_edge(2, 3)

    def test_round_trip(self):
        g = petersen_graph()
        back = parse_gr(to_gr(g))
        assert back.num_vertices() == g.num_vertices()
        assert back.num_edges() == g.num_edges()

    def test_isolated_vertices_preserved(self):
        g = Graph(vertices=[1, 2, 3], edges=[(1, 2)])
        back = parse_gr(to_gr(g))
        assert back.num_vertices() == 3

    def test_malformed_problem_line(self):
        with pytest.raises(ValueError):
            parse_gr("p cnf 3 2\n1 2\n")

    def test_malformed_edge_line(self):
        with pytest.raises(ValueError):
            parse_gr("p tw 3 1\n1 2 3\n")

    def test_vertex_count_mismatch(self):
        with pytest.raises(ValueError):
            parse_gr("p tw 2 1\n1 3\n")


class TestDimacs:
    def test_parse(self):
        g = parse_dimacs(DIMACS_SAMPLE)
        assert g.num_vertices() == 4
        assert g.num_edges() == 4

    def test_round_trip(self):
        g = grid_graph(3, 3)
        back = parse_dimacs(to_dimacs(g))
        assert back.num_vertices() == 9
        assert back.num_edges() == g.num_edges()

    def test_unknown_line_rejected(self):
        with pytest.raises(ValueError):
            parse_dimacs("p edge 2 1\nq 1 2\n")

    def test_node_lines_ignored(self):
        g = parse_dimacs("p edge 2 1\nn 1 5\ne 1 2\n")
        assert g.num_edges() == 1


class TestFiles:
    def test_write_read_gr(self, tmp_path):
        g = petersen_graph()
        path = tmp_path / "petersen.gr"
        write_graph(g, path)
        back = read_graph(path)
        assert back.num_edges() == 15

    def test_write_read_col(self, tmp_path):
        g = grid_graph(2, 3)
        path = tmp_path / "grid.col"
        write_graph(g, path)
        back = read_graph(path)
        assert back.num_edges() == g.num_edges()
