"""Unit tests for the core Graph data structure."""

import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices() == 0
        assert g.num_edges() == 0
        assert list(g.edges()) == []

    def test_vertices_and_edges(self):
        g = Graph(vertices=[1, 2], edges=[(2, 3), (3, 4)])
        assert g.vertex_set() == {1, 2, 3, 4}
        assert g.num_edges() == 2

    def test_isolated_vertex(self):
        g = Graph(vertices=["a"])
        assert "a" in g
        assert g.degree("a") == 0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_duplicate_edge_idempotent(self):
        g = Graph(edges=[(1, 2), (1, 2), (2, 1)])
        assert g.num_edges() == 1

    def test_complete(self):
        g = Graph.complete(range(5))
        assert g.num_edges() == 10
        assert g.is_clique(range(5))


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        assert 1 in g  # vertex survives

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_vertex(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_vertex(2)
        assert 2 not in g
        assert g.has_edge(1, 3)
        assert g.num_edges() == 1

    def test_saturate(self):
        g = Graph(vertices=range(4))
        g.saturate([0, 1, 2])
        assert g.is_clique([0, 1, 2])
        assert not g.has_edge(0, 3)

    def test_copy_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert 3 not in g
        assert g != h


class TestQueries:
    def test_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == {2, 3}
        assert g.closed_neighborhood(1) == {1, 2, 3}

    def test_neighborhood_of_set(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert g.neighborhood_of_set({2, 3}) == {1, 4}
        assert g.neighborhood_of_set({1}) == {2}

    def test_is_clique_and_missing_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.is_clique([1, 2])
        assert not g.is_clique([1, 2, 3])
        assert {frozenset(e) for e in g.missing_edges([1, 2, 3])} == {frozenset({1, 3})}

    def test_edge_set(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.edge_set() == {frozenset({1, 2}), frozenset({2, 3})}

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 2)])
        assert a == b
        b.add_edge(1, 3)
        assert a != b


class TestSubgraphs:
    def test_induced_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        sub = g.subgraph({1, 2, 3})
        assert sub.vertex_set() == {1, 2, 3}
        assert sub.num_edges() == 3

    def test_without(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.without({2}).num_edges() == 0

    def test_union(self):
        a = Graph(edges=[(1, 2)])
        b = Graph(edges=[(2, 3)])
        u = a.union(b)
        assert u.num_edges() == 2
        assert a.num_edges() == 1  # inputs untouched

    def test_complement(self):
        g = Graph(edges=[(1, 2)])
        g.add_vertex(3)
        comp = g.complement()
        assert comp.edge_set() == {frozenset({1, 3}), frozenset({2, 3})}


class TestConnectivity:
    def test_components(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        g.add_vertex(5)
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [[1, 2], [3, 4], [5]]

    def test_components_without(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)])
        comps = sorted(map(sorted, g.components_without({1, 3})))
        assert comps == [[2], [4]]

    def test_component_of(self):
        g = Graph(edges=[(1, 2), (2, 3), (4, 5)])
        assert g.component_of(1) == {1, 2, 3}
        assert g.component_of(1, removed={2}) == {1}
        with pytest.raises(ValueError):
            g.component_of(2, removed={2})

    def test_is_connected(self):
        assert Graph().is_connected()
        assert Graph(edges=[(1, 2), (2, 3)]).is_connected()
        assert not Graph(edges=[(1, 2), (3, 4)]).is_connected()

    def test_bfs_order_prefix_connected(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 5), (2, 5)])
        order = g.bfs_order()
        assert len(order) == 5
        for i in range(1, 6):
            assert g.subgraph(order[:i]).is_connected()


class TestInterop:
    def test_networkx_round_trip(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.add_vertex(9)
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_relabeled(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        h, mapping = g.relabeled()
        assert h.vertex_set() == {0, 1, 2}
        assert h.num_edges() == 2
        assert h.has_edge(mapping["a"], mapping["b"])


class TestAbsentVertexValidation:
    """Regression tests (ISSUE 4 bugfix): absent vertices must raise.

    ``components_without`` used to silently ignore labels not in the
    graph — a typo'd separator returned the components of the *wrong*
    deletion — and ``saturate`` either half-mutated the graph before a
    ``KeyError`` or silently no-opped.  Both now fail fast.
    """

    def test_components_without_rejects_absent(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        with pytest.raises(ValueError, match="not in graph"):
            g.components_without({2, 99})
        with pytest.raises(ValueError, match="not in graph"):
            g.components_without(["typo"])

    def test_components_without_still_correct_on_valid_input(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert sorted(map(sorted, g.components_without({2}))) == [[1], [3, 4]]

    def test_component_of_rejects_absent(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        with pytest.raises(ValueError, match="not in graph"):
            g.component_of(1, removed={99})
        with pytest.raises(ValueError, match="not in graph"):
            g.component_of(99)
        with pytest.raises(ValueError, match="removed set"):
            g.component_of(1, removed={1})

    def test_saturate_rejects_absent_without_mutating(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        before = g.copy()
        with pytest.raises(ValueError, match="not in graph"):
            g.saturate([1, 3, 99])
        assert g == before  # validated up front: no partial saturation

    def test_saturate_valid_input_unchanged_behavior(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        g.saturate([1, 2, 3])
        assert g.has_edge(1, 3) and g.has_edge(2, 3)
