"""Tests for the deterministic graph generators."""

import pytest

from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    gnm_random,
    grid_graph,
    hypercube_graph,
    mycielski_graph,
    paper_example_graph,
    path_graph,
    petersen_graph,
    queen_graph,
    star_graph,
    tree_graph,
)


class TestDeterministicShapes:
    def test_path(self):
        g = path_graph(5)
        assert g.num_vertices() == 5
        assert g.num_edges() == 4

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges() == 6
        assert all(g.degree(v) == 2 for v in g.vertices)
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        assert complete_graph(6).num_edges() == 15

    def test_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.num_edges() == 6
        assert not g.has_edge(0, 1)

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.num_edges() == 5

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices() == 12
        assert g.num_edges() == 3 * 3 + 2 * 4  # 17

    def test_hypercube(self):
        g = hypercube_graph(3)
        assert g.num_vertices() == 8
        assert g.num_edges() == 12
        assert all(g.degree(v) == 3 for v in g.vertices)

    def test_petersen(self):
        g = petersen_graph()
        assert g.num_vertices() == 10
        assert g.num_edges() == 15
        assert all(g.degree(v) == 3 for v in g.vertices)

    def test_queen(self):
        g = queen_graph(3, 3)
        # center square attacks all 8 others
        assert g.degree((1, 1)) == 8

    def test_paper_example(self):
        g = paper_example_graph()
        assert g.num_vertices() == 6
        assert g.num_edges() == 7


class TestMycielski:
    def test_sizes(self):
        # |V(M_k)| = 3 * 2^(k-2) * ... known: M2=2, M3=5, M4=11, M5=23
        assert mycielski_graph(2).num_vertices() == 2
        assert mycielski_graph(3).num_vertices() == 5
        assert mycielski_graph(4).num_vertices() == 11
        assert mycielski_graph(5).num_vertices() == 23

    def test_m3_is_c5(self):
        g = mycielski_graph(3)
        assert g.num_edges() == 5
        assert all(g.degree(v) == 2 for v in g.vertices)

    def test_triangle_free(self):
        g = mycielski_graph(4)
        for u in g.vertices:
            for v in g.adj(u):
                assert not (g.adj(u) & g.adj(v)), "triangle found"

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            mycielski_graph(1)


class TestRandom:
    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(15, 0.3, seed=7)
        b = erdos_renyi(15, 0.3, seed=7)
        assert a == b

    def test_erdos_renyi_seed_sensitivity(self):
        a = erdos_renyi(15, 0.3, seed=7)
        b = erdos_renyi(15, 0.3, seed=8)
        assert a != b

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(8, 0.0, seed=1).num_edges() == 0
        assert erdos_renyi(8, 1.0, seed=1).num_edges() == 28

    def test_gnm(self):
        g = gnm_random(10, 17, seed=5)
        assert g.num_vertices() == 10
        assert g.num_edges() == 17
        with pytest.raises(ValueError):
            gnm_random(4, 100, seed=0)

    def test_tree(self):
        g = tree_graph(12, seed=9)
        assert g.num_edges() == 11
        assert g.is_connected()
