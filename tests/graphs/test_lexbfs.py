"""Tests for Lex-BFS and its chordality decider."""

import pytest

from repro.graphs.chordal import is_chordal, is_perfect_elimination_order
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
    tree_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.lexbfs import is_chordal_lexbfs, lex_bfs, peo_via_lexbfs


class TestLexBfs:
    def test_visits_every_vertex_once(self):
        g = grid_graph(3, 4)
        order = lex_bfs(g)
        assert sorted(order, key=repr) == sorted(g.vertices, key=repr)

    def test_start_vertex(self):
        g = path_graph(5)
        assert lex_bfs(g, start=2)[0] == 2
        with pytest.raises(KeyError):
            lex_bfs(g, start=99)

    def test_empty(self):
        assert lex_bfs(Graph()) == []

    def test_disconnected(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert len(lex_bfs(g)) == 4

    def test_prefix_neighbor_priority(self):
        # After visiting the star center, all leaves outrank any
        # hypothetical non-neighbor; on a path, the second visited vertex
        # is always adjacent to the first.
        g = path_graph(6)
        order = lex_bfs(g, start=3)
        assert order[1] in g.adj(3)


class TestPeo:
    def test_chordal_yields_peo(self):
        for g in (path_graph(6), complete_graph(5), tree_graph(9, seed=1)):
            peo = peo_via_lexbfs(g)
            assert peo is not None
            assert is_perfect_elimination_order(g, peo)

    def test_non_chordal_yields_none(self):
        assert peo_via_lexbfs(cycle_graph(5)) is None
        assert peo_via_lexbfs(grid_graph(3, 3)) is None


class TestAgreementWithMcs:
    def test_matches_mcs_chordality_on_random(self):
        for seed in range(60):
            g = erdos_renyi(9, 0.45, seed=seed)
            assert is_chordal_lexbfs(g) == is_chordal(g), seed

    def test_matches_on_structured(self):
        for g in (
            star_graph(5),
            cycle_graph(4),
            cycle_graph(3),
            grid_graph(2, 2),
            complete_graph(6),
        ):
            assert is_chordal_lexbfs(g) == is_chordal(g)
