"""Tests for MCS, perfect elimination orders, chordality, maximal cliques."""

import pytest

from repro.graphs.chordal import (
    fill_in,
    is_chordal,
    is_perfect_elimination_order,
    maximal_cliques_chordal,
    maximum_cardinality_search,
    perfect_elimination_order,
    treewidth_chordal,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
    tree_graph,
)
from repro.graphs.graph import Graph


def brute_force_chordal(graph: Graph) -> bool:
    """Chordality by explicit chordless-cycle search (DFS over paths)."""
    vertices = list(graph.vertices)

    def has_chordless_cycle_through(start) -> bool:
        # Search for a cycle of length >= 4 through `start` with no chord.
        def extend(path: list) -> bool:
            last = path[-1]
            for nxt in graph.adj(last):
                if nxt == start and len(path) >= 4:
                    # check chordlessness of the cycle `path`
                    ok = True
                    k = len(path)
                    for i in range(k):
                        for j in range(i + 2, k):
                            if i == 0 and j == k - 1:
                                continue
                            if graph.has_edge(path[i], path[j]):
                                ok = False
                                break
                        if not ok:
                            break
                    if ok:
                        return True
                if nxt in path:
                    continue
                # prune: a chord to an earlier path vertex (other than the
                # predecessor) makes every extension chorded through `nxt`
                if any(
                    graph.has_edge(nxt, p) for p in path[:-1] if p != start
                ):
                    continue
                if extend(path + [nxt]):
                    return True
            return False

        return extend([start])

    return not any(has_chordless_cycle_through(v) for v in vertices)


class TestMCS:
    def test_orders_all_vertices(self):
        g = grid_graph(3, 3)
        order = maximum_cardinality_search(g)
        assert sorted(order, key=repr) == sorted(g.vertices, key=repr)

    def test_start_vertex_first(self):
        g = path_graph(5)
        assert maximum_cardinality_search(g, start=3)[0] == 3

    def test_empty_graph(self):
        assert maximum_cardinality_search(Graph()) == []

    def test_disconnected(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert len(maximum_cardinality_search(g)) == 4


class TestPEO:
    def test_path_is_chordal(self):
        assert perfect_elimination_order(path_graph(6)) is not None

    def test_cycle_not_chordal(self):
        assert perfect_elimination_order(cycle_graph(4)) is None

    def test_explicit_order_check(self):
        # Triangle with a pendant: eliminating the pendant first is perfect.
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        assert is_perfect_elimination_order(g, [4, 1, 2, 3])
        # Eliminating 3 first leaves 1-2-4 needing the chord 1-4: not PEO
        # unless 1,2,4 pairwise adjacent, which they are not (4 only sees 3).
        assert not is_perfect_elimination_order(g, [3, 4, 1, 2])

    def test_order_must_cover_vertices(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            is_perfect_elimination_order(g, [0, 1])


class TestIsChordal:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(1), True),
            (path_graph(7), True),
            (complete_graph(5), True),
            (star_graph(4), True),
            (cycle_graph(3), True),
            (cycle_graph(4), False),
            (cycle_graph(6), False),
            (grid_graph(2, 2), False),
            (grid_graph(3, 3), False),
            (tree_graph(9, seed=0), True),
        ],
    )
    def test_known_graphs(self, graph, expected):
        assert is_chordal(graph) == expected

    def test_against_bruteforce_on_random(self):
        for seed in range(40):
            g = erdos_renyi(7, 0.45, seed=seed)
            assert is_chordal(g) == brute_force_chordal(g), f"seed={seed}"


class TestMaximalCliques:
    def test_complete(self):
        g = complete_graph(4)
        assert maximal_cliques_chordal(g) == {frozenset(range(4))}

    def test_path(self):
        g = path_graph(4)
        assert maximal_cliques_chordal(g) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }

    def test_nonchordal_raises(self):
        with pytest.raises(ValueError):
            maximal_cliques_chordal(cycle_graph(5))

    def test_count_bound(self):
        # Theorem 2.2(2): a chordal graph has < |V| maximal cliques
        # (<= |V| including the single-vertex case).
        for seed in range(20):
            g = erdos_renyi(9, 0.5, seed=seed)
            if not is_chordal(g):
                continue
            assert len(maximal_cliques_chordal(g)) <= g.num_vertices()

    def test_against_networkx(self):
        import networkx as nx

        for seed in range(30):
            g = erdos_renyi(9, 0.55, seed=seed)
            if not is_chordal(g):
                continue
            ours = maximal_cliques_chordal(g)
            theirs = {frozenset(c) for c in nx.find_cliques(g.to_networkx())}
            assert ours == theirs, f"seed={seed}"

    def test_singleton_graph(self):
        g = Graph(vertices=[42])
        assert maximal_cliques_chordal(g) == {frozenset({42})}


class TestMeasures:
    def test_treewidth_chordal(self):
        assert treewidth_chordal(path_graph(5)) == 1
        assert treewidth_chordal(complete_graph(6)) == 5
        assert treewidth_chordal(Graph()) == -1

    def test_fill_in(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        assert fill_in(g, h) == 1
