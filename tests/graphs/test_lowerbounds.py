"""Tests for the treewidth lower bounds."""

import pytest

from repro.core.exact import treewidth
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    petersen_graph,
    tree_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.lowerbounds import (
    clique_lower_bound,
    degeneracy,
    mmd_plus_lower_bound,
    treewidth_lower_bound,
)


class TestDegeneracy:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (Graph(), -1),
            (Graph(vertices=[1]), 0),
            (path_graph(5), 1),
            (cycle_graph(7), 2),
            (complete_graph(5), 4),
            (grid_graph(3, 3), 2),
            (petersen_graph(), 3),
            (tree_graph(9, seed=0), 1),
        ],
    )
    def test_known_values(self, graph, expected):
        assert degeneracy(graph) == expected


class TestBoundsAreSound:
    def test_never_exceed_exact_treewidth(self):
        corpus = [
            path_graph(6),
            cycle_graph(6),
            grid_graph(3, 3),
            petersen_graph(),
            complete_graph(5),
        ]
        corpus += [erdos_renyi(10, 0.3, seed=s) for s in range(8)]
        for g in corpus:
            tw = treewidth(g)
            assert degeneracy(g) <= tw
            assert mmd_plus_lower_bound(g) <= tw
            assert clique_lower_bound(g) <= tw
            assert treewidth_lower_bound(g) <= tw

    def test_mmd_plus_at_least_degeneracy_usually(self):
        # Contraction can only help on these structured cases.
        for g in (grid_graph(4, 4), cycle_graph(8), petersen_graph()):
            assert mmd_plus_lower_bound(g) >= degeneracy(g)


class TestTightness:
    def test_tight_on_cliques(self):
        g = complete_graph(6)
        assert treewidth_lower_bound(g) == 5 == treewidth(g)

    def test_tight_on_trees_and_cycles(self):
        assert treewidth_lower_bound(tree_graph(10, seed=3)) == 1
        assert treewidth_lower_bound(cycle_graph(9)) == 2

    def test_clique_bound_sees_embedded_clique(self):
        g = path_graph(6)
        g.saturate([0, 1, 2, 3])  # embed a K4
        assert clique_lower_bound(g) >= 3

    def test_empty(self):
        assert treewidth_lower_bound(Graph()) == -1
