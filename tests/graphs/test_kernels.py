"""Unit tests for the kernel registry (``repro.graphs.kernels``).

The registry is the single source of truth for kernel names across the
Session API, the context builder, the wire protocol, the gateway, and
the CLI, so its resolution rules — ``"auto"`` priority, availability
probes, explicit-name strictness — are pinned here in isolation.
"""

import pytest

from repro.graphs.bitgraph import BitGraph
from repro.graphs.generators import cycle_graph
from repro.graphs.kernels import (
    AUTO_KERNEL,
    DISABLE_NUMPY_ENV,
    KernelSpec,
    available_kernels,
    register_kernel,
    registered_kernels,
    resolve_kernel,
    unregister_kernel,
    validate_kernel,
)

HAS_NUMPY = "numpy" in available_kernels()


@pytest.fixture
def scratch_kernel():
    """Register a throwaway kernel and guarantee cleanup."""
    spec = register_kernel(
        KernelSpec(
            name="test-scratch",
            description="bitset under a different name, for tests",
            build=lambda graph, indexer=None: BitGraph.from_graph(
                graph, indexer
            ),
            capabilities=frozenset({"masks"}),
            priority=-5,
        )
    )
    try:
        yield spec
    finally:
        unregister_kernel("test-scratch")


class TestResolution:
    def test_builtins_resolve_by_name(self):
        assert resolve_kernel("sets").name == "sets"
        assert resolve_kernel("bitset").name == "bitset"
        assert not resolve_kernel("sets").uses_masks
        assert resolve_kernel("bitset").uses_masks

    def test_auto_picks_highest_priority_available(self):
        expected = "numpy" if HAS_NUMPY else "bitset"
        assert resolve_kernel(AUTO_KERNEL).name == expected
        assert resolve_kernel().name == expected  # default argument

    def test_auto_degrades_to_bitset_when_numpy_disabled(self, monkeypatch):
        monkeypatch.setenv(DISABLE_NUMPY_ENV, "1")
        assert resolve_kernel(AUTO_KERNEL).name == "bitset"
        assert "numpy" not in available_kernels()

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy kernel unavailable")
    def test_explicit_numpy_rejected_when_disabled(self, monkeypatch):
        # Graceful degradation is the policy's job: an explicit name for
        # an unavailable kernel is an error, never a silent substitute.
        monkeypatch.setenv(DISABLE_NUMPY_ENV, "1")
        with pytest.raises(ValueError, match="unavailable"):
            resolve_kernel("numpy")

    def test_unknown_name_lists_known_kernels(self):
        with pytest.raises(ValueError, match="auto.*sets"):
            resolve_kernel("quantum")

    def test_registered_spec_instance_accepted(self):
        spec = resolve_kernel("bitset")
        assert resolve_kernel(spec) is spec

    def test_unregistered_spec_instance_rejected(self):
        rogue = KernelSpec(name="bitset", description="impostor")
        with pytest.raises(ValueError, match="not the registered spec"):
            resolve_kernel(rogue)

    def test_validate_kernel_returns_concrete_name(self):
        assert validate_kernel(AUTO_KERNEL) != AUTO_KERNEL
        assert validate_kernel(AUTO_KERNEL) in available_kernels()


class TestRegistry:
    def test_priority_order(self):
        specs = registered_kernels()
        priorities = [s.priority for s in specs]
        assert priorities == sorted(priorities, reverse=True)
        names = [s.name for s in specs]
        assert names.index("bitset") < names.index("sets")
        if HAS_NUMPY:
            assert names.index("numpy") < names.index("bitset")

    def test_register_then_resolve_then_unregister(self, scratch_kernel):
        assert "test-scratch" in available_kernels()
        assert resolve_kernel("test-scratch") is scratch_kernel
        assert validate_kernel("test-scratch") == "test-scratch"

    def test_duplicate_name_needs_replace(self, scratch_kernel):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(KernelSpec(name="test-scratch"))
        replaced = register_kernel(
            KernelSpec(name="test-scratch", build=scratch_kernel.build,
                       capabilities=frozenset({"masks"})),
            replace=True,
        )
        assert resolve_kernel("test-scratch") is replaced

    def test_auto_is_not_a_registrable_name(self):
        with pytest.raises(ValueError, match="policy"):
            register_kernel(KernelSpec(name=AUTO_KERNEL))

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(ValueError):
            unregister_kernel("sets")
        with pytest.raises(ValueError):
            unregister_kernel("bitset")

    def test_unavailable_kernel_hidden_from_available(self):
        spec = register_kernel(
            KernelSpec(name="test-broken", available=lambda: False)
        )
        try:
            assert "test-broken" not in available_kernels()
            assert spec in registered_kernels()
            with pytest.raises(ValueError, match="unavailable"):
                resolve_kernel("test-broken")
        finally:
            unregister_kernel("test-broken")

    def test_raising_probe_counts_as_unavailable(self):
        def boom():
            raise RuntimeError("probe exploded")

        spec = KernelSpec(name="test-boom", available=boom)
        assert spec.is_available() is False


class TestSpec:
    def test_label_level_spec_has_no_builder(self):
        with pytest.raises(ValueError, match="label-level"):
            resolve_kernel("sets").build_graph(cycle_graph(4))

    def test_mask_spec_builds_equivalent_graph(self):
        g = cycle_graph(5)
        built = resolve_kernel("bitset").build_graph(g)
        assert built.to_graph() == g

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy kernel unavailable")
    def test_numpy_spec_is_batched(self):
        spec = resolve_kernel("numpy")
        assert "batched" in spec.capabilities
        built = spec.build_graph(cycle_graph(5))
        assert getattr(built, "BATCHED", False)
        assert built.to_graph() == cycle_graph(5)


class TestSessionIntegration:
    def test_session_exposes_resolved_spec(self):
        from repro.api import Session

        session = Session(kernel="bitset")
        assert isinstance(session.kernel, KernelSpec)
        assert session.kernel.name == "bitset"
        assert session.kernel_name == "bitset"

    def test_session_auto_resolves_before_anything_runs(self):
        from repro.api import Session

        expected = "numpy" if HAS_NUMPY else "bitset"
        assert Session(kernel="auto").kernel_name == expected
        assert Session().kernel_name == expected

    def test_session_stats_carry_concrete_kernel(self):
        from repro.api import Session

        g = cycle_graph(5)
        response = Session(kernel="bitset").top(g, "fill", k=2)
        assert response.stats.kernel == "bitset"

    def test_session_accepts_registered_spec_object(self, scratch_kernel):
        from repro.api import Session

        session = Session(kernel=scratch_kernel)
        g = cycle_graph(5)
        response = session.top(g, "fill", k=2)
        assert response.stats.kernel == "test-scratch"
        assert len(response) == 2
