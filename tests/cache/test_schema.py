"""Schema versioning of persisted blobs (ISSUE 7 satellite).

Every persisted artifact embeds a schema tag and a checksum; a loader
handed a blob from a different build — or a blob damaged on disk — must
treat it as a clean miss with a warning and evict it, never crash and
never deserialize it into wrong answers.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.cache import ArtifactStore, CacheIntegrityWarning, default_schema_tag
from repro.cache.store import PayloadError, decode_payload, encode_payload


def test_default_schema_tag_folds_in_payload_versions():
    from repro.api.checkpoint import CHECKPOINT_VERSION
    from repro.preprocess.recompose import COMPOSED_CHECKPOINT_VERSION

    tag = default_schema_tag()
    assert f"ckpt{CHECKPOINT_VERSION}" in tag
    assert f"composed{COMPOSED_CHECKPOINT_VERSION}" in tag


def test_payload_roundtrip():
    blob = encode_payload("tag-a", {"x": [1, 2]})
    assert decode_payload("tag-a", blob) == {"x": [1, 2]}


@pytest.mark.parametrize(
    "mutate, reason",
    [
        (lambda b: b"junk" + b[4:], "corrupt"),  # bad magic
        (lambda b: b[: len(b) // 2], "corrupt"),  # truncated
        (lambda b: b[:-3] + bytes(3), "corrupt"),  # body bit rot
        (lambda b: b, "schema"),  # decoded under another tag (below)
    ],
)
def test_decode_rejects_damage(mutate, reason):
    blob = mutate(encode_payload("tag-a", "value"))
    read_tag = "tag-a" if reason == "corrupt" else "tag-b"
    with pytest.raises(PayloadError) as excinfo:
        decode_payload(read_tag, blob)
    assert excinfo.value.reason == reason


def test_wrong_tag_entry_is_miss_plus_eviction(tmp_path):
    path = tmp_path / "c"
    with ArtifactStore(path, schema_tag="old-build") as old:
        old.put("context", "k", "stale-artifact")
    new = ArtifactStore(path, schema_tag="new-build")
    try:
        with pytest.warns(CacheIntegrityWarning, match="schema"):
            assert new.get("context", "k") is None
        counters = new.stats()["kinds"]["context"]
        assert counters["misses"] == 1
        assert counters["corrupt"] == 1
        assert counters["evictions"] == 1
        # The bad row is gone: the next read is a plain quiet miss.
        assert new.get("context", "k") is None
        assert new.stats()["kinds"]["context"]["corrupt"] == 1
    finally:
        new.close()


def test_hand_corrupted_payload_is_miss_plus_eviction(tmp_path):
    path = tmp_path / "c"
    store = ArtifactStore(path, schema_tag="t")
    try:
        store.put("prepared", "k", {"big": list(range(100))})
        # Flip bytes in the stored blob body behind the store's back,
        # as disk corruption would.
        conn = sqlite3.connect(store.db_path)
        try:
            (blob,) = conn.execute(
                "SELECT payload FROM artifacts WHERE key = 'k'"
            ).fetchone()
            damaged = blob[:-20] + bytes(20)
            conn.execute(
                "UPDATE artifacts SET payload = ? WHERE key = 'k'", (damaged,)
            )
            conn.commit()
        finally:
            conn.close()
        with pytest.warns(CacheIntegrityWarning, match="corrupt"):
            assert store.get("prepared", "k") is None
        assert store.stats()["kinds"]["prepared"]["entries"] == 0
    finally:
        store.close()


def test_session_falls_back_to_build_on_wrong_tag(tmp_path):
    """A cache full of foreign-schema blobs must not poison a session:
    every read is a miss, the session rebuilds, and answers match a
    cache-less run."""
    from repro.api import Session
    from repro.graphs.generators import connected_erdos_renyi

    graph = connected_erdos_renyi(9, 0.4, seed=5)
    plain = Session()
    expected = plain.top(graph, "fill", k=8)
    plain.close()

    path = tmp_path / "c"
    warm = Session(cache_dir=path)
    warm.top(graph, "fill", k=8)
    warm.close()

    stale = ArtifactStore(path, schema_tag="a-different-build")
    session = Session(store=stale)
    try:
        with pytest.warns(CacheIntegrityWarning):
            response = session.top(graph, "fill", k=8)
        assert [r.cost for r in response.results] == [
            r.cost for r in expected.results
        ]
        assert session.cache_info()["builds"] >= 1
    finally:
        session.close()
        stale.close()
