"""The cold/warm byte-identity gate (ISSUE 7 acceptance).

For every covered corpus entry the answer stream produced by a session
that just *filled* the cache must be byte-for-byte identical to the one
produced by a session that *reads* it back — across both pipelines and
both cost specs.  CI runs the same gate over the full golden corpus by
regenerating it twice against one ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from tests.core.test_golden import COST_SPECS, GRAPHS, MODES, TOP_K, serialize_sequence

# A representative slice of the corpus: random, structured, and
# decomposition-friendly instances.  The full sweep runs in CI.
CASES = ("gnp-n10-p0.35-a", "grid-4x4", "bowtie-k4", "ring-of-c5")


def _run(name, cost, mode, cache_dir):
    factory, _decoder = GRAPHS[name]
    with Session(cache_dir=cache_dir, preprocess=(mode == "preprocess")) as session:
        response = session.top(factory(), cost, k=TOP_K)
        disk = session.cache_info().get("disk", {})
    return json.dumps(serialize_sequence(response.results)), disk


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("cost", COST_SPECS)
@pytest.mark.parametrize("name", CASES)
def test_cold_equals_warm_bytes(tmp_path, name, cost, mode):
    cache_dir = tmp_path / "cache"
    cold, _ = _run(name, cost, mode, cache_dir)
    warm, disk = _run(name, cost, mode, cache_dir)
    assert warm == cold
    # The warm leg really came from disk, not from a silent rebuild:
    # the whole request replayed from the cached answer prefix.
    assert disk["kinds"]["answers"]["hits"] >= 1
    hits = sum(k["hits"] for k in disk["kinds"].values())
    assert hits >= 1


#: The extension gate triples the enumeration work per case, so it runs
#: on one random and one decomposition-friendly instance.
EXTENSION_CASES = ("gnp-n10-p0.35-a", "ring-of-c5")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("cost", COST_SPECS)
@pytest.mark.parametrize("name", EXTENSION_CASES)
def test_prefix_extension_equals_straight_run(tmp_path, name, cost, mode):
    """k=5 then k=20 against one cache dir equals a straight k=20.

    The second leg replays the stored 5-answer head and resumes live
    from the stored frontier; the spliced sequence must be identical to
    an uncached run, and the extended prefix must then serve a third
    request entirely from disk.
    """
    factory, _decoder = GRAPHS[name]
    preprocess = mode == "preprocess"
    with Session(preprocess=preprocess) as plain:
        reference = plain.top(factory(), cost, k=20)
    cache_dir = tmp_path / "cache"

    def run(k):
        with Session(cache_dir=cache_dir, preprocess=preprocess) as session:
            response = session.top(factory(), cost, k=k)
        return response

    run(5)
    extended = run(20)
    assert json.dumps(serialize_sequence(extended.results)) == json.dumps(
        serialize_sequence(reference.results)
    )
    replay = run(20)
    assert replay.stats.engine == "cache"
    assert json.dumps(serialize_sequence(replay.results)) == json.dumps(
        serialize_sequence(reference.results)
    )


def test_warm_leg_matches_plain_session(tmp_path):
    """The cache must be invisible: a warm read equals a cache-less run."""
    name, cost = "gnp-n10-p0.35-a", "fill"
    cache_dir = tmp_path / "cache"
    _run(name, cost, "preprocess", cache_dir)
    warm, _ = _run(name, cost, "preprocess", cache_dir)
    factory, _decoder = GRAPHS[name]
    with Session() as plain:
        response = plain.top(factory(), cost, k=TOP_K)
    assert warm == json.dumps(serialize_sequence(response.results))
