"""Multi-process safety of the artifact store (ISSUE 7 satellite).

Two processes racing to warm the same key must both succeed — last
writer wins — and readers must only ever observe complete, decodable
entries. Worker functions live at module level so the ``spawn`` start
method can import them.
"""

from __future__ import annotations

import multiprocessing
import sqlite3

import pytest

from repro.cache import ArtifactStore
from repro.cache.store import decode_payload

TAG = "concurrency-test"


def _write_same_key(path, barrier, label, out):
    store = ArtifactStore(path, schema_tag=TAG)
    try:
        barrier.wait(timeout=30)
        ok = store.put("prepared", "shared-key", {"writer": label, "table": list(range(200))})
        out.put((label, bool(ok)))
    finally:
        store.close()


def _write_many_keys(path, barrier, label, count, out):
    store = ArtifactStore(path, schema_tag=TAG)
    try:
        barrier.wait(timeout=30)
        written = 0
        for i in range(count):
            if store.put("context", f"{label}-{i}", {"writer": label, "i": i}):
                written += 1
        out.put((label, written))
    finally:
        store.close()


def _read_loop(path, barrier, label, rounds, out):
    """Hammer ``get`` on one hot key; every hit bumps recency (a write)."""
    store = ArtifactStore(path, schema_tag=TAG)
    try:
        barrier.wait(timeout=30)
        hits = 0
        for _ in range(rounds):
            value = store.get("context", "hot-key")
            if value == {"payload": "hot"}:
                hits += 1
        out.put((label, hits))
    finally:
        store.close()


def _churn_writes(path, barrier, rounds, out):
    store = ArtifactStore(path, schema_tag=TAG)
    try:
        barrier.wait(timeout=30)
        written = 0
        for i in range(rounds):
            if store.put("prepared", f"churn-{i}", {"i": i}):
                written += 1
        out.put(("writer", written))
    finally:
        store.close()


def test_concurrent_readers_survive_recency_contention(tmp_path):
    """ISSUE 9 satellite: the per-hit recency bump is an UPDATE, so
    concurrent multi-process readers (plus a churning writer) contend on
    the sqlite write lock.  A busy/locked error on the bump must never
    surface — not as a raised ``sqlite3.OperationalError`` and not as a
    hit silently turned into a miss."""
    ctx = multiprocessing.get_context("spawn")
    path = tmp_path / "c"
    with ArtifactStore(path, schema_tag=TAG) as seed:
        assert seed.put("context", "hot-key", {"payload": "hot"})
    readers = 3
    rounds = 60
    barrier = ctx.Barrier(readers + 1)
    out = ctx.Queue()
    procs = [
        ctx.Process(
            target=_read_loop, args=(path, barrier, f"r{i}", rounds, out)
        )
        for i in range(readers)
    ]
    procs.append(
        ctx.Process(target=_churn_writes, args=(path, barrier, rounds, out))
    )
    for p in procs:
        p.start()
    results = dict(out.get(timeout=120) for _ in procs)
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    for i in range(readers):
        assert results[f"r{i}"] == rounds
    assert results["writer"] == rounds


def test_two_processes_warming_same_key(tmp_path):
    ctx = multiprocessing.get_context("spawn")
    path = tmp_path / "c"
    # Create the database up front so the racing children contend on
    # writes, not on schema creation.
    ArtifactStore(path, schema_tag=TAG).close()
    barrier = ctx.Barrier(2)
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_write_same_key, args=(path, barrier, name, out))
        for name in ("alpha", "beta")
    ]
    for p in procs:
        p.start()
    results = dict(out.get(timeout=60) for _ in procs)
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    # Both writers must report success...
    assert results == {"alpha": True, "beta": True}
    # ...and exactly one complete, decodable entry survives.
    conn = sqlite3.connect(path / "artifacts.sqlite")
    try:
        rows = conn.execute(
            "SELECT schema_tag, payload FROM artifacts WHERE kind = 'prepared'"
        ).fetchall()
    finally:
        conn.close()
    assert len(rows) == 1
    tag, blob = rows[0]
    assert tag == TAG
    value = decode_payload(TAG, blob)
    assert value["writer"] in {"alpha", "beta"}
    assert value["table"] == list(range(200))
    with ArtifactStore(path, schema_tag=TAG) as store:
        assert store.get("prepared", "shared-key") == value


def test_concurrent_writers_distinct_keys(tmp_path):
    ctx = multiprocessing.get_context("spawn")
    path = tmp_path / "c"
    ArtifactStore(path, schema_tag=TAG).close()
    count = 20
    barrier = ctx.Barrier(2)
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_write_many_keys, args=(path, barrier, name, count, out))
        for name in ("alpha", "beta")
    ]
    for p in procs:
        p.start()
    results = dict(out.get(timeout=120) for _ in procs)
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0
    assert results == {"alpha": count, "beta": count}
    with ArtifactStore(path, schema_tag=TAG) as store:
        assert store.stats()["kinds"]["context"]["entries"] == 2 * count
        for label in ("alpha", "beta"):
            for i in range(count):
                assert store.get("context", f"{label}-{i}") == {
                    "writer": label,
                    "i": i,
                }
