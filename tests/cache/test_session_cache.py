"""Session integration with the persistent artifact store.

A cold session publishes every artifact it builds; a second session on
the same cache directory answers from disk without rebuilding any of
them.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.cache import ArtifactStore, default_schema_tag
from repro.graphs.generators import connected_erdos_renyi, grid_graph


@pytest.fixture
def graph():
    return connected_erdos_renyi(10, 0.35, seed=11)


def _disk(session):
    return session.cache_info()["disk"]


def test_cold_session_publishes_all_kinds(tmp_path, graph):
    with Session(cache_dir=tmp_path / "c") as session:
        session.top(graph, "fill", k=5)
        kinds = _disk(session)["kinds"]
        assert kinds["context"]["stores"] >= 1
        assert kinds["prepared"]["stores"] >= 1
        assert kinds["plan"]["stores"] >= 1
        assert kinds["context"]["hits"] == 0


def test_warm_session_builds_nothing(tmp_path, graph):
    path = tmp_path / "c"
    with Session(cache_dir=path) as cold:
        cold.top(graph, "fill", k=5)
        cold_builds = cold.cache_info()["builds"]
    assert cold_builds >= 1
    with Session(cache_dir=path) as warm:
        response = warm.top(graph, "fill", k=5)
        info = warm.cache_info()
        assert info["builds"] == 0
        kinds = info["disk"]["kinds"]
        # The whole request was replayed from the cached answer prefix —
        # no init artifact was even consulted, let alone rebuilt.
        assert response.stats.engine == "cache"
        assert kinds["answers"]["hits"] >= 1
        for kind in ("answers", "context", "prepared", "plan"):
            assert kinds[kind]["misses"] == 0
            assert kinds[kind]["stores"] == 0


def test_warm_session_replays_init_kinds_for_streams(tmp_path, graph):
    """The init artifacts still serve paths the answer cache cannot:
    an open-ended ``stream`` (no k) consults context/prepared/plan."""
    path = tmp_path / "c"
    with Session(cache_dir=path) as cold:
        cold.top(graph, "fill", k=5)
    with Session(cache_dir=path) as warm:
        stream = warm.stream(graph, "fill")
        try:
            next(iter(stream), None)
        finally:
            stream.close()
        info = warm.cache_info()
        assert info["builds"] == 0
        kinds = info["disk"]["kinds"]
        assert kinds["context"]["hits"] >= 1
        assert kinds["prepared"]["hits"] >= 1
        assert kinds["plan"]["hits"] >= 1
        for kind in ("context", "prepared", "plan"):
            assert kinds[kind]["misses"] == 0
            assert kinds[kind]["stores"] == 0


def test_kernel_keys_are_separate(tmp_path, graph):
    path = tmp_path / "c"
    with Session(cache_dir=path, kernel="bitset") as bitset:
        bitset.top(graph, "width", k=3)
    with Session(cache_dir=path, kernel="sets") as sets:
        response = sets.top(graph, "width", k=3)
        kinds = _disk(sets)["kinds"]
        # A bitset-warmed cache must not satisfy a sets-kernel session's
        # context lookups; the plan is kernel-independent and may hit.
        assert kinds["context"]["misses"] >= 1
        assert kinds["context"]["hits"] == 0
        assert sets.cache_info()["builds"] >= 1
    with Session(kernel="bitset") as plain:
        expected = plain.top(graph, "width", k=3)
    assert [r.cost for r in response.results] == [r.cost for r in expected.results]


def test_width_bound_keys_are_separate(tmp_path):
    graph = grid_graph(3, 3)
    path = tmp_path / "c"
    with Session(cache_dir=path) as first:
        first.top(graph, "width", k=3, preprocess=False)
    with Session(cache_dir=path) as second:
        second.top(graph, "width", k=3, width_bound=4, preprocess=False)
        kinds = _disk(second)["kinds"]
        assert kinds["context"]["hits"] == 0
        assert kinds["context"]["misses"] >= 1


def test_caller_owned_store_survives_session_close(tmp_path, graph):
    store = ArtifactStore(tmp_path / "c", schema_tag=default_schema_tag())
    try:
        session = Session(store=store)
        session.top(graph, "width", k=3)
        session.close()
        # The session must not close a store it was handed.
        assert store.put("context", "probe", b"alive")
        assert store.get("context", "probe") == b"alive"
    finally:
        store.close()


def test_session_owned_store_closes_with_session(tmp_path, graph):
    session = Session(cache_dir=tmp_path / "c")
    store = session.store
    assert store is not None
    session.top(graph, "width", k=3)
    session.close()
    assert session.store is None
    # close() released the sqlite handle: the store is now inert.
    assert store.get("context", "anything") is None


def test_cacheless_session_reports_no_disk(graph):
    with Session() as session:
        session.top(graph, "width", k=3)
        assert "disk" not in session.cache_info()
