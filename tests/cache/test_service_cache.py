"""The cache must survive a ``repro serve`` restart (ISSUE 7 acceptance).

A server pointed at a cache directory, stopped, and started again must
answer its first request from disk — byte-identically to the first
run's answers and with the stats op reporting disk hits, on both
execution backends.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import connected_erdos_renyi, ring_of_cycles
from repro.service import ServerThread, ServiceClient

#: Both a direct instance and one that routes through the preprocessing
#: pipeline (composed stream → plan + per-atom artifacts).
WORKLOADS = [
    ("gnp", lambda: connected_erdos_renyi(10, 0.35, seed=0), "fill"),
    ("ring", lambda: ring_of_cycles(2, 5), "width"),
]

K = 6


def _run_once(cache_dir, backend):
    """One server lifetime: submit every workload, return raw answer
    lines per workload plus the aggregated disk-cache stats."""
    with ServerThread(
        max_workers=2,
        backend=backend,
        worker_processes=2,
        cache_dir=str(cache_dir),
    ) as handle:
        client = ServiceClient(*handle.address, timeout=120.0)
        lines = {}
        for name, factory, cost in WORKLOADS:
            result = client.top(factory(), cost, k=K)
            lines[name] = list(result.answer_lines)
        stats = ServiceClient(*handle.address, timeout=60.0).service_stats()
    return lines, stats.cache


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_cache_survives_server_restart(tmp_path, backend):
    cache_dir = tmp_path / "cache"

    cold_lines, cold_cache = _run_once(cache_dir, backend)
    assert cold_cache.get("enabled") is True
    cold_kinds = cold_cache["kinds"]
    for kind in ("context", "prepared", "plan", "answers"):
        assert cold_kinds[kind]["stores"] >= 1, kind

    # A brand-new server process tree against the same directory: every
    # job is satisfied from the cached answer prefixes, and the bytes on
    # the wire are identical.  The init kinds are not even consulted —
    # the scheduler serves covered jobs before a worker seat exists.
    warm_lines, warm_cache = _run_once(cache_dir, backend)
    assert warm_lines == cold_lines
    warm_kinds = warm_cache["kinds"]
    assert warm_kinds["answers"]["hits"] >= len(WORKLOADS)
    for kind in ("answers", "context", "prepared", "plan"):
        assert warm_kinds[kind]["stores"] == 0, kind
        assert warm_kinds[kind]["misses"] == 0, kind


def test_cacheless_server_reports_disabled():
    with ServerThread(max_workers=1) as handle:
        stats = ServiceClient(*handle.address, timeout=60.0).service_stats()
    assert stats.cache.get("enabled") is False
