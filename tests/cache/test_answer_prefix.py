"""The ``answers`` artifact kind end-to-end at the session layer.

A cold session publishes the ranked answer prefix it enumerates; warm
sessions replay it (``stats.engine == "cache"``) with results identical
to live enumeration, extend it from the stored frontier when asked for
a longer prefix, and learn interior checkpoints so previously-live page
sizes become servable from disk.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.graphs.generators import connected_erdos_renyi


@pytest.fixture
def graph():
    return connected_erdos_renyi(10, 0.35, seed=0)


def _serialize(results):
    """Timing-free canonical form of a ranked result sequence."""
    return [
        [r.cost, sorted(sorted(bag) for bag in r.triangulation.bags)]
        for r in results
    ]


def test_warm_replay_is_identical_to_live(tmp_path, graph):
    path = tmp_path / "c"
    with Session(cache_dir=path) as cold:
        live = cold.top(graph, "fill", k=8)
    assert live.stats.engine != "cache"
    with Session(cache_dir=path) as warm:
        replay = warm.top(graph, "fill", k=8)
    assert replay.stats.engine == "cache"
    assert replay.stats.emitted == live.stats.emitted
    assert replay.stats.exhausted == live.stats.exhausted
    assert _serialize(replay.results) == _serialize(live.results)
    # The replayed checkpoint is the stored frontier: both resume points
    # must designate the same next rank.
    if live.checkpoint is not None:
        assert replay.checkpoint is not None
        assert replay.checkpoint.next_rank == live.checkpoint.next_rank


def test_extension_resumes_from_stored_frontier(tmp_path, graph):
    with Session() as plain:
        reference = plain.top(graph, "fill", k=20)
    path = tmp_path / "c"
    with Session(cache_dir=path) as first:
        first.top(graph, "fill", k=5)
    with Session(cache_dir=path) as second:
        extended = second.top(graph, "fill", k=20)
        kinds = second.cache_info()["disk"]["kinds"]
        # The head replayed from disk, the tail ran live from the stored
        # checkpoint at 5 — and the longer prefix was written back.
        assert kinds["answers"]["hits"] >= 1
        assert kinds["answers"]["stores"] >= 1
    assert _serialize(extended.results) == _serialize(reference.results)
    assert extended.stats.emitted == reference.stats.emitted
    with Session(cache_dir=path) as third:
        replay = third.top(graph, "fill", k=20)
    assert replay.stats.engine == "cache"
    assert _serialize(replay.results) == _serialize(reference.results)


def test_interior_checkpoints_are_learned(tmp_path, graph):
    with Session() as plain:
        reference = plain.top(graph, "fill", k=6)
    path = tmp_path / "c"
    with Session(cache_dir=path) as warm:
        warm.top(graph, "fill", k=20)
    with Session(cache_dir=path) as session:
        # First k=3 page: the record covers positions 0..20 but has no
        # checkpoint at 3 yet, so the page runs live and learns one.
        first = session.top(graph, "fill", k=3)
        resumed = session.resume(first.checkpoint, k=3, cost="fill")
        # Second pass over the same pages: both now replay from disk.
        page = session.top(graph, "fill", k=3)
        assert page.stats.engine == "cache"
        tail = session.resume(page.checkpoint, k=3, cost="fill")
        assert tail.stats.engine == "cache"
    combined = _serialize(first.results) + _serialize(resumed.results)
    assert combined == _serialize(reference.results)
    assert _serialize(page.results) + _serialize(tail.results) == combined


def test_resume_replays_from_bytes_token(tmp_path, graph):
    path = tmp_path / "c"
    with Session(cache_dir=path) as warm:
        head = warm.top(graph, "fill", k=4)
        warm.resume(head.checkpoint, k=4, cost="fill")
    token = head.checkpoint.to_bytes()
    with Session(cache_dir=path) as session:
        replay = session.resume(token, k=4, cost="fill")
        assert replay.stats.engine == "cache"
    with Session() as plain:
        reference = plain.top(graph, "fill", k=8)
    assert _serialize(head.results) + _serialize(replay.results) == _serialize(
        reference.results
    )


def test_prefix_respects_width_bound_keys(tmp_path):
    graph = connected_erdos_renyi(10, 0.35, seed=3)
    path = tmp_path / "c"
    with Session(cache_dir=path) as first:
        first.top(graph, "width", k=3, preprocess=False)
    with Session(cache_dir=path) as second:
        bounded = second.top(
            graph, "width", k=3, width_bound=4, preprocess=False
        )
        # A different width bound is a different key: no replay.
        assert bounded.stats.engine != "cache"
