"""The artifact store itself: roundtrips, LRU eviction, corruption
tolerance, and directory resolution."""

from __future__ import annotations

import sqlite3
import warnings

import pytest

from repro.cache import (
    ArtifactStore,
    CacheIntegrityWarning,
    DEFAULT_MAX_BYTES,
    ENV_CACHE_DIR,
    ENV_MAX_BYTES,
    context_key,
    open_store,
    plan_key,
    prepared_key,
    resolve_cache_dir,
)


@pytest.fixture
def store(tmp_path):
    with ArtifactStore(tmp_path / "cache", schema_tag="test-tag") as s:
        yield s


def test_roundtrip(store):
    value = {"table": [1, 2, 3], "first": ("a", frozenset({1, 2}))}
    assert store.put("prepared", "k1", value)
    assert store.get("prepared", "k1") == value


def test_missing_is_a_counted_miss(store):
    assert store.get("context", "nope") is None
    kinds = store.stats()["kinds"]
    assert kinds["context"]["misses"] == 1
    assert kinds["context"]["hits"] == 0


def test_hit_and_store_counters(store):
    store.put("plan", "k", [1])
    store.get("plan", "k")
    store.get("plan", "k")
    counters = store.stats()["kinds"]["plan"]
    assert counters["stores"] == 1
    assert counters["hits"] == 2
    assert counters["misses"] == 0


def test_persistence_across_instances(tmp_path):
    with ArtifactStore(tmp_path / "c", schema_tag="t") as s1:
        s1.put("context", "k", "payload")
    with ArtifactStore(tmp_path / "c", schema_tag="t") as s2:
        assert s2.get("context", "k") == "payload"


def test_replace_same_key_keeps_one_entry(store):
    store.put("context", "k", "old")
    store.put("context", "k", "new")
    assert store.get("context", "k") == "new"
    assert store.stats()["kinds"]["context"]["entries"] == 1


def test_delete_and_clear(store):
    store.put("context", "a", 1)
    store.put("context", "b", 2)
    store.put("plan", "c", 3)
    store.delete("context", "a")
    assert store.get("context", "a") is None
    assert store.clear("plan") == 1
    assert store.get("plan", "c") is None
    assert store.get("context", "b") == 2
    assert store.clear() == 1
    assert store.stats()["entries"] == 0


def test_lru_eviction_prefers_least_recently_used(store):
    store.put("context", "a", b"a" * 100)
    store.put("context", "b", b"b" * 100)
    assert store.get("context", "a") is not None  # refresh a's recency
    # Cap the store just above two entries: the next put must evict
    # exactly one victim, and it must be b (older last_used), not a.
    two_entries = store.stats()["total_bytes"]
    store.max_bytes = two_entries + 50
    store.put("context", "c", b"c" * 100)
    assert store.get("context", "b") is None
    assert store.get("context", "a") is not None
    assert store.get("context", "c") is not None
    assert store.stats()["kinds"]["context"]["evictions"] == 1


def test_oversized_artifact_refused(store):
    store.max_bytes = 64
    assert not store.put("context", "big", b"x" * 1024)
    assert store.stats()["entries"] == 0


def test_just_written_entry_never_self_evicts(store):
    # An entry that fits the cap on its own must survive its own put
    # even when the store cannot shrink under the cap around it.
    store.put("context", "only", b"y" * 100)
    nbytes = store.stats()["total_bytes"]
    store.max_bytes = nbytes  # exactly at cap
    store.put("context", "only", b"y" * 100)
    assert store.get("context", "only") is not None


def test_corrupt_database_file_recovers_cold(tmp_path):
    path = tmp_path / "c"
    with ArtifactStore(path, schema_tag="t") as s1:
        s1.put("context", "k", "v")
    (path / "artifacts.sqlite").write_bytes(b"this is not a database")
    with pytest.warns(CacheIntegrityWarning):
        s2 = ArtifactStore(path, schema_tag="t")
    try:
        assert s2.get("context", "k") is None  # cold, but alive
        assert s2.put("context", "k", "v2")
        assert s2.get("context", "k") == "v2"
    finally:
        s2.close()


def test_closed_store_is_inert(store):
    store.put("context", "k", 1)
    store.close()
    assert store.get("context", "k") is None
    assert not store.put("context", "k2", 2)
    assert store.clear() == 0
    store.close()  # idempotent


def test_stats_shape(store):
    store.put("context", "k", b"z" * 10)
    stats = store.stats()
    assert stats["schema_tag"] == "test-tag"
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0
    assert set(stats["kinds"]["context"]) == {
        "hits", "misses", "stores", "evictions", "corrupt", "entries", "bytes",
    }


def test_key_builders_disambiguate():
    assert context_key("fp", None, "bitset") != context_key("fp", 3, "bitset")
    assert context_key("fp", None, "bitset") != context_key("fp", None, "sets")
    assert prepared_key("fp", "width", None, "bitset") != prepared_key(
        "fp", "fill", None, "bitset"
    )
    assert plan_key("fp", True) != plan_key("fp", False)


def test_resolve_cache_dir_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
    assert resolve_cache_dir(None) is None
    assert open_store(None) is None
    monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env"))
    assert resolve_cache_dir(None) == tmp_path / "env"
    # An explicit argument beats the environment.
    assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"
    store = open_store(None, schema_tag="t")
    try:
        assert store is not None
        assert store.path == tmp_path / "env"
    finally:
        store.close()


def test_max_bytes_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_MAX_BYTES, "4096")
    with ArtifactStore(tmp_path / "c", schema_tag="t") as s:
        assert s.max_bytes == 4096
    monkeypatch.setenv(ENV_MAX_BYTES, "not-a-number")
    with ArtifactStore(tmp_path / "c2", schema_tag="t") as s:
        assert s.max_bytes == DEFAULT_MAX_BYTES
    with pytest.raises(ValueError):
        ArtifactStore(tmp_path / "c3", schema_tag="t", max_bytes=0)


def test_wal_mode_is_active(store):
    store.put("context", "k", 1)
    conn = sqlite3.connect(store.db_path)
    try:
        (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
    finally:
        conn.close()
    assert mode.lower() == "wal"


def test_no_warnings_on_clean_operation(store):
    with warnings.catch_warnings():
        warnings.simplefilter("error", CacheIntegrityWarning)
        store.put("context", "k", "v")
        assert store.get("context", "k") == "v"
        assert store.get("context", "missing") is None


class TestMonotonicRecency:
    """Regression: LRU recency once used wall-clock ``time.time()``, so a
    backwards clock step (NTP correction, VM suspend) made fresh accesses
    look *older* than stale entries and evicted the hottest artifacts."""

    def _last_used(self, store, kind, key):
        (value,) = store._conn.execute(
            "SELECT last_used FROM artifacts WHERE kind = ? AND key = ?",
            (kind, key),
        ).fetchone()
        return value

    def test_backwards_clock_step_does_not_scramble_eviction(
        self, store, monkeypatch
    ):
        import types

        from repro.cache import store as store_mod

        # Every wall-clock read returns an older instant than the last —
        # the adversarial regime the counter must be immune to.
        ticks = iter(range(1_000_000, 0, -1000))
        monkeypatch.setattr(
            store_mod,
            "time",
            types.SimpleNamespace(time=lambda: float(next(ticks))),
        )
        store.put("context", "a", b"a" * 100)
        store.put("context", "b", b"b" * 100)
        assert store.get("context", "a") is not None  # a is now the hottest
        store.max_bytes = store.stats()["total_bytes"] + 50
        store.put("context", "c", b"c" * 100)
        # Wall-clock recency would have stamped a's refresh with the
        # OLDEST time and evicted it; access order must win instead.
        assert store.get("context", "b") is None
        assert store.get("context", "a") is not None
        assert store.get("context", "c") is not None

    def test_forged_future_timestamp_loses_to_fresh_accesses(self, store):
        store.put("context", "hot", b"h" * 100)
        store.put("context", "stale", b"s" * 100)
        # Forge a row written while the clock was far ahead (out-of-order
        # wall-clock values as pre-fix stores would have persisted them).
        store._conn.execute(
            "UPDATE artifacts SET last_used = 9e15 "
            "WHERE kind = 'context' AND key = 'stale'"
        )
        assert store.get("context", "hot") is not None
        # The counter continues past ANY persisted value, forged or not.
        assert self._last_used(store, "context", "hot") > 9e15
        store.max_bytes = store.stats()["total_bytes"] + 50
        store.put("context", "fresh", b"f" * 100)
        assert store.get("context", "stale") is None
        assert store.get("context", "hot") is not None

    def test_recency_is_strictly_increasing_across_instances(self, tmp_path):
        with ArtifactStore(tmp_path / "c", schema_tag="t") as s1:
            s1.put("context", "a", 1)
            s1.put("context", "b", 2)
            first = self._last_used(s1, "context", "a")
            s1.get("context", "a")
            refreshed = self._last_used(s1, "context", "a")
            assert refreshed > first
        # A new handle (another process, after a restart) continues the
        # counter from the table itself — no per-process state to desync.
        with ArtifactStore(tmp_path / "c", schema_tag="t") as s2:
            s2.get("context", "b")
            assert self._last_used(s2, "context", "b") > refreshed
