"""Environment isolation for the cache suite.

These tests assert exact hit/miss/store counters against directories
they control; a ``REPRO_CACHE_DIR`` exported in the developer's shell
(or a CI job) would silently attach every plain ``Session()`` to a
shared store and skew them.
"""

from __future__ import annotations

import pytest

from repro.cache import ENV_CACHE_DIR, ENV_MAX_BYTES


@pytest.fixture(autouse=True)
def _isolated_cache_env(monkeypatch):
    monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
    monkeypatch.delenv(ENV_MAX_BYTES, raising=False)
