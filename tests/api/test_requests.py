"""Validation tests for the typed request/response surface."""

from __future__ import annotations

import pytest

from repro.api import EnumerationRequest, Session
from repro.costs.classic import WidthCost
from repro.graphs.generators import cycle_graph, paper_example_graph


class TestRequestValidation:
    def test_defaults(self):
        request = EnumerationRequest(graph=cycle_graph(4))
        assert request.mode == "ranked"
        assert request.cost == "width"
        assert request.k is None
        assert request.result_limit is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            EnumerationRequest(graph=cycle_graph(4), mode="fastest")

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            EnumerationRequest(graph=cycle_graph(4), k=-1)

    def test_bad_cost_type_rejected(self):
        with pytest.raises(TypeError, match="cost must be"):
            EnumerationRequest(graph=cycle_graph(4), cost=3.14)

    def test_min_distance_rejected(self):
        with pytest.raises(ValueError, match="min_distance"):
            EnumerationRequest(graph=cycle_graph(4), min_distance=0)

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="time_budget"):
            EnumerationRequest(graph=cycle_graph(4), time_budget=0)
        with pytest.raises(ValueError, match="answer_budget"):
            EnumerationRequest(graph=cycle_graph(4), answer_budget=-2)

    def test_result_limit_is_the_tighter_bound(self):
        request = EnumerationRequest(graph=cycle_graph(4), k=10, answer_budget=3)
        assert request.result_limit == 3
        request = EnumerationRequest(graph=cycle_graph(4), k=2, answer_budget=9)
        assert request.result_limit == 2

    def test_cost_spec_property(self):
        assert EnumerationRequest(graph=cycle_graph(4), cost="fill").cost_spec == "fill"
        assert (
            EnumerationRequest(graph=cycle_graph(4), cost=WidthCost()).cost_spec
            is None
        )

    def test_with_functional_update(self):
        request = EnumerationRequest(graph=cycle_graph(4), cost="fill", k=5)
        paged = request.with_(k=10)
        assert paged.k == 10 and paged.cost == "fill"
        assert request.k == 5  # original untouched


class TestResponseShape:
    def test_container_protocol(self):
        response = Session().top(paper_example_graph(), "width", k=10)
        assert len(response) == 2
        assert bool(response)
        assert [r.rank for r in response] == [0, 1]

    def test_empty_response_is_falsy(self):
        response = Session().top(cycle_graph(6), "width", k=5, width_bound=1)
        assert not response
        assert len(response) == 0

    def test_stats_are_frozen(self):
        response = Session().top(paper_example_graph(), "width", k=1)
        with pytest.raises(AttributeError):
            response.stats.emitted = 99
