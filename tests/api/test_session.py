"""Session-layer tests: context cache, typed responses, mode dispatch."""

from __future__ import annotations

import pytest

import repro.api.session as session_mod
from repro.api import EnumerationRequest, EnumerationResponse, Session
from repro.core.context import TriangulationContext
from repro.costs.classic import FillInCost, WidthCost
from repro.graphs.generators import (
    cycle_graph,
    paper_example_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.io import write_graph


@pytest.fixture
def build_counter(monkeypatch):
    """Count TriangulationContext.build invocations."""
    calls = []
    original = TriangulationContext.build

    def counting(graph, *args, **kwargs):
        calls.append(graph)
        return original(graph, *args, **kwargs)

    monkeypatch.setattr(TriangulationContext, "build", staticmethod(counting))
    return calls


class TestContextCache:
    def test_one_build_per_graph_fingerprint(self, build_counter):
        """Equal-content graphs share one initialization build."""
        session = Session()
        g1 = cycle_graph(6)
        g2 = cycle_graph(6)  # distinct object, same content
        assert g1 is not g2
        session.top(g1, "width", k=2)
        session.top(g2, "fill", k=2)
        session.diverse(g1, "width", k=2)
        list(session.stream(g2, "width"))
        assert len(build_counter) == 1

    def test_distinct_content_builds_separately(self, build_counter):
        session = Session()
        session.top(cycle_graph(5), "width", k=1)
        session.top(cycle_graph(6), "width", k=1)
        assert len(build_counter) == 2

    def test_mutation_misses_the_cache(self, build_counter):
        """A mutated graph must not be served a stale context."""
        # preprocess off: the chorded cycle decomposes into atoms, which
        # would build one context per atom and blur the count under test.
        session = Session(preprocess=False)
        g = cycle_graph(6)
        first = session.top(g, "fill", k=1)
        g.add_edge(1, 4)  # chord: different graph now
        second = session.top(g, "fill", k=1)
        assert len(build_counter) == 2
        assert first.stats.fingerprint != second.stats.fingerprint

    def test_cached_entry_survives_caller_mutation(self):
        """The cache snapshots the graph at build time: mutating the
        caller's object afterwards cannot poison the entry that equal-
        content graphs are served from."""
        session = Session()
        g = cycle_graph(6)
        baseline = [
            (r.cost, frozenset(r.triangulation.bags))
            for r in session.top(g, "fill", k=3).results
        ]
        g.add_edge(1, 4)  # mutate the object the entry was built from
        fresh = cycle_graph(6)
        assert session.context(fresh) == session.context(fresh)
        assert session.context(fresh).graph == fresh  # not the mutated one
        again = [
            (r.cost, frozenset(r.triangulation.bags))
            for r in session.top(fresh, "fill", k=3).results
        ]
        assert again == baseline

    def test_width_bound_is_part_of_the_key(self, build_counter):
        session = Session()
        g = cycle_graph(6)
        session.top(g, "width", k=1)
        session.top(g, "width", k=1, width_bound=3)
        assert len(build_counter) == 2

    def test_lru_eviction(self, build_counter):
        session = Session(max_contexts=2)
        g5, g6, g7 = cycle_graph(5), cycle_graph(6), cycle_graph(7)
        session.top(g5, "width", k=1)
        session.top(g6, "width", k=1)
        session.top(g7, "width", k=1)  # evicts g5
        assert session.cache_info()["contexts"] == 2
        session.top(g5, "width", k=1)  # rebuilt
        assert len(build_counter) == 4

    def test_cache_info_counters(self):
        session = Session()
        g = cycle_graph(6)
        session.top(g, "width", k=1)
        session.top(g, "width", k=1)
        info = session.cache_info()
        assert info["builds"] == 1
        assert info["hits"] >= 1
        assert info["contexts"] == 1

    def test_adopt_context(self, build_counter):
        session = Session()
        g = cycle_graph(6)
        ctx = TriangulationContext.build(g)
        fp = session.adopt_context(ctx)
        assert session.context(g) is ctx
        assert session.top(g, "width", k=1).stats.fingerprint == fp
        assert len(build_counter) == 1  # only the explicit build

    def test_prebuilt_context_argument_is_used(self):
        session = Session()
        g = paper_example_graph()
        ctx = TriangulationContext.build(g)
        results = list(session.stream(g, "width", context=ctx))
        assert len(results) == 2
        assert results[0].triangulation.graph is ctx.graph

    def test_prepared_table_cached_per_cost_spec(self, monkeypatch):
        """The unconstrained DP runs once per (context, registry cost)."""
        calls = []
        original = session_mod.min_triangulation_and_table

        def counting(context, cost, *args, **kwargs):
            calls.append(cost)
            return original(context, cost, *args, **kwargs)

        monkeypatch.setattr(session_mod, "min_triangulation_and_table", counting)
        session = Session()
        g = cycle_graph(6)
        session.top(g, "width", k=1)
        session.top(g, "width", k=3)
        session.top(g, "fill", k=1)
        assert len(calls) == 2  # one per registry spec

    def test_close_clears_cache(self):
        session = Session()
        session.top(cycle_graph(5), "width", k=1)
        session.close()
        assert session.cache_info()["contexts"] == 0


class TestRankedResponses:
    def test_top_results_and_stats(self):
        session = Session()
        g = paper_example_graph()
        response = session.top(g, "width", k=10)
        assert isinstance(response, EnumerationResponse)
        assert [r.cost for r in response.results] == [2.0, 3.0]
        assert [r.rank for r in response.results] == [0, 1]
        stats = response.stats
        assert stats.mode == "ranked"
        assert stats.cost_spec == "width"
        assert stats.emitted == 2
        assert stats.exhausted and response.exhausted
        assert stats.expansions > 0
        assert len(stats.fingerprint) == 64
        assert not stats.context_cached
        assert session.top(g, "width", k=10).stats.context_cached

    def test_k_zero_short_circuits(self):
        session = Session()
        g = Graph(edges=[(1, 2), (3, 4)])  # disconnected!
        response = session.top(g, "width", k=0)
        assert response.results == ()
        assert session.cache_info()["contexts"] == 0

    def test_answer_budget_caps_k(self):
        session = Session()
        response = session.top(cycle_graph(6), "fill", k=10, answer_budget=3)
        assert len(response.results) == 3
        assert not response.exhausted

    def test_time_budget_marks_timeout(self):
        session = Session()
        response = session.top(
            cycle_graph(7), "fill", k=None, time_budget=1e-9
        )
        # At least one answer, then the budget cuts collection short.
        assert response.stats.timed_out
        assert len(response.results) >= 1
        assert response.checkpoint is not None

    def test_stream_empty_graph(self):
        session = Session()
        assert list(session.stream(Graph(), "width")) == []

    def test_stream_disconnected_rejected_without_preprocess(self):
        """The direct pipeline still requires a connected graph."""
        session = Session(preprocess=False)
        with pytest.raises(ValueError, match="connected"):
            session.stream(Graph(edges=[(1, 2), (3, 4)]), "width")
        # A cost *object* bypasses preprocessing, so the default session
        # rejects disconnected graphs there too.
        with pytest.raises(ValueError, match="connected"):
            Session().stream(Graph(edges=[(1, 2), (3, 4)]), WidthCost())

    def test_stream_disconnected_served_by_preprocessing(self):
        """Component splitting is a reduction: the default session now
        enumerates disconnected graphs, ranked over the whole graph."""
        session = Session()
        results = list(session.stream(Graph(edges=[(1, 2), (3, 4)]), "width"))
        assert len(results) == 1
        assert results[0].cost == 1.0
        assert results[0].triangulation.bags == frozenset(
            [frozenset({1, 2}), frozenset({3, 4})]
        )
        # Two 4-cycles: 2 x 2 combinations, ranked over the union.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0),
                         (4, 5), (5, 6), (6, 7), (7, 4)])
        response = session.top(g, "fill", k=None)
        assert [r.cost for r in response.results] == [2.0, 2.0, 2.0, 2.0]
        assert response.stats.preprocessed
        assert len({frozenset(r.triangulation.bags) for r in response.results}) == 4

    def test_width_bound_infeasible(self):
        session = Session()
        response = session.top(cycle_graph(6), "width", k=5, width_bound=1)
        assert response.results == ()
        assert response.exhausted

    def test_cost_object_accepted(self):
        session = Session()
        response = session.top(paper_example_graph(), FillInCost(), k=2)
        assert [r.cost for r in response.results] == [1.0, 3.0]
        assert response.stats.cost_spec is None

    def test_graph_from_path(self, tmp_path):
        path = tmp_path / "c6.gr"
        write_graph(cycle_graph(6), path)
        session = Session()
        response = session.top(str(path), "width", k=2)
        assert len(response.results) == 2


class TestDiverseMode:
    def test_matches_legacy_greedy(self):
        from repro.core.diversity import diverse_top_k

        g = cycle_graph(7)
        session = Session()
        response = session.diverse(g, "fill", k=6, min_distance=4)
        legacy = diverse_top_k(g, FillInCost(), 6, min_distance=4)
        assert [t.bags for t in response.results] == [t.bags for t in legacy]
        assert response.stats.mode == "diverse"

    def test_width_bound_threads_through(self):
        session = Session()
        unbounded = session.diverse(cycle_graph(6), "fill", k=4, min_distance=1)
        bounded = session.diverse(
            cycle_graph(6), "fill", k=4, min_distance=1, width_bound=1
        )
        assert len(unbounded.results) == 4
        assert bounded.results == ()  # C6 needs width 2

    def test_scan_limit(self):
        session = Session()
        response = session.diverse(
            cycle_graph(7), "fill", k=10, min_distance=100, scan_limit=5
        )
        assert len(response.results) == 1

    def test_requires_k(self):
        session = Session()
        with pytest.raises(ValueError, match="requires k"):
            session.execute(
                EnumerationRequest(graph=cycle_graph(5), mode="diverse", k=None)
            )


class TestDecompositionsMode:
    def test_matches_legacy(self):
        from repro.core.proper import top_k_tree_decompositions

        g = paper_example_graph()
        session = Session()
        response = session.decompositions(g, "width", k=6)
        legacy = top_k_tree_decompositions(g, WidthCost(), 6)
        assert [r.decomposition.bag_set() for r in response.results] == [
            r.decomposition.bag_set() for r in legacy
        ]
        assert [r.rank for r in response.results] == list(range(len(legacy)))

    def test_per_triangulation_cap(self):
        session = Session()
        response = session.decompositions(
            paper_example_graph(), "width", k=10, per_triangulation=1
        )
        # One bag-distinct decomposition per minimal triangulation.
        assert len(response.results) == 2
        assert response.stats.mode == "decompositions"

    def test_single_chordal_graph(self):
        session = Session()
        response = session.decompositions(path_graph(5), "width", k=3)
        assert len(response.results) >= 1
        td = response.results[0].decomposition
        assert td.is_valid(path_graph(5))


class TestExecuteDispatch:
    def test_request_roundtrip(self):
        session = Session()
        request = EnumerationRequest(
            graph=paper_example_graph(), cost="fill", k=1, mode="ranked"
        )
        response = session.execute(request)
        assert response.results[0].cost == 1.0
        assert response.checkpoint is not None

    def test_triangulations_property_uniform(self):
        session = Session()
        g = paper_example_graph()
        for mode in ("ranked", "diverse", "decompositions"):
            request = EnumerationRequest(graph=g, cost="width", k=2, mode=mode)
            response = session.execute(request)
            for tri in response.triangulations:
                assert tri.bags  # plain Triangulation whatever the mode
