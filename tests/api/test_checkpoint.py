"""Checkpoint/resume tests: the resumed stream must be bit-identical.

The acceptance bar: a stream paused at rank ``k`` and resumed emits the
exact same (rank, cost, bags) suffix an uninterrupted run would — under
the serial engine AND the process-pool engine, within one session, and
across sessions via the serialized token.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import Session, StreamCheckpoint
from repro.costs.classic import FillInCost, WidthCost
from repro.engine import ProcessPoolStrategy
from repro.graphs.generators import cycle_graph, paper_example_graph
from tests.conftest import connected_random_graphs


def signature(results):
    """The engine-invariant identity of a ranked prefix."""
    return [(r.rank, r.cost, frozenset(r.triangulation.bags)) for r in results]


def paused_and_resumed(session, graph, cost, pause_at, engine=None):
    """Emit ``pause_at`` results, checkpoint, resume, drain; concatenated."""
    stream = session.stream(graph, cost, engine=engine)
    head = [next(stream) for _ in range(pause_at)]
    token = stream.checkpoint()
    stream.close()
    resumed = session.resume_stream(token, engine=engine)
    tail = list(resumed)
    return signature(head) + signature(tail)


class TestResumeEquivalence:
    def test_every_pause_point_cycle6(self):
        session = Session()
        g = cycle_graph(6)
        uninterrupted = signature(session.stream(g, "fill"))
        assert len(uninterrupted) == 14
        for k in range(len(uninterrupted) + 1):
            assert paused_and_resumed(session, g, "fill", k) == uninterrupted, k

    def test_random_graphs_serial(self):
        session = Session()
        for g in connected_random_graphs(8, 0.4, 3, seed_base=7000):
            for spec in ("width", "fill"):
                uninterrupted = signature(session.stream(g, spec))
                pause = max(1, len(uninterrupted) // 3)
                assert (
                    paused_and_resumed(session, g, spec, pause) == uninterrupted
                )

    def test_process_pool_engine(self):
        """Pause under a pool, resume under a pool: identical sequence."""
        session = Session()
        g = cycle_graph(7)  # 42 answers (Catalan(5))
        uninterrupted = signature(session.stream(g, "fill"))
        assert len(uninterrupted) == 42
        resumed = paused_and_resumed(
            session, g, "fill", 5, engine=ProcessPoolStrategy(workers=2)
        )
        assert resumed == uninterrupted

    def test_mixed_engines_across_the_pause(self):
        """Serial before the pause, process-pool after — still identical."""
        session = Session()
        g = cycle_graph(7)
        uninterrupted = signature(session.stream(g, "fill"))
        stream = session.stream(g, "fill")  # serial
        head = [next(stream) for _ in range(4)]
        token = stream.checkpoint()
        stream.close()
        tail = list(
            session.resume_stream(token, engine=ProcessPoolStrategy(workers=2))
        )
        assert signature(head) + signature(tail) == uninterrupted

    def test_checkpoint_is_nondestructive(self):
        """Taking a checkpoint must not perturb the live stream."""
        session = Session()
        g = cycle_graph(6)
        uninterrupted = signature(session.stream(g, "fill"))
        stream = session.stream(g, "fill")
        emitted = []
        for _ in range(3):
            emitted.append(next(stream))
            stream.checkpoint()
        emitted.extend(stream)
        assert signature(emitted) == uninterrupted

    def test_resume_chain_pagination(self):
        """top(k) → resume(k) → resume(k)... covers the space in order."""
        session = Session()
        g = cycle_graph(7)
        uninterrupted = signature(session.stream(g, "fill"))
        page = session.top(g, "fill", k=4)
        collected = list(page.results)
        while not page.exhausted:
            page = session.resume(page.checkpoint, k=4)
            collected.extend(page.results)
        assert signature(collected) == uninterrupted
        assert [r.rank for r in collected] == list(range(len(uninterrupted)))


class TestSerializedTokens:
    def test_bytes_roundtrip(self):
        session = Session(preprocess=False)
        g = paper_example_graph()
        stream = session.stream(g, "width")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        restored = StreamCheckpoint.from_bytes(token.to_bytes())
        assert restored == token

    def test_bytes_roundtrip_composed(self):
        """The paper graph routes through preprocessing by default; its
        token is a ComposedCheckpoint and roundtrips the same way."""
        from repro.api.checkpoint import load_checkpoint
        from repro.preprocess import ComposedCheckpoint

        session = Session()
        g = paper_example_graph()
        stream = session.stream(g, "width")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        assert isinstance(token, ComposedCheckpoint)
        restored = ComposedCheckpoint.from_bytes(token.to_bytes())
        assert restored == token
        assert load_checkpoint(token.to_bytes()) == token

    def test_resume_in_fresh_session_from_bytes(self):
        """The token embeds the graph: a cold process can resume it."""
        emitting = Session()
        g = cycle_graph(6)
        uninterrupted = signature(emitting.stream(g, "fill"))
        stream = emitting.stream(g, "fill")
        head = [next(stream) for _ in range(5)]
        blob = stream.checkpoint().to_bytes()
        stream.close()

        cold = Session()  # no cached context, no graph object
        tail = list(cold.resume_stream(blob))
        assert signature(head) + signature(tail) == uninterrupted
        assert cold.cache_info()["builds"] == 1  # rebuilt from the token

    def test_from_bytes_rejects_foreign_payload(self):
        with pytest.raises(ValueError, match="expected StreamCheckpoint"):
            StreamCheckpoint.from_bytes(pickle.dumps({"not": "a checkpoint"}))

    def test_composed_loaders_reject_foreign_payload_and_versions(self):
        import dataclasses

        from repro.api import load_checkpoint
        from repro.preprocess import ComposedCheckpoint

        blob = pickle.dumps(["neither", "kind"])
        with pytest.raises(ValueError, match="expected"):
            load_checkpoint(blob)
        with pytest.raises(ValueError, match="expected ComposedCheckpoint"):
            ComposedCheckpoint.from_bytes(blob)

        session = Session()
        stream = session.stream(paper_example_graph(), "width")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        assert isinstance(token, ComposedCheckpoint)
        future = dataclasses.replace(token, version=999)
        with pytest.raises(ValueError, match="version"):
            ComposedCheckpoint.from_bytes(future.to_bytes())

    def test_version_gate(self):
        session = Session()
        stream = session.stream(cycle_graph(5), "fill")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        stale = StreamCheckpoint(
            fingerprint=token.fingerprint,
            cost_spec=token.cost_spec,
            width_bound=token.width_bound,
            next_rank=token.next_rank,
            next_order=token.next_order,
            frontier=token.frontier,
            vertices=token.vertices,
            edges=token.edges,
            version=999,
        )
        with pytest.raises(ValueError, match="version"):
            StreamCheckpoint.from_bytes(stale.to_bytes())


class TestCostSpecHandling:
    def test_object_cost_checkpoint_needs_explicit_cost(self):
        session = Session()
        g = cycle_graph(6)
        stream = session.stream(g, FillInCost())
        next(stream)
        token = stream.checkpoint()
        stream.close()
        with pytest.raises(ValueError, match="pass cost="):
            session.resume_stream(token)
        uninterrupted = signature(session.stream(g, FillInCost()))
        tail = list(session.resume_stream(token, cost=FillInCost()))
        assert signature(tail) == uninterrupted[1:]

    def test_cost_spec_mismatch_rejected(self):
        session = Session()
        stream = session.stream(cycle_graph(6), "fill")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        with pytest.raises(ValueError, match="resume requested"):
            session.resume_stream(token, cost="width")

    def test_width_bound_survives_the_token(self):
        session = Session()
        g = cycle_graph(6)
        uninterrupted = signature(session.stream(g, "fill", width_bound=2))
        stream = session.stream(g, "fill", width_bound=2)
        head = [next(stream) for _ in range(3)]
        token = stream.checkpoint()
        stream.close()
        assert token.width_bound == 2
        tail = list(Session().resume_stream(token.to_bytes()))
        assert signature(head) + signature(tail) == uninterrupted


class TestExhaustedCheckpoints:
    def test_resume_after_exhaustion_is_empty(self):
        session = Session()
        g = paper_example_graph()
        stream = session.stream(g, "width")
        results = list(stream)
        token = stream.checkpoint()
        assert token.exhausted
        response = session.resume(token)
        assert response.results == ()
        assert response.exhausted
        # Resume never touched the cache for an exhausted token.
        assert len(results) == 2

    def test_exhausted_token_preserves_rank(self):
        session = Session()
        stream = session.stream(paper_example_graph(), "width")
        list(stream)
        token = stream.checkpoint()
        assert token.next_rank == 2


class TestLegacyEquivalence:
    def test_wrappers_match_session_streams(self):
        """The deprecated free functions are views over the session API."""
        from repro.core.ranked import ranked_triangulations, top_k_triangulations

        session = Session()
        for g in connected_random_graphs(7, 0.45, 2, seed_base=7300):
            via_session = signature(session.stream(g, "width"))
            via_legacy = signature(ranked_triangulations(g, WidthCost()))
            assert via_legacy == via_session
            top = top_k_triangulations(g, WidthCost(), 3)
            assert [frozenset(t.bags) for t in top] == [
                s[2] for s in via_session[:3]
            ]
