"""Gateway endpoints, typed-handler validation, and failure paths.

Each test drives a real :class:`~repro.gateway.GatewayThread` over the
blocking :class:`~repro.gateway.GatewayClient` — the exact deployment
shape of ``repro serve --http``.
"""

from __future__ import annotations

import base64
import itertools
import os
import signal
import time

import pytest

from repro.api import Session
from repro.gateway import GatewayClient, GatewayError, GatewayThread
from repro.graphs.generators import (
    connected_erdos_renyi,
    paper_example_graph,
)
from repro.service.protocol import graph_to_wire, serialize_answers


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("gateway-cache")
    with GatewayThread(
        max_workers=2, slice_answers=2, cache_dir=str(cache_dir)
    ) as handle:
        yield handle


@pytest.fixture()
def client(gateway):
    return GatewayClient(*gateway.address, timeout=60.0)


def serial_lines(graph, cost, k):
    session = Session()
    stream = session.stream(graph, cost)
    try:
        results = list(itertools.islice(stream, k))
    finally:
        stream.close()
    return serialize_answers(results)


def wait_for_idle(gateway, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if gateway.scheduler_stats()["active"] == 0:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"scheduler still busy after {timeout}s: {gateway.scheduler_stats()}"
    )


class TestObservabilityEndpoints:
    def test_health_reports_backend_and_probe(self, client):
        response = client.health()
        assert response.status == 200
        payload = response.json()
        assert payload["healthy"] is True
        assert payload["backend"] == "inprocess"

    def test_status_exposes_scheduler_counters(self, client):
        payload = client.get_json("/v1/status")
        assert {
            "admitted", "completed", "active", "jobs_by_op",
            "queue_depth", "slots_total", "slots_free", "slice_seconds",
        } <= set(payload)

    def test_metrics_page_has_the_core_series(self, client):
        graph = paper_example_graph()
        client.submit(
            {"op": "top", "graph": graph_to_wire(graph), "cost": "fill",
             "k": 3}
        ).collect()
        page = client.metrics()
        assert "# TYPE repro_jobs_admitted_total counter" in page
        assert 'repro_jobs_by_kind_total{op="top"}' in page
        assert "repro_queue_depth " in page
        assert 'repro_slice_seconds_bucket{le="+Inf"}' in page
        assert "repro_slice_seconds_count " in page
        assert "repro_disk_cache_enabled 1" in page
        assert "repro_disk_cache_hits_total" in page
        assert "repro_disk_cache_misses_total" in page

    def test_metrics_expose_answers_cache_counters(self, client):
        """The answers artifact kind reports per-kind disk counters and
        the scheduler's zero-dispatch serve counter on ``/metrics``."""
        graph = connected_erdos_renyi(10, 0.35, seed=7)
        body = {"op": "top", "graph": graph_to_wire(graph), "cost": "fill",
                "k": 3}
        first = client.submit(body).collect()
        second = client.submit(body).collect()
        # The repeat was served from the stored prefix, byte-identically.
        assert second.answer_lines == first.answer_lines
        assert second.terminal["engine"] == "cache"
        page = client.metrics()
        assert 'repro_disk_cache_stores_total{kind="answers"}' in page
        for line in page.splitlines():
            if line.startswith('repro_disk_cache_hits_total{kind="answers"}'):
                assert int(float(line.split()[-1])) >= 1
                break
        else:
            raise AssertionError("no answers hit series on /metrics")
        for line in page.splitlines():
            if line.startswith("repro_answers_served_total"):
                assert int(float(line.split()[-1])) >= 1
                break
        else:
            raise AssertionError("no answers_served series on /metrics")

    def test_routing_refusals(self, client):
        assert client.request("GET", "/nope").status == 404
        assert client.request("DELETE", "/metrics").status == 405
        assert client.request("GET", "/v1/jobs/999999").status == 404
        assert client.request("POST", "/v1/jobs/999999/cancel").status == 404


class TestSubmission:
    def test_ndjson_stream_matches_serial_bytes(self, client):
        graph = connected_erdos_renyi(10, 0.35, seed=0)
        stream = client.submit(
            {"op": "top", "graph": graph_to_wire(graph), "cost": "fill",
             "k": 5}
        ).collect()
        assert stream.status == 200
        assert stream.headers["content-type"] == "application/x-ndjson"
        assert stream.answer_lines == serial_lines(graph, "fill", 5)
        assert stream.terminal["type"] == "stats"

    def test_sse_stream_matches_serial_bytes(self, client):
        graph = connected_erdos_renyi(10, 0.35, seed=0)
        stream = client.submit(
            {"op": "top", "graph": graph_to_wire(graph), "cost": "fill",
             "k": 5},
            sse=True,
        ).collect()
        assert stream.status == 200
        assert stream.headers["content-type"] == "text/event-stream"
        assert stream.answer_lines == serial_lines(graph, "fill", 5)

    def test_resume_token_round_trips_over_http(self, client):
        graph = connected_erdos_renyi(10, 0.35, seed=2)
        first = client.submit(
            {"op": "top", "graph": graph_to_wire(graph), "cost": "fill",
             "k": 4}
        ).collect()
        token = first.terminal["checkpoint"]
        assert token
        rest = client.submit(
            {"op": "top", "token": token, "k": 4}
        ).collect()
        got = first.answer_lines + rest.answer_lines
        assert got == serial_lines(graph, "fill", 8)

    def test_stats_op_streams_service_stats(self, client):
        stream = client.submit({"op": "stats"}).collect()
        assert stream.terminal["type"] == "service-stats"
        assert stream.terminal["backend"] == "inprocess"


class TestValidationFailures:
    def test_malformed_json_body_is_400(self, client, gateway):
        from repro.gateway.client import _Connection

        conn = _Connection(*gateway.address, 30.0)
        try:
            conn.send_request(
                "POST", "/v1/jobs", b'{"op": "top", "k": ',
                {"Content-Type": "application/json"},
            )
            status, headers = conn.read_head()
            body = conn.read_body(headers)
        finally:
            conn.close()
        assert status == 400
        assert b"not JSON" in body

    def test_unknown_op_is_400(self, client):
        with pytest.raises(GatewayError) as excinfo:
            client.submit({"op": "frobnicate"})
        assert excinfo.value.status == 400
        assert "unknown op" in str(excinfo.value)

    def test_unknown_field_is_400_and_names_the_field(self, client):
        graph = graph_to_wire(paper_example_graph())
        with pytest.raises(GatewayError) as excinfo:
            client.submit({"op": "top", "graph": graph, "k": 3, "frob": 1})
        assert excinfo.value.status == 400
        assert "frob" in str(excinfo.value)

    def test_missing_required_field_is_400(self, client):
        graph = graph_to_wire(paper_example_graph())
        with pytest.raises(GatewayError) as excinfo:
            client.submit({"op": "top", "graph": graph})
        assert excinfo.value.status == 400
        assert "requires field(s) k" in str(excinfo.value)

    def test_unknown_kernel_is_400(self, client):
        graph = graph_to_wire(paper_example_graph())
        with pytest.raises(GatewayError) as excinfo:
            client.submit(
                {"op": "top", "graph": graph, "k": 3, "kernel": "quantum"}
            )
        assert excinfo.value.status == 400
        assert "kernel" in str(excinfo.value)

    def test_unknown_cost_maps_the_inband_error_to_400(self, client):
        # Semantic failures surface at job start, after the stream
        # opened: the deferred status line turns the first in-band
        # error frame into the HTTP status.
        graph = graph_to_wire(paper_example_graph())
        stream = client.submit(
            {"op": "top", "graph": graph, "cost": "no-such-cost", "k": 3}
        ).collect()
        assert stream.status == 400
        assert stream.terminal["type"] == "error"
        assert stream.terminal["code"] == "bad-request"
        assert "unknown cost" in stream.terminal["message"]

    def test_foreign_token_is_401_token_key_mismatch(self, client):
        forged = base64.b64encode(b"\x5a" * 96).decode("ascii")
        stream = client.submit({"op": "enumerate", "token": forged}).collect()
        assert stream.status == 401
        assert stream.terminal["code"] == "token_key_mismatch"

    def test_truncated_token_stays_400(self, client):
        stub = base64.b64encode(b"abc").decode("ascii")
        stream = client.submit({"op": "enumerate", "token": stub}).collect()
        assert stream.status == 400
        assert stream.terminal["code"] == "bad-request"


class TestJobRegistryAndCancel:
    def test_live_job_listed_cancelled_and_token_replayable(
        self, client, gateway
    ):
        graph = connected_erdos_renyi(12, 0.3, seed=6)
        stream = client.submit(
            {"op": "enumerate", "graph": graph_to_wire(graph),
             "cost": "fill", "k": 100_000},
            sse=True,
        )
        events = iter(stream)
        event, _line = next(events)
        assert event == "answer"

        jobs = client.get_json("/v1/jobs")["jobs"]
        assert len(jobs) == 1
        job_id = jobs[0]["id"]
        assert jobs[0]["op"] == "enumerate"
        assert client.get_json(f"/v1/jobs/{job_id}")["id"] == job_id

        response = client.cancel(job_id)
        assert response.status == 202
        for event, _line in events:
            pass
        assert stream.terminal["type"] == "cancelled"
        token = stream.terminal["checkpoint"]
        assert token
        stream.close()
        wait_for_idle(gateway)
        assert client.get_json("/v1/jobs")["jobs"] == []

        # The cancel token resumes the exact sequence over HTTP.
        emitted = len(stream.answer_lines)
        rest = client.submit(
            {"op": "enumerate", "token": token, "k": 3}
        ).collect()
        expected = serial_lines(graph, "fill", emitted + 3)
        assert stream.answer_lines + rest.answer_lines == expected

    def test_mid_sse_disconnect_releases_the_slot_and_replays(
        self, client, gateway
    ):
        graph = connected_erdos_renyi(12, 0.3, seed=6)
        first = client.submit(
            {"op": "top", "graph": graph_to_wire(graph), "cost": "fill",
             "k": 4}
        ).collect()
        token = first.terminal["checkpoint"]

        # Resume over SSE, then vanish mid-stream without a cancel.
        resumed = client.submit(
            {"op": "enumerate", "token": token, "k": 100_000}, sse=True
        )
        events = iter(resumed)
        event, _line = next(events)
        assert event == "answer"
        resumed.abort()

        # The EOF watcher cancels the job: the slot frees up without
        # any client-side handshake.
        wait_for_idle(gateway)

        # The token the client still holds replays the continuation —
        # a dropped connection costs nothing but the re-request.
        replay = client.submit(
            {"op": "enumerate", "token": token, "k": 4}
        ).collect()
        assert replay.status == 200
        assert (
            first.answer_lines + replay.answer_lines
            == serial_lines(graph, "fill", 8)
        )


@pytest.mark.skipif(
    "process" not in os.environ.get(
        "REPRO_SERVICE_BACKENDS", "inprocess,process"
    ),
    reason="process backend excluded by REPRO_SERVICE_BACKENDS",
)
class TestAnswersCacheMetricsProcessBackend:
    def test_answers_counters_over_worker_pool(self, tmp_path):
        """Worker-side write-back feeds the same per-kind counters the
        gateway exposes; the repeat serve never reaches a worker."""
        with GatewayThread(
            backend="process", worker_processes=2, max_workers=2,
            cache_dir=str(tmp_path / "cache"),
        ) as handle:
            client = GatewayClient(*handle.address, timeout=120.0)
            graph = connected_erdos_renyi(10, 0.35, seed=7)
            body = {"op": "top", "graph": graph_to_wire(graph),
                    "cost": "fill", "k": 3}
            first = client.submit(body).collect()
            second = client.submit(body).collect()
            assert second.answer_lines == first.answer_lines
            assert second.terminal["engine"] == "cache"
            page = client.metrics()
        assert 'repro_disk_cache_stores_total{kind="answers"}' in page
        assert 'repro_disk_cache_hits_total{kind="answers"}' in page
        for line in page.splitlines():
            if line.startswith("repro_answers_served_total"):
                assert int(float(line.split()[-1])) >= 1
                break
        else:
            raise AssertionError("no answers_served series on /metrics")


@pytest.mark.skipif(
    "process" not in os.environ.get(
        "REPRO_SERVICE_BACKENDS", "inprocess,process"
    ),
    reason="process backend excluded by REPRO_SERVICE_BACKENDS",
)
class TestMetricsUnderWorkerCrash:
    def test_metrics_stay_live_and_count_the_respawn(self):
        with GatewayThread(
            backend="process", worker_processes=2, max_workers=2,
            slice_answers=2,
        ) as handle:
            client = GatewayClient(*handle.address, timeout=120.0)
            stats = client.submit({"op": "stats"}).collect()
            pids = [row["pid"] for row in stats.terminal["workers"]]
            assert len(pids) == 2

            graph = connected_erdos_renyi(12, 0.3, seed=6)
            stream = client.submit(
                {"op": "enumerate", "graph": graph_to_wire(graph),
                 "cost": "fill", "k": 40},
                sse=True,
            )
            events = iter(stream)
            next(events)  # the job is placed on a worker seat
            # Kill both original seats: whichever one holds the job,
            # its next slice hits a broken pipe and redispatches.
            for pid in pids:
                os.kill(pid, signal.SIGKILL)

            # /metrics keeps answering while the pool respawns: the
            # service-stats round trip inside the handler must tolerate
            # a dead seat, not 500.
            page = client.metrics()
            assert "repro_queue_depth " in page
            assert "repro_worker_processes 2" in page

            # The stream itself survives via crash redispatch, and the
            # redispatched answers are still byte-identical.
            for _ in events:
                pass
            assert stream.terminal["type"] == "stats"
            assert stream.answer_lines == serial_lines(graph, "fill", 40)
            stream.close()

            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                page = client.metrics()
                for line in page.splitlines():
                    if line.startswith("repro_worker_respawns_total"):
                        respawns = int(float(line.split()[-1]))
                        break
                else:
                    respawns = 0
                if respawns >= 1:
                    break
                time.sleep(0.1)
            assert respawns >= 1
