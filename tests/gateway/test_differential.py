"""Differential: gateway SSE == gateway NDJSON == TCP NDJSON == serial.

The gateway's whole framing contract is that HTTP transport never
perturbs the answer stream.  These tests run mixed workloads through
four independent paths and require byte identity:

* the serial :class:`~repro.api.Session` (``serialize_answers``),
* the TCP NDJSON service (:class:`~repro.service.ServiceClient`),
* the gateway's chunked NDJSON encoding,
* the gateway's SSE encoding.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Session
from repro.gateway import GatewayClient, GatewayThread
from repro.graphs.generators import (
    connected_erdos_renyi,
    paper_example_graph,
)
from repro.service.client import ServiceClient, ServiceRequest
from repro.service.protocol import graph_to_wire, serialize_answers

BACKENDS = [
    name.strip()
    for name in os.environ.get(
        "REPRO_SERVICE_BACKENDS", "inprocess,process"
    ).split(",")
    if name.strip()
]

WORKLOADS = [
    {"op": "top", "graph": connected_erdos_renyi(9, 0.4, seed=1),
     "cost": "fill", "k": 5},
    {"op": "top", "graph": connected_erdos_renyi(10, 0.35, seed=2),
     "cost": "width", "k": 4},
    {"op": "enumerate", "graph": paper_example_graph(),
     "cost": "fill", "k": 6},
    {"op": "top", "graph": connected_erdos_renyi(11, 0.3, seed=3),
     "cost": "fill", "k": 3, "kernel": "sets"},
]


def serial_reference(spec):
    session = Session(kernel=spec.get("kernel", "bitset"))
    stream = session.stream(spec["graph"], spec["cost"])
    try:
        results = list(itertools.islice(stream, spec["k"]))
    finally:
        stream.close()
    return serialize_answers(results)


def tcp_lines(address, spec):
    client = ServiceClient(*address, timeout=120.0)
    options = {"kernel": spec["kernel"]} if "kernel" in spec else {}
    request = ServiceRequest(
        op=spec["op"], graph=spec["graph"], cost=spec["cost"],
        k=spec["k"], **options,
    )
    return list(client.collect(request).answer_lines)


def gateway_lines(address, spec, *, sse):
    body = {
        "op": spec["op"], "graph": graph_to_wire(spec["graph"]),
        "cost": spec["cost"], "k": spec["k"],
    }
    if "kernel" in spec:
        body["kernel"] = spec["kernel"]
    client = GatewayClient(*address, timeout=120.0)
    stream = client.submit(body, sse=sse).collect()
    assert stream.status == 200
    return stream.answer_lines


@pytest.mark.parametrize("backend", BACKENDS)
class TestTransportByteIdentity:
    def test_mixed_concurrent_batch_is_identical_on_every_path(
        self, backend, tmp_path
    ):
        kwargs = {"backend": backend, "max_workers": 2, "slice_answers": 2}
        if backend == "process":
            kwargs["worker_processes"] = 2
        with GatewayThread(tcp=True, **kwargs) as handle:
            def one(spec):
                return {
                    "serial": serial_reference(spec),
                    "tcp": tcp_lines(handle.tcp_address, spec),
                    "ndjson": gateway_lines(
                        handle.address, spec, sse=False
                    ),
                    "sse": gateway_lines(handle.address, spec, sse=True),
                }

            # All workloads in flight at once across both servers, so
            # slices interleave across the shared scheduler.
            with ThreadPoolExecutor(max_workers=len(WORKLOADS)) as pool:
                outcomes = list(pool.map(one, WORKLOADS))

        for spec, outcome in zip(WORKLOADS, outcomes):
            label = f"{spec['op']}/{spec['cost']}/k={spec['k']}"
            assert outcome["tcp"] == outcome["serial"], label
            assert outcome["ndjson"] == outcome["serial"], label
            assert outcome["sse"] == outcome["serial"], label

    def test_http_resume_of_a_tcp_checkpoint(self, backend, tmp_path):
        # Tokens are transport-independent: a checkpoint minted over
        # TCP resumes over HTTP and vice versa, byte-for-byte.
        import base64

        kwargs = {"backend": backend, "max_workers": 2, "slice_answers": 2}
        if backend == "process":
            kwargs["worker_processes"] = 2
        graph = connected_erdos_renyi(10, 0.35, seed=2)
        with GatewayThread(tcp=True, **kwargs) as handle:
            client = ServiceClient(*handle.tcp_address, timeout=120.0)
            request = ServiceRequest(
                op="top", graph=graph, cost="fill", k=4
            )
            result = client.collect(request)
            head = list(result.answer_lines)
            token = result.checkpoint
            assert token is not None

            http = GatewayClient(*handle.address, timeout=120.0)
            rest = http.submit({
                "op": "top",
                "token": base64.b64encode(token).decode("ascii"),
                "k": 4,
            }).collect()
            assert rest.status == 200

            spec = {"op": "top", "graph": graph, "cost": "fill", "k": 8}
            assert head + rest.answer_lines == serial_reference(spec)
