"""Tests for the cost registry."""

import pytest

from repro.costs.classic import WidthCost
from repro.costs.registry import available_costs, make_cost, register_cost
from repro.graphs.generators import cycle_graph


class TestRegistry:
    def test_builtins_present(self):
        names = available_costs()
        for expected in ("width", "fill", "lex-width-fill", "sum-exp-bags"):
            assert expected in names

    def test_make_width(self):
        g = cycle_graph(5)
        cost = make_cost("width", g)
        assert cost.evaluate(g, [frozenset({0, 1, 2})]) == 2

    def test_make_lex_uses_graph(self):
        g = cycle_graph(5)
        cost = make_cost("lex-width-fill", g)
        assert cost.evaluate(g, [frozenset({0, 1})]) == 5.0  # |E|*1 + 0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_cost("nope", cycle_graph(4))

    def test_register_custom(self):
        register_cost("test-width-clone", lambda g: WidthCost())
        try:
            g = cycle_graph(4)
            assert make_cost("test-width-clone", g).evaluate(g, [frozenset({0, 1})]) == 1
        finally:
            from repro.costs import registry

            registry._FACTORIES.pop("test-width-clone", None)
