"""Tests for the cost registry."""

import pytest

from repro.costs.classic import FillInCost, WidthCost
from repro.costs.registry import (
    available_costs,
    make_cost,
    register_cost,
    resolve_cost,
)
from repro.graphs.generators import cycle_graph


class TestRegistry:
    def test_builtins_present(self):
        names = available_costs()
        for expected in ("width", "fill", "lex-width-fill", "sum-exp-bags"):
            assert expected in names

    def test_make_width(self):
        g = cycle_graph(5)
        cost = make_cost("width", g)
        assert cost.evaluate(g, [frozenset({0, 1, 2})]) == 2

    def test_make_lex_uses_graph(self):
        g = cycle_graph(5)
        cost = make_cost("lex-width-fill", g)
        assert cost.evaluate(g, [frozenset({0, 1})]) == 5.0  # |E|*1 + 0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_cost("nope", cycle_graph(4))

    def test_register_custom(self):
        register_cost("test-width-clone", lambda g: WidthCost())
        try:
            g = cycle_graph(4)
            assert make_cost("test-width-clone", g).evaluate(g, [frozenset({0, 1})]) == 1
        finally:
            from repro.costs import registry

            registry._FACTORIES.pop("test-width-clone", None)


class TestResolveCost:
    """resolve_cost is the single string→BagCost choke point (CLI, bench,
    session API all route through it)."""

    def test_name_resolves_via_registry(self):
        g = cycle_graph(5)
        cost = resolve_cost("width", g)
        assert cost.evaluate(g, [frozenset({0, 1, 2})]) == 2

    def test_instance_passes_through(self):
        g = cycle_graph(5)
        cost = FillInCost()
        assert resolve_cost(cost, g) is cost

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown cost"):
            resolve_cost("nope", cycle_graph(4))

    def test_non_cost_raises_typeerror(self):
        with pytest.raises(TypeError, match="cost spec"):
            resolve_cost(42, cycle_graph(4))

    def test_registered_names_reach_every_surface(self):
        register_cost("test-resolve-clone", lambda g: WidthCost())
        try:
            g = cycle_graph(4)
            from repro.api import Session

            response = Session().top(g, "test-resolve-clone", k=1)
            assert response.results[0].cost == 2.0
        finally:
            from repro.costs import registry

            registry._FACTORIES.pop("test-resolve-clone", None)
