"""Tests for hypertree-width and fractional-hypertree-width bag costs."""

import pytest

from repro.costs.hypergraph import (
    FractionalHypertreeWidthCost,
    Hypergraph,
    HypertreeWidthCost,
    fractional_cover_weight,
    minimum_edge_cover_size,
)


def triangle_query() -> Hypergraph:
    """R(a,b) ⋈ S(b,c) ⋈ T(c,a) — the classic fhw = 3/2 example."""
    return Hypergraph([("a", "b"), ("b", "c"), ("c", "a")])


class TestHypergraph:
    def test_primal_graph(self):
        h = Hypergraph([(1, 2, 3), (3, 4)])
        g = h.primal_graph()
        assert g.has_edge(1, 2) and g.has_edge(2, 3) and g.has_edge(3, 4)
        assert not g.has_edge(1, 4)

    def test_rejects_empty_edge(self):
        with pytest.raises(ValueError):
            Hypergraph([()])

    def test_covering_edges(self):
        h = Hypergraph([(1, 2), (2, 3)])
        assert len(h.covering_edges(2)) == 2
        assert len(h.covering_edges(1)) == 1


class TestIntegralCover:
    def test_single_edge_suffices(self):
        h = Hypergraph([(1, 2, 3), (3, 4)])
        assert minimum_edge_cover_size(h, frozenset({1, 2})) == 1

    def test_triangle_needs_two(self):
        h = triangle_query()
        assert minimum_edge_cover_size(h, frozenset({"a", "b", "c"})) == 2

    def test_uncoverable(self):
        h = Hypergraph([(1, 2)])
        with pytest.raises(ValueError):
            minimum_edge_cover_size(h, frozenset({3}))

    def test_chain(self):
        h = Hypergraph([(1, 2), (2, 3), (3, 4), (4, 5)])
        assert minimum_edge_cover_size(h, frozenset({1, 3, 5})) == 3
        assert minimum_edge_cover_size(h, frozenset({2, 3})) == 1

    def test_greedy_trap(self):
        # Greedy would take the big edge {1,2,3,4} then need two more;
        # the optimum is two edges {1,2,3} ∪ {4,5,6} — wait, build a real
        # trap: universe {1..6}, edges {3,4}, {1,2,3}, {4,5,6}.
        h = Hypergraph([(3, 4), (1, 2, 3), (4, 5, 6)])
        assert minimum_edge_cover_size(h, frozenset(range(1, 7))) == 2


class TestFractionalCover:
    def test_triangle_is_three_halves(self):
        h = triangle_query()
        assert fractional_cover_weight(
            h, frozenset({"a", "b", "c"})
        ) == pytest.approx(1.5)

    def test_single_edge(self):
        h = Hypergraph([(1, 2)])
        assert fractional_cover_weight(h, frozenset({1, 2})) == pytest.approx(1.0)

    def test_never_exceeds_integral(self):
        h = Hypergraph([(1, 2), (2, 3), (3, 1), (1, 4), (4, 5)])
        for bag in [frozenset({1, 2, 3}), frozenset({1, 4, 5}), frozenset({2, 3, 4})]:
            frac = fractional_cover_weight(h, bag)
            integral = minimum_edge_cover_size(h, bag)
            assert frac <= integral + 1e-9


class TestWidthCosts:
    def test_hypertree_width_cost(self):
        h = triangle_query()
        g = h.primal_graph()
        cost = HypertreeWidthCost(h)
        # one bag with the whole triangle: ghw candidate value 2
        assert cost.evaluate(g, [frozenset({"a", "b", "c"})]) == 2.0

    def test_fractional_cost(self):
        h = triangle_query()
        g = h.primal_graph()
        cost = FractionalHypertreeWidthCost(h)
        assert cost.evaluate(g, [frozenset({"a", "b", "c"})]) == pytest.approx(1.5)

    def test_caching_consistency(self):
        h = triangle_query()
        g = h.primal_graph()
        cost = HypertreeWidthCost(h)
        bag = frozenset({"a", "b"})
        assert cost.evaluate(g, [bag]) == cost.evaluate(g, [bag]) == 1.0

    def test_empty_bags(self):
        h = triangle_query()
        assert HypertreeWidthCost(h).evaluate(h.primal_graph(), []) == 0.0
