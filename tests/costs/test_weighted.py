"""Tests for the Furuse–Yamazaki weighted width/fill costs."""

import math

import pytest

from repro.costs.weighted import (
    WeightedFillCost,
    WeightedWidthCost,
    vertex_weight_bag_cost,
)
from repro.graphs.generators import cycle_graph, paper_example_graph


class TestBagWeightBuilders:
    def test_sum(self):
        w = vertex_weight_bag_cost({1: 2.0, 2: 3.0, 3: 5.0}, mode="sum")
        assert w(frozenset({1, 3})) == 7.0

    def test_product(self):
        w = vertex_weight_bag_cost({1: 2.0, 2: 3.0}, mode="product")
        assert w(frozenset({1, 2})) == 6.0

    def test_log_product(self):
        w = vertex_weight_bag_cost({1: 2.0, 2: 4.0}, mode="log-product")
        assert w(frozenset({1, 2})) == pytest.approx(math.log(8.0))

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            vertex_weight_bag_cost({}, mode="median")


class TestWeightedWidth:
    def test_reduces_to_width(self):
        g = cycle_graph(5)
        cost = WeightedWidthCost(lambda b: len(b) - 1)
        assert cost.evaluate(g, [frozenset({0, 1, 2}), frozenset({0, 2})]) == 2

    def test_domain_weights_change_the_optimum(self):
        # Same cardinality bags; the weighted cost distinguishes them.
        g = paper_example_graph()
        weights = {"u": 10.0, "v": 1.0, "v'": 1.0, "w1": 1.0, "w2": 1.0, "w3": 1.0}
        cost = WeightedWidthCost(vertex_weight_bag_cost(weights, mode="sum"))
        with_u = [frozenset({"u", "w1", "w2"})]
        without_u = [frozenset({"v", "w1", "w2"})]
        assert cost.evaluate(g, with_u) > cost.evaluate(g, without_u)

    def test_empty_bags(self):
        assert WeightedWidthCost(len).evaluate(cycle_graph(4), []) == 0.0


class TestWeightedFill:
    def test_uniform_weights_match_fill(self):
        from repro.costs.classic import FillInCost

        g = cycle_graph(6)
        bags = [frozenset({0, 1, 2, 3}), frozenset({0, 3, 4, 5})]
        uniform = WeightedFillCost(lambda u, v: 1.0)
        assert uniform.evaluate(g, bags) == FillInCost().evaluate(g, bags)

    def test_weighted_edges(self):
        g = cycle_graph(4)
        # fill edges {0,2} and {1,3} with different prices
        def price(u, v):
            return 10.0 if frozenset((u, v)) == frozenset({0, 2}) else 1.0

        cost = WeightedFillCost(price)
        assert cost.evaluate(g, [frozenset({0, 1, 2})]) == 10.0
        assert cost.evaluate(g, [frozenset({1, 2, 3})]) == 1.0

    def test_duplicate_bags_count_once(self):
        g = cycle_graph(4)
        bags = [frozenset({0, 1, 2}), frozenset({0, 1, 2})]
        assert WeightedFillCost(lambda u, v: 1.0).evaluate(g, bags) == 1.0
