"""Tests for the κ[I,X] constraint compilation (Section 6.1)."""

import math

import pytest

from repro.costs.classic import FillInCost, WidthCost
from repro.costs.constrained import (
    ConstrainedCost,
    is_clique_after_saturation,
    satisfies_constraints,
)
from repro.graphs.generators import cycle_graph, paper_example_graph


class TestCliqueAfterSaturation:
    def test_graph_edges_count(self):
        g = cycle_graph(4)
        assert is_clique_after_saturation(g, [], frozenset({0, 1}))

    def test_bag_covers_missing_pair(self):
        g = cycle_graph(4)
        assert is_clique_after_saturation(g, [frozenset({0, 1, 2})], frozenset({0, 2}))
        assert not is_clique_after_saturation(g, [frozenset({0, 1, 2})], frozenset({1, 3}))

    def test_cross_bag_pairs(self):
        g = cycle_graph(6)
        bags = [frozenset({0, 2}), frozenset({2, 4})]
        # pair (0,4) is in no single bag and not an edge
        assert not is_clique_after_saturation(g, bags, frozenset({0, 2, 4}))

    def test_small_candidates(self):
        g = cycle_graph(4)
        assert is_clique_after_saturation(g, [], frozenset({0}))
        assert is_clique_after_saturation(g, [], frozenset())


class TestSatisfies:
    def test_guarded_by_vertex_set(self, paper_graph):
        sub = paper_graph.subgraph({"u", "w1", "w2"})
        out_of_scope = frozenset({"v", "v'"})
        # Constraint mentions vertices outside the region: vacuously fine.
        assert satisfies_constraints(sub, [], include=[out_of_scope], exclude=[])
        assert satisfies_constraints(sub, [], include=[], exclude=[out_of_scope])

    def test_include_and_exclude(self):
        g = cycle_graph(4)
        bags = [frozenset({0, 1, 2}), frozenset({0, 2, 3})]
        chord = frozenset({0, 2})
        other = frozenset({1, 3})
        assert satisfies_constraints(g, bags, include=[chord], exclude=[other])
        assert not satisfies_constraints(g, bags, include=[other], exclude=[])
        assert not satisfies_constraints(g, bags, include=[], exclude=[chord])


class TestConstrainedCost:
    def test_feasible_equals_base(self):
        g = cycle_graph(4)
        bags = [frozenset({0, 1, 2}), frozenset({0, 2, 3})]
        base = FillInCost()
        cost = ConstrainedCost(base, include=[frozenset({0, 2})])
        assert cost.evaluate(g, bags) == base.evaluate(g, bags)

    def test_violation_is_infinite(self):
        g = cycle_graph(4)
        bags = [frozenset({0, 1, 2}), frozenset({0, 2, 3})]
        cost = ConstrainedCost(FillInCost(), exclude=[frozenset({0, 2})])
        assert math.isinf(cost.evaluate(g, bags))

    def test_include_exclude_overlap_rejected(self):
        with pytest.raises(ValueError):
            ConstrainedCost(WidthCost(), include=[frozenset({1})], exclude=[frozenset({1})])

    def test_name_mentions_constraints(self):
        cost = ConstrainedCost(WidthCost(), include=[frozenset({1, 2})])
        assert "I=1" in cost.name and "X=0" in cost.name

    def test_base_accessor(self):
        base = WidthCost()
        assert ConstrainedCost(base).base is base

    def test_region_guard_with_ranked_semantics(self, paper_graph):
        """On a sub-block the out-of-region constraints must not fire."""
        sub = paper_graph.subgraph({"v", "v'"})
        cost = ConstrainedCost(
            WidthCost(),
            include=[frozenset({"w1", "w2", "w3"})],
            exclude=[frozenset({"u", "v"})],
        )
        bags = [frozenset({"v", "v'"})]
        assert cost.evaluate(sub, bags) == WidthCost().evaluate(sub, bags)
