"""Tests for the classic bag costs: width, fill-in, lex, sum-exp."""

import pytest

from repro.costs.classic import (
    FillInCost,
    LexWidthFillCost,
    SumExpBagCost,
    WidthCost,
    count_fill_edges,
)
from repro.graphs.chordal import maximal_cliques_chordal
from repro.graphs.generators import cycle_graph, erdos_renyi, paper_example_graph
from repro.triangulation.lb_triang import lb_triang


class TestWidth:
    def test_basic(self):
        g = cycle_graph(4)
        assert WidthCost().evaluate(g, [frozenset({0, 1, 2}), frozenset({0, 2, 3})]) == 2

    def test_empty(self):
        assert WidthCost().evaluate(cycle_graph(4), []) == -1

    def test_of_triangulation(self):
        g = cycle_graph(6)
        h = lb_triang(g)
        assert WidthCost().of_triangulation(g, h) == 2


class TestFillIn:
    def test_counts_distinct_pairs(self):
        g = cycle_graph(4)
        bags = [frozenset({0, 1, 2}), frozenset({0, 2, 3})]
        # the single chord {0,2} appears in both bags but counts once
        assert FillInCost().evaluate(g, bags) == 1

    def test_no_fill_for_cliques(self):
        g = paper_example_graph()
        bags = [frozenset({"u", "w1"}), frozenset({"v", "v'"})]
        assert FillInCost().evaluate(g, bags) == 0

    def test_matches_edge_difference(self):
        for seed in range(10):
            g = erdos_renyi(9, 0.35, seed=seed)
            h = lb_triang(g)
            bags = maximal_cliques_chordal(h)
            assert FillInCost().evaluate(g, bags) == h.num_edges() - g.num_edges()

    def test_count_fill_edges_direct(self):
        g = cycle_graph(5)
        assert count_fill_edges(g, [frozenset({0, 1, 2, 3})]) == 3  # 02, 03, 13


class TestLexWidthFill:
    def test_orders_width_before_fill(self):
        g = paper_example_graph()
        cost = LexWidthFillCost(g)
        # H1 bags: width 3, fill 3.  H2 bags: width 2, fill 1.
        h1_bags = [
            frozenset({"u", "w1", "w2", "w3"}),
            frozenset({"v", "w1", "w2", "w3"}),
            frozenset({"v", "v'"}),
        ]
        h2_bags = [
            frozenset({"u", "v", "w1"}),
            frozenset({"u", "v", "w2"}),
            frozenset({"u", "v", "w3"}),
            frozenset({"v", "v'"}),
        ]
        assert cost.evaluate(g, h2_bags) < cost.evaluate(g, h1_bags)
        # |E| * width + fill exactly:
        assert cost.evaluate(g, h2_bags) == 7 * 2 + 1
        assert cost.evaluate(g, h1_bags) == 7 * 3 + 3

    def test_explicit_scale(self):
        g = cycle_graph(4)
        cost = LexWidthFillCost(g, scale=1000)
        assert cost.evaluate(g, [frozenset({0, 1, 2}), frozenset({0, 2, 3})]) == 2001

    def test_edgeless_fallback(self):
        from repro.graphs.graph import Graph

        g = Graph(vertices=[1, 2])
        cost = LexWidthFillCost(g)
        assert cost.evaluate(g, [frozenset({1}), frozenset({2})]) >= 0


class TestSumExp:
    def test_value(self):
        g = cycle_graph(4)
        bags = [frozenset({0, 1, 2}), frozenset({0, 2, 3})]
        assert SumExpBagCost(2.0).evaluate(g, bags) == 16.0

    def test_base_validation(self):
        with pytest.raises(ValueError):
            SumExpBagCost(1.0)

    def test_prefers_balanced_bags(self):
        g = cycle_graph(6)
        big = [frozenset(range(5))]
        small = [frozenset({0, 1, 2}), frozenset({2, 3, 4}), frozenset({4, 5, 0})]
        cost = SumExpBagCost(2.0)
        assert cost.evaluate(g, small) < cost.evaluate(g, big)
