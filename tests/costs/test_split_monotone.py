"""Empirical probes of the split-monotonicity contract (Definition 3.2).

Split monotonicity cannot be verified exhaustively; these tests sample the
definition's scenario: two tree decompositions of the same graph that split
at a common separator into the same two subgraphs, where one side is
replaced by an alternative.  For all bundled costs, a cheaper-or-equal
replacement must never increase the total cost.

The sampling uses minimal triangulations of a common graph that share a
minimal separator S: both decompose into the same two S-sides, so their
clique trees split as ⟨G1, ·, G2, ·⟩ with identical G1, G2.
"""

import itertools

import pytest

from repro.baselines.brute import minimal_triangulations_via_mis
from repro.costs.classic import FillInCost, LexWidthFillCost, SumExpBagCost, WidthCost
from repro.costs.constrained import ConstrainedCost
from repro.costs.weighted import WeightedFillCost, WeightedWidthCost
from repro.graphs.chordal import maximal_cliques_chordal
from repro.graphs.generators import erdos_renyi
from repro.triangulation.saturate import minimal_separators_of_triangulation


def _sides(graph, triangulation, separator):
    """Split a triangulation's bags along a separator it contains.

    Returns (bags_side_a, bags_side_b, vertices_a, vertices_b) or None.
    """
    comps = graph.components_without(separator)
    if len(comps) != 2:
        return None
    a, b = comps
    bags = maximal_cliques_chordal(triangulation)
    side_a = {bag for bag in bags if bag & a}
    side_b = {bag for bag in bags if bag & b}
    if side_a | side_b != bags or (side_a & side_b):
        return None
    return side_a, side_b, frozenset(a) | separator, frozenset(b) | separator


def _cost_instances(graph):
    return [
        WidthCost(),
        FillInCost(),
        LexWidthFillCost(graph),
        SumExpBagCost(2.0),
        WeightedWidthCost(lambda bag: float(len(bag))),
        WeightedFillCost(lambda u, v: 1.0),
        ConstrainedCost(FillInCost()),
    ]


@pytest.mark.parametrize("seed", range(8))
def test_split_monotone_on_shared_separator_splits(seed):
    graph = erdos_renyi(8, 0.35, seed=seed)
    if not graph.is_connected():
        pytest.skip("disconnected sample")
    triangulations = minimal_triangulations_via_mis(graph)
    if len(triangulations) < 2:
        pytest.skip("not enough triangulations")
    costs = _cost_instances(graph)
    checked = 0
    for h1, h2 in itertools.combinations(triangulations, 2):
        shared = minimal_separators_of_triangulation(
            h1
        ) & minimal_separators_of_triangulation(h2)
        for s in shared:
            split1 = _sides(graph, h1, s)
            split2 = _sides(graph, h2, s)
            if split1 is None or split2 is None:
                continue
            a1, b1, va, vb = split1
            a2, b2, _, _ = split2
            ga = graph.subgraph(va)
            gb = graph.subgraph(vb)
            for cost in costs:
                # Build the "mix": keep side A of h1, use side B of h2.
                ca1, cb1 = cost.evaluate(ga, a1), cost.evaluate(gb, b1)
                ca2, cb2 = cost.evaluate(ga, a2), cost.evaluate(gb, b2)
                whole1 = cost.evaluate(graph, a1 | b1)
                whole2 = cost.evaluate(graph, a2 | b2)
                # Definition 3.2: sides pairwise <= implies whole <=.
                if ca1 <= ca2 and cb1 <= cb2:
                    assert whole1 <= whole2, (cost.name, s)
                if ca2 <= ca1 and cb2 <= cb1:
                    assert whole2 <= whole1, (cost.name, s)
                checked += 1
    if checked == 0:
        pytest.skip("no comparable splits in this sample")


def test_declared_split_monotone():
    graph = erdos_renyi(6, 0.4, seed=1)
    for cost in _cost_instances(graph):
        assert cost.split_monotone
