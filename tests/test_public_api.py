"""Smoke tests of the top-level public API surface."""

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart(self):
        g = repro.Graph(
            edges=[
                ("u", "w1"),
                ("u", "w2"),
                ("u", "w3"),
                ("v", "w1"),
                ("v", "w2"),
                ("v", "w3"),
                ("v", "v'"),
            ]
        )
        results = list(repro.ranked_triangulations(g, repro.WidthCost()))
        assert [(r.rank, r.triangulation.width, r.triangulation.fill_in()) for r in results] == [
            (0, 2, 1),
            (1, 3, 3),
        ]
        assert repro.treewidth(g) == 2
        assert repro.minimum_fill_in(g) == 1

    def test_ghd_surface(self):
        q = repro.Hypergraph([("a", "b"), ("b", "c"), ("c", "a")])
        ghd = repro.minimum_ghd(q)
        assert ghd.width == 2
        assert ghd.is_valid()

    def test_make_cost_surface(self):
        g = repro.Graph(edges=[(0, 1), (1, 2)])
        cost = repro.make_cost("width", g)
        assert cost.evaluate(g, [frozenset({0, 1})]) == 1
