"""Tests for the generic maximal-independent-set enumeration."""

import networkx as nx

from repro.baselines.mis import maximal_independent_sets
from repro.graphs.generators import erdos_renyi


def networkx_mis(graph):
    """Ground truth: maximal cliques of the complement."""
    complement = nx.complement(graph.to_networkx())
    return {frozenset(c) for c in nx.find_cliques(complement)}


class TestMis:
    def test_empty_universe(self):
        assert list(maximal_independent_sets([], lambda a, b: False)) == [frozenset()]

    def test_no_edges_single_set(self):
        out = list(maximal_independent_sets([1, 2, 3], lambda a, b: False))
        assert out == [frozenset({1, 2, 3})]

    def test_complete_graph_singletons(self):
        out = set(maximal_independent_sets([1, 2, 3], lambda a, b: a != b))
        assert out == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_path(self):
        # path 1-2-3-4: MIS = {1,3}, {1,4}, {2,4}
        edges = {frozenset({1, 2}), frozenset({2, 3}), frozenset({3, 4})}
        out = set(
            maximal_independent_sets(
                [1, 2, 3, 4], lambda a, b: frozenset({a, b}) in edges
            )
        )
        assert out == {frozenset({1, 3}), frozenset({1, 4}), frozenset({2, 4})}

    def test_matches_networkx_random(self):
        for seed in range(15):
            g = erdos_renyi(9, 0.4, seed=seed)
            vertices = sorted(g.vertices)
            out = set(maximal_independent_sets(vertices, g.has_edge))
            assert out == networkx_mis(g), seed

    def test_no_duplicates(self):
        g = erdos_renyi(10, 0.3, seed=3)
        out = list(maximal_independent_sets(sorted(g.vertices), g.has_edge))
        assert len(out) == len(set(out))
