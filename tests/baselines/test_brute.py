"""Tests for the exhaustive enumeration oracles (and their agreement)."""

import pytest

from repro.baselines.brute import (
    minimal_triangulations_bruteforce,
    minimal_triangulations_via_mis,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_example_graph,
    path_graph,
)
from repro.triangulation.minimality import is_minimal_triangulation
from tests.conftest import connected_random_graphs, fill_key


class TestBruteforce:
    def test_chordal_graph_unique(self):
        g = path_graph(5)
        results = minimal_triangulations_bruteforce(g)
        assert len(results) == 1
        assert results[0] == g

    def test_cycle_counts(self):
        # Minimal triangulations of C_n = triangulations of a polygon
        # = Catalan(n-2):  C4 → 2, C5 → 5, C6 → 14.
        assert len(minimal_triangulations_bruteforce(cycle_graph(4))) == 2
        assert len(minimal_triangulations_bruteforce(cycle_graph(5))) == 5
        assert len(minimal_triangulations_bruteforce(cycle_graph(6))) == 14

    def test_paper_example(self, paper_graph):
        assert len(minimal_triangulations_bruteforce(paper_graph)) == 2

    def test_every_output_minimal(self):
        for g in connected_random_graphs(6, 0.4, 5, seed_base=1900):
            for h in minimal_triangulations_bruteforce(g):
                assert is_minimal_triangulation(g, h)

    def test_guard(self):
        with pytest.raises(ValueError):
            minimal_triangulations_bruteforce(erdos_renyi(12, 0.2, seed=0))


class TestMisOracle:
    def test_agrees_with_bruteforce(self):
        for g in connected_random_graphs(7, 0.4, 8, seed_base=2000):
            a = {fill_key(g, h) for h in minimal_triangulations_bruteforce(g)}
            b = {fill_key(g, h) for h in minimal_triangulations_via_mis(g)}
            assert a == b

    def test_complete_graph(self):
        results = minimal_triangulations_via_mis(complete_graph(4))
        assert len(results) == 1

    def test_catalan_on_c7(self):
        # Catalan(5) = 42; brute force over 14 non-edges is slow, the MIS
        # oracle is the fast ground truth at this size.
        assert len(minimal_triangulations_via_mis(cycle_graph(7))) == 42


class TestBitsetKernelAgainstOracle:
    """Brute-force cross-check of the bitset kernel (ISSUE 3 satellite).

    On every graph with ≤ 8 vertices in the corpus, exhaustively
    enumerate with ``kernel="bitset"`` and verify each emitted
    triangulation is chordal, inclusion-minimal (its fill set appears in
    the brute-force oracle's answer set), and cost-correct — and that
    the *complete* enumeration matches the oracle exactly.
    """

    def _corpus(self):
        corpus = [
            path_graph(4),
            cycle_graph(5),
            cycle_graph(6),
            complete_graph(4),
        ]
        corpus.extend(connected_random_graphs(7, 0.4, 4, seed_base=2100))
        # Denser n=8 samples: brute force is exponential in the number of
        # *non*-edges, so sparse 8-vertex graphs dominate the suite's time.
        corpus.extend(connected_random_graphs(8, 0.55, 3, seed_base=2200))
        return [g for g in corpus if g.num_vertices() <= 8]

    def test_bitset_enumeration_matches_bruteforce(self):
        from repro.api import Session
        from repro.graphs.chordal import is_chordal

        session = Session(kernel="bitset")
        for g in self._corpus():
            oracle_fills = {
                fill_key(g, h) for h in minimal_triangulations_bruteforce(g)
            }
            emitted_fills = set()
            with session.stream(g, "fill") as stream:
                for result in stream:
                    tri = result.triangulation
                    h = tri.chordal_graph
                    assert is_chordal(h), f"non-chordal output on {g!r}"
                    assert is_minimal_triangulation(g, h)
                    fill = fill_key(g, h)
                    assert fill in oracle_fills, f"not inclusion-minimal on {g!r}"
                    assert result.cost == len(fill), "fill cost mismatch"
                    assert fill not in emitted_fills, "duplicate emission"
                    emitted_fills.add(fill)
            assert emitted_fills == oracle_fills, (
                f"bitset kernel missed triangulations on {g!r}"
            )

    def test_bitset_width_cost_correct(self):
        from repro.api import Session
        from repro.graphs.chordal import treewidth_chordal

        session = Session(kernel="bitset")
        for g in self._corpus():
            response = session.top(g, "width", k=5)
            for result in response.results:
                h = result.triangulation.chordal_graph
                assert result.cost == treewidth_chordal(h)
                assert result.triangulation.width == treewidth_chordal(h)


class TestAtomDecompositionAgainstOracle:
    """Brute-force cross-check of the atom decomposition (ISSUE 4).

    On every graph with ≤ 8 vertices in the corpus: decompose into
    clique-minimal-separator atoms, brute-force every atom's minimal
    triangulations independently, take every combination (union of
    per-atom fill sets), and verify the resulting set equals the direct
    brute-force minimal-triangulation set of the whole graph — Leimer's
    product theorem, checked exhaustively.  The bag-partition corollary
    (maximal cliques of the combination = disjoint union of the atoms'
    maximal cliques) is what makes per-atom cost composition exact, and
    is checked alongside.
    """

    def _corpus(self):
        from repro.graphs.generators import (
            bowtie_graph,
            grid_graph,
            ring_of_cycles,
            tree_graph,
        )

        corpus = [
            path_graph(5),
            cycle_graph(6),
            bowtie_graph(3),
            ring_of_cycles(2, 4),
            tree_graph(7, seed=3),
            grid_graph(2, 4),
            paper_example_graph(),
        ]
        corpus.extend(connected_random_graphs(7, 0.35, 5, seed_base=2300))
        corpus.extend(connected_random_graphs(8, 0.45, 4, seed_base=2400))
        return [g for g in corpus if g.num_vertices() <= 8]

    def test_atom_product_equals_direct_bruteforce(self):
        from itertools import product

        from repro.graphs.chordal import maximal_cliques_chordal
        from repro.preprocess.atoms import atom_decomposition

        for g in self._corpus():
            decomposition = atom_decomposition(g)
            per_atom = [
                minimal_triangulations_bruteforce(g.subgraph(atom))
                for atom in decomposition.atoms
            ]
            oracle = {
                fill_key(g, h) for h in minimal_triangulations_bruteforce(g)
            }
            combined = set()
            for combo in product(*per_atom):
                fill = frozenset()
                bag_lists = []
                for atom_h in combo:
                    fill |= fill_key(g, atom_h)
                    bag_lists.append(maximal_cliques_chordal(atom_h))
                combined.add(fill)
                # Bag partition: atoms contribute disjoint maximal-clique
                # sets, none contained in a bag of another atom.
                all_bags = [b for bags in bag_lists for b in bags]
                assert len(all_bags) == len(set(all_bags)), g
                for i, b1 in enumerate(all_bags):
                    for b2 in all_bags[i + 1:]:
                        assert not (b1 < b2 or b2 < b1), (g, b1, b2)
            assert combined == oracle, (
                f"atom product disagrees with brute force on {g!r}"
            )

    def test_preprocessed_pipeline_matches_bruteforce(self):
        from repro.api import Session

        session = Session()  # preprocessing on (default)
        for g in self._corpus():
            oracle = {
                fill_key(g, h) for h in minimal_triangulations_bruteforce(g)
            }
            emitted = []
            with session.stream(g, "fill") as stream:
                for result in stream:
                    h = result.triangulation.chordal_graph
                    assert is_minimal_triangulation(g, h)
                    fill = fill_key(g, h)
                    assert result.cost == len(fill)
                    emitted.append(fill)
            assert len(emitted) == len(set(emitted)), "duplicate emission"
            assert set(emitted) == oracle, (
                f"preprocessed pipeline missed triangulations on {g!r}"
            )
