"""Tests for the CKK baseline enumerator."""

import itertools

import pytest

from repro.baselines.brute import (
    minimal_triangulations_bruteforce,
    minimal_triangulations_via_mis,
)
from repro.baselines.ckk import ckk_enumeration
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    paper_example_graph,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.triangulation.mcs_m import mcs_m
from repro.triangulation.minimality import is_minimal_triangulation
from tests.conftest import connected_random_graphs, fill_key


class TestCompleteness:
    def test_matches_bruteforce(self):
        for g in connected_random_graphs(7, 0.4, 8, seed_base=2100):
            expected = {fill_key(g, h) for h in minimal_triangulations_bruteforce(g)}
            got = [fill_key(g, r.triangulation, ) for r in ckk_enumeration(g)]
            assert len(got) == len(set(got)), "duplicate emission"
            assert set(got) == expected

    def test_matches_mis_oracle_on_cycle(self):
        g = cycle_graph(7)
        expected = {fill_key(g, h) for h in minimal_triangulations_via_mis(g)}
        got = {fill_key(g, r.triangulation) for r in ckk_enumeration(g)}
        assert got == expected  # 42 Catalan triangulations

    def test_paper_example(self, paper_graph):
        results = list(ckk_enumeration(paper_graph))
        assert len(results) == 2

    def test_chordal_single(self):
        results = list(ckk_enumeration(path_graph(6)))
        assert len(results) == 1

    def test_complete_graph(self):
        results = list(ckk_enumeration(complete_graph(4)))
        assert len(results) == 1


class TestContract:
    def test_results_are_minimal(self):
        for g in connected_random_graphs(8, 0.35, 4, seed_base=2200):
            for r in itertools.islice(ckk_enumeration(g), 10):
                assert is_minimal_triangulation(g, r.triangulation)

    def test_separator_key_is_consistent(self, paper_graph):
        from repro.triangulation.saturate import minimal_separators_of_triangulation

        for r in ckk_enumeration(paper_graph):
            assert r.separators == minimal_separators_of_triangulation(r.triangulation)

    def test_first_result_is_fast_no_init(self, paper_graph):
        # The defining behavioral contrast with RankedTriang: the first
        # result arrives without any separator/PMC precomputation.
        first = next(iter(ckk_enumeration(paper_graph)))
        assert first.rank == 0
        assert first.elapsed_seconds < 1.0

    def test_ranks_sequential(self, paper_graph):
        ranks = [r.rank for r in ckk_enumeration(paper_graph)]
        assert ranks == list(range(len(ranks)))

    def test_custom_triangulator(self):
        g = cycle_graph(6)
        results = list(
            ckk_enumeration(g, triangulator=lambda graph: mcs_m(graph)[0])
        )
        assert len(results) == 14

    def test_empty_graph(self):
        assert list(ckk_enumeration(Graph())) == []

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            list(ckk_enumeration(Graph(edges=[(1, 2), (3, 4)])))
