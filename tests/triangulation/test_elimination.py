"""Tests for elimination-game triangulations and greedy orders."""

from repro.graphs.chordal import is_chordal, is_perfect_elimination_order
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
)
from repro.triangulation.elimination import (
    elimination_game,
    min_degree_order,
    min_fill_order,
    triangulate_min_degree,
    triangulate_min_fill,
)


class TestEliminationGame:
    def test_result_is_chordal(self):
        for seed in range(8):
            g = erdos_renyi(10, 0.3, seed=seed)
            order = list(g.vertices)
            h = elimination_game(g, order)
            assert is_chordal(h)
            assert is_perfect_elimination_order(h, order)

    def test_supergraph(self):
        g = grid_graph(3, 3)
        h = elimination_game(g, list(g.vertices))
        for u, v in g.edges():
            assert h.has_edge(u, v)

    def test_chordal_input_with_peo_unchanged(self):
        g = path_graph(5)
        h = elimination_game(g, [0, 1, 2, 3, 4])
        assert h == g


class TestGreedyOrders:
    def test_min_degree_covers_vertices(self):
        g = grid_graph(3, 3)
        order = min_degree_order(g)
        assert sorted(order, key=repr) == sorted(g.vertices, key=repr)

    def test_min_fill_on_cycle_is_optimal(self):
        # min-fill triangulates a cycle with n-3 chords (the optimum).
        g = cycle_graph(8)
        h = triangulate_min_fill(g)
        assert h.num_edges() - g.num_edges() == 5

    def test_min_degree_on_cycle_is_optimal(self):
        g = cycle_graph(8)
        h = triangulate_min_degree(g)
        assert h.num_edges() - g.num_edges() == 5

    def test_heuristics_produce_triangulations(self):
        for seed in range(6):
            g = erdos_renyi(10, 0.3, seed=seed)
            for h in (triangulate_min_fill(g), triangulate_min_degree(g)):
                assert is_chordal(h)
