"""Tests for LB-Triang."""

import pytest

from repro.graphs.chordal import is_chordal
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
)
from repro.triangulation.lb_triang import lb_triang, lb_triang_order
from repro.triangulation.minimality import is_minimal_triangulation


class TestLbTriang:
    def test_chordal_input_unchanged(self):
        g = complete_graph(5)
        assert lb_triang(g) == g
        g = path_graph(6)
        assert lb_triang(g) == g

    def test_cycle(self):
        g = cycle_graph(6)
        h = lb_triang(g)
        assert is_chordal(h)
        # Triangulating C_n minimally adds exactly n - 3 chords.
        assert h.num_edges() - g.num_edges() == 3

    def test_minimality_all_strategies(self):
        for strategy in ("min-degree", "given", "max-degree"):
            for seed in range(8):
                g = erdos_renyi(9, 0.35, seed=seed)
                h = lb_triang(g, strategy=strategy)
                assert is_minimal_triangulation(g, h), (strategy, seed)

    def test_minimality_arbitrary_orders(self):
        # The "wide-range" guarantee: minimal for ANY processing order.
        import random

        g = grid_graph(3, 3)
        vertices = list(g.vertices)
        for seed in range(6):
            rng = random.Random(seed)
            order = vertices[:]
            rng.shuffle(order)
            h = lb_triang(g, order=order)
            assert is_minimal_triangulation(g, h), seed

    def test_disconnected(self):
        from repro.graphs.graph import Graph

        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)])
        h = lb_triang(g)
        assert is_chordal(h)
        assert is_minimal_triangulation(g, h)

    def test_input_not_mutated(self):
        g = cycle_graph(5)
        edges_before = g.edge_set()
        lb_triang(g)
        assert g.edge_set() == edges_before


class TestOrdering:
    def test_strategies(self):
        g = grid_graph(2, 3)
        assert lb_triang_order(g, "given") == list(g.vertices)
        md = lb_triang_order(g, "min-degree")
        assert g.degree(md[0]) <= g.degree(md[-1])
        xd = lb_triang_order(g, "max-degree")
        assert g.degree(xd[0]) >= g.degree(xd[-1])

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            lb_triang_order(path_graph(3), "banana")
