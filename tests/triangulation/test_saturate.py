"""Tests for the Parra–Scheffler saturation bridge."""

import pytest

from repro.graphs.generators import cycle_graph, erdos_renyi, paper_example_graph
from repro.graphs.graph import Graph
from repro.separators.berry import minimal_separators
from repro.separators.crossing import SeparatorFamily
from repro.triangulation.minimality import is_minimal_triangulation
from repro.triangulation.saturate import (
    minimal_separators_of_triangulation,
    saturate_bags,
    saturate_separators,
)


def maximal_parallel_sets(graph, limit=None):
    """All maximal pairwise-parallel separator sets via the MIS oracle."""
    import networkx as nx

    seps = sorted(minimal_separators(graph), key=sorted)
    family = SeparatorFamily(graph, seps)
    parallel = nx.Graph()
    parallel.add_nodes_from(range(len(seps)))
    for i in range(len(seps)):
        for j in range(i + 1, len(seps)):
            if not family.crosses(seps[i], seps[j]):
                parallel.add_edge(i, j)
    sets = []
    for clique in nx.find_cliques(parallel):
        sets.append({seps[i] for i in clique})
        if limit and len(sets) >= limit:
            break
    return sets


class TestTheorem25:
    def test_forward_direction(self):
        """Saturating a maximal parallel set gives a minimal triangulation
        whose separator set is exactly the saturated set (Thm 2.5(1))."""
        for seed in range(8):
            g = erdos_renyi(8, 0.4, seed=seed)
            if not g.is_connected():
                continue
            for m in maximal_parallel_sets(g, limit=6):
                h = saturate_separators(g, m)
                assert is_minimal_triangulation(g, h), seed
                assert minimal_separators_of_triangulation(h) == set(m), seed

    def test_reverse_direction(self):
        """MinSep(H) of a minimal triangulation is maximal pairwise-parallel
        and re-saturating reproduces H (Thm 2.5(2))."""
        from repro.triangulation.lb_triang import lb_triang

        for seed in range(10):
            g = erdos_renyi(9, 0.35, seed=seed)
            if not g.is_connected():
                continue
            h = lb_triang(g)
            m = minimal_separators_of_triangulation(h)
            family = SeparatorFamily(g, minimal_separators(g))
            assert family.is_pairwise_parallel(m)
            # maximality: every outside separator crosses a member
            for s in set(family) - set(m):
                assert any(family.crosses(s, t) for t in m), seed
            assert saturate_separators(g, m) == h, seed

    def test_paper_example_two_triangulations(self, paper_graph):
        sets = maximal_parallel_sets(paper_graph)
        assert len(sets) == 2  # H1 and H2 of Figure 1(b)
        fills = sorted(
            saturate_separators(paper_graph, m).num_edges() - paper_graph.num_edges()
            for m in sets
        )
        # H2 saturates {u,v} (1 fill edge), H1 saturates {w1,w2,w3} (3).
        assert fills == [1, 3]


class TestSaturateBags:
    def test_bags_become_cliques(self):
        g = cycle_graph(5)
        h = saturate_bags(g, [{0, 1, 2}, {2, 3, 4}])
        assert h.is_clique({0, 1, 2})
        assert h.is_clique({2, 3, 4})

    def test_original_untouched(self):
        g = cycle_graph(5)
        saturate_bags(g, [{0, 1, 2}])
        assert g.num_edges() == 5


class TestAbsentVertexValidation:
    """Both saturation kernels reject groups naming absent vertices."""

    def test_bitset_kernel_raises_value_error(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        with pytest.raises(ValueError, match="not in graph"):
            saturate_separators(g, [frozenset({2, 99})], kernel="bitset")
        with pytest.raises(ValueError, match="not in graph"):
            saturate_bags(g, [frozenset({1, "typo"})], kernel="bitset")

    def test_sets_kernel_raises_value_error(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        with pytest.raises(ValueError, match="not in graph"):
            saturate_separators(g, [frozenset({2, 99})], kernel="sets")
