"""Tests for MCS-M."""

from repro.graphs.chordal import (
    is_chordal,
    is_perfect_elimination_order,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
)
from repro.triangulation.mcs_m import mcs_m
from repro.triangulation.minimality import is_minimal_triangulation


class TestMcsM:
    def test_chordal_input_unchanged(self):
        for g in (complete_graph(5), path_graph(6)):
            h, meo = mcs_m(g)
            assert h == g
            assert is_perfect_elimination_order(h, meo)

    def test_cycle(self):
        g = cycle_graph(7)
        h, meo = mcs_m(g)
        assert is_chordal(h)
        assert h.num_edges() - g.num_edges() == 4  # n - 3 chords
        assert is_perfect_elimination_order(h, meo)

    def test_minimality_random(self):
        for seed in range(12):
            g = erdos_renyi(9, 0.35, seed=seed)
            h, meo = mcs_m(g)
            assert is_minimal_triangulation(g, h), seed
            assert is_perfect_elimination_order(h, meo), seed

    def test_start_vertex(self):
        g = grid_graph(3, 3)
        h, meo = mcs_m(g, start=(1, 1))
        assert meo[-1] == (1, 1)  # numbered first = eliminated last
        assert is_minimal_triangulation(g, h)

    def test_grid(self):
        g = grid_graph(3, 4)
        h, meo = mcs_m(g)
        assert is_minimal_triangulation(g, h)

    def test_agrees_with_lb_triang_on_fill_size_class(self):
        # Both produce *some* minimal triangulation; on a cycle all minimal
        # triangulations have the same fill size (n-3).
        from repro.triangulation.lb_triang import lb_triang

        g = cycle_graph(9)
        h1 = lb_triang(g)
        h2, _ = mcs_m(g)
        assert h1.num_edges() == h2.num_edges()

    def test_input_not_mutated(self):
        g = cycle_graph(5)
        before = g.edge_set()
        mcs_m(g)
        assert g.edge_set() == before
