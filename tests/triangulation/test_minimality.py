"""Tests for triangulation validity/minimality predicates."""

import pytest

from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.triangulation.minimality import (
    fill_edges,
    is_minimal_triangulation,
    is_triangulation,
)


class TestFillEdges:
    def test_basic(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        assert {frozenset(e) for e in fill_edges(g, h)} == {frozenset({0, 2})}

    def test_vertex_set_mismatch(self):
        with pytest.raises(ValueError):
            fill_edges(path_graph(3), path_graph(4))


class TestIsTriangulation:
    def test_valid(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        assert is_triangulation(g, h)

    def test_not_supergraph(self):
        g = cycle_graph(4)
        h = Graph(vertices=range(4), edges=[(0, 1), (1, 2), (2, 3)])
        h.add_edge(0, 2)
        assert not is_triangulation(g, h)  # missing edge 3-0

    def test_not_chordal(self):
        g = cycle_graph(4)
        assert not is_triangulation(g, g)

    def test_chordal_graph_is_its_own(self):
        g = path_graph(5)
        assert is_triangulation(g, g)


class TestIsMinimal:
    def test_single_chord(self):
        g = cycle_graph(4)
        h = g.copy()
        h.add_edge(0, 2)
        assert is_minimal_triangulation(g, h)

    def test_complete_fill_not_minimal(self):
        g = cycle_graph(4)
        h = complete_graph(4)
        assert is_triangulation(g, h)
        assert not is_minimal_triangulation(g, h)

    def test_chordal_unique_minimal(self):
        # "If G is already chordal then G is the only minimal triangulation
        # of itself" (Section 2).
        g = path_graph(4)
        assert is_minimal_triangulation(g, g)
        h = g.copy()
        h.add_edge(0, 2)
        assert not is_minimal_triangulation(g, h)

    def test_paper_example_triangulations(self, paper_graph):
        # H2 of Figure 1(b): saturate {u, v}.
        h2 = paper_graph.copy()
        h2.saturate({"u", "v"})
        h2.saturate({"v"})
        assert is_minimal_triangulation(paper_graph, h2)
        # H1: saturate {w1, w2, w3}.
        h1 = paper_graph.copy()
        h1.saturate({"w1", "w2", "w3"})
        assert is_minimal_triangulation(paper_graph, h1)
        # Adding both is a (non-minimal) triangulation.
        both = h1.copy()
        both.saturate({"u", "v"})
        assert is_triangulation(paper_graph, both)
        assert not is_minimal_triangulation(paper_graph, both)
