"""Tests for the crossing/parallel relation and SeparatorFamily."""

from repro.graphs.generators import cycle_graph, erdos_renyi, paper_example_graph
from repro.separators.berry import minimal_separators
from repro.separators.crossing import SeparatorFamily, are_parallel, crosses


class TestCrosses:
    def test_paper_example(self, paper_graph):
        s1 = frozenset({"w1", "w2", "w3"})
        s2 = frozenset({"u", "v"})
        s3 = frozenset({"v"})
        assert crosses(paper_graph, s1, s2)
        assert crosses(paper_graph, s2, s1)
        assert are_parallel(paper_graph, s1, s3)
        assert are_parallel(paper_graph, s2, s3)

    def test_self_parallel(self, paper_graph):
        s = frozenset({"u", "v"})
        assert not crosses(paper_graph, s, s)

    def test_cycle_crossing_structure(self):
        g = cycle_graph(6)
        # {0,3} and {1,4} interleave on the cycle: crossing.
        assert crosses(g, frozenset({0, 3}), frozenset({1, 4}))
        # {0,2} and {0,4} share vertex 0 and do not interleave: parallel.
        assert are_parallel(g, frozenset({0, 2}), frozenset({0, 4}))

    def test_symmetry_random(self):
        for seed in range(12):
            g = erdos_renyi(8, 0.4, seed=seed)
            seps = sorted(minimal_separators(g), key=sorted)
            for i, s in enumerate(seps):
                for t in seps[i + 1 :]:
                    assert crosses(g, s, t) == crosses(g, t, s), (seed, s, t)


class TestSeparatorFamily:
    def test_cached_matches_direct(self):
        for seed in range(12):
            g = erdos_renyi(8, 0.4, seed=seed)
            seps = sorted(minimal_separators(g), key=sorted)
            family = SeparatorFamily(g, seps)
            for i, s in enumerate(seps):
                for t in seps[i + 1 :]:
                    assert family.crosses(s, t) == crosses(g, s, t)

    def test_registration(self, paper_graph):
        family = SeparatorFamily(paper_graph)
        s = frozenset({"v"})
        idx = family.add(s)
        assert family.add(s) == idx  # idempotent
        assert family.id_of(s) == idx
        assert family.separator(idx) == s
        assert s in family
        assert len(family) == 1

    def test_pairwise_parallel_check(self, paper_graph):
        family = SeparatorFamily(paper_graph, minimal_separators(paper_graph))
        s1 = frozenset({"w1", "w2", "w3"})
        s2 = frozenset({"u", "v"})
        s3 = frozenset({"v"})
        assert family.is_pairwise_parallel([s1, s3])
        assert not family.is_pairwise_parallel([s1, s2, s3])

    def test_extend_to_maximal(self, paper_graph):
        seps = minimal_separators(paper_graph)
        family = SeparatorFamily(paper_graph, sorted(seps, key=sorted))
        maximal = family.extend_to_maximal([])
        # Every separator outside the set must cross a member.
        for s in seps - maximal:
            assert any(family.crosses(s, t) for t in maximal)
        # And the set itself is pairwise parallel.
        assert family.is_pairwise_parallel(maximal)

    def test_extend_preserves_base(self, paper_graph):
        seps = minimal_separators(paper_graph)
        family = SeparatorFamily(paper_graph, seps)
        base = [frozenset({"u", "v"})]
        maximal = family.extend_to_maximal(base)
        assert frozenset({"u", "v"}) in maximal
