"""Tests for minimal separator enumeration (Berry–Bordat–Cogis)."""

from itertools import combinations

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    paper_example_graph,
    path_graph,
    star_graph,
    tree_graph,
)
from repro.graphs.graph import Graph
from repro.separators.berry import (
    SeparatorLimitExceeded,
    full_components,
    is_minimal_separator,
    is_minimal_uv_separator,
    minimal_separators,
)


def minimal_separators_bruteforce(graph: Graph) -> set[frozenset]:
    """Ground truth: test every subset with the full-component predicate."""
    vertices = list(graph.vertices)
    out = set()
    for size in range(1, len(vertices) - 1):
        for subset in combinations(vertices, size):
            if is_minimal_separator(graph, frozenset(subset)):
                out.add(frozenset(subset))
    return out


def pairwise_definition_bruteforce(graph: Graph) -> set[frozenset]:
    """Second ground truth straight from the (u,v)-separator definition."""
    vertices = list(graph.vertices)
    out = set()
    for size in range(1, len(vertices) - 1):
        for subset in combinations(vertices, size):
            s = frozenset(subset)
            rest = [v for v in vertices if v not in s]
            for u, v in combinations(rest, 2):
                if is_minimal_uv_separator(graph, s, u, v):
                    out.add(s)
                    break
    return out


class TestPredicate:
    def test_paper_example(self, paper_graph):
        # Example 2.4 enumerates MinSep(G) explicitly.
        expected = {
            frozenset({"w1", "w2", "w3"}),
            frozenset({"u", "v"}),
            frozenset({"v"}),
        }
        assert minimal_separators(paper_graph) == expected

    def test_subset_of_separator_can_be_separator(self, paper_graph):
        # {v} ⊊ {u, v}, both minimal separators (Example 2.4's remark).
        assert is_minimal_separator(paper_graph, frozenset({"v"}))
        assert is_minimal_separator(paper_graph, frozenset({"u", "v"}))

    def test_empty_not_minimal(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        assert not is_minimal_separator(g, frozenset())

    def test_non_separator(self):
        g = path_graph(4)
        assert not is_minimal_separator(g, frozenset({0}))  # leaf
        assert is_minimal_separator(g, frozenset({1}))

    def test_uv_variant(self):
        g = paper_example_graph()
        s2 = frozenset({"u", "v"})
        assert is_minimal_uv_separator(g, s2, "w1", "w2")
        # S2 separates w1 from v' but not minimally (S3 = {v} does).
        assert not is_minimal_uv_separator(g, s2, "w1", "v'")

    def test_full_components(self):
        g = paper_example_graph()
        full = full_components(g, frozenset({"v"}))
        assert sorted(map(sorted, full)) == [["u", "w1", "w2", "w3"], ["v'"]]


class TestEnumeration:
    @pytest.mark.parametrize(
        "graph,count",
        [
            (path_graph(5), 3),  # internal vertices
            (complete_graph(5), 0),
            (star_graph(4), 1),  # the center
            (cycle_graph(6), 9),  # non-adjacent pairs
            (paper_example_graph(), 3),
        ],
    )
    def test_known_counts(self, graph, count):
        assert len(minimal_separators(graph)) == count

    def test_cycle_separators_are_nonadjacent_pairs(self):
        g = cycle_graph(7)
        seps = minimal_separators(g)
        expected = {
            frozenset({u, v})
            for u in range(7)
            for v in range(7)
            if u < v and not g.has_edge(u, v)
        }
        assert seps == expected

    def test_matches_bruteforce_random(self):
        for seed in range(40):
            g = erdos_renyi(8, 0.35, seed=seed)
            assert minimal_separators(g) == minimal_separators_bruteforce(g), seed

    def test_matches_pairwise_definition(self):
        for seed in range(15):
            g = erdos_renyi(7, 0.4, seed=seed)
            assert minimal_separators(g) == pairwise_definition_bruteforce(g), seed

    def test_grid(self):
        g = grid_graph(3, 3)
        seps = minimal_separators(g)
        assert seps == minimal_separators_bruteforce(g)

    def test_tree_separators(self):
        g = tree_graph(10, seed=2)
        seps = minimal_separators(g)
        assert seps == {frozenset({v}) for v in g.vertices if g.degree(v) >= 2}

    def test_disconnected(self):
        g = Graph(edges=[(1, 2), (2, 3), (4, 5), (5, 6)])
        assert minimal_separators(g) == {frozenset({2}), frozenset({5})}

    def test_every_output_is_minimal(self):
        for seed in range(10):
            g = erdos_renyi(12, 0.3, seed=seed)
            for s in minimal_separators(g):
                assert is_minimal_separator(g, s)


class TestLimit:
    def test_limit_raises(self):
        g = erdos_renyi(14, 0.4, seed=0)
        total = len(minimal_separators(g))
        assert total > 3
        with pytest.raises(SeparatorLimitExceeded) as exc_info:
            minimal_separators(g, limit=3)
        assert len(exc_info.value.partial) == 4  # limit + 1 when it trips

    def test_limit_not_hit(self):
        g = path_graph(6)
        assert len(minimal_separators(g, limit=100)) == 4


class TestComponentCallEfficiency:
    """Regression tests for the hoisted set conversions in the hot loop.

    ``Graph.components_without`` / ``_component_from`` used to rebuild
    ``removed`` as a fresh ``set`` once per call *and* once per
    component; the Berry expansion step additionally rebuilt its removal
    set from scratch for every member of every separator.  These tests
    pin the fixed behavior: one shared set object flows through a whole
    ``components_without`` call, and the enumeration issues exactly the
    expected number of component sweeps.
    """

    def test_component_from_shares_the_excluded_set(self, monkeypatch):
        g = paper_example_graph()
        excluded_ids: list[int] = []
        original = Graph._component_from

        def spy(self, start, excluded):
            assert isinstance(excluded, (set, frozenset)), (
                "hot path must hand sets to _component_from, got "
                f"{type(excluded).__name__}"
            )
            excluded_ids.append(id(excluded))
            return original(self, start, excluded)

        monkeypatch.setattr(Graph, "_component_from", spy)
        removed = set(list(g.vertices)[:2])
        comps = g.components_without(removed)
        assert len(comps) >= 1
        # Every component sweep of one call reuses one set object — and
        # it is the caller's own set, not a fresh copy per call.
        assert len(set(excluded_ids)) == 1
        assert excluded_ids[0] == id(removed)

    def test_enumeration_component_sweep_count(self, monkeypatch):
        # The BBC loop costs: one components_without per vertex
        # (initialization), one per (separator, member) pair (expansion),
        # plus one inside is_minimal_separator per admitted candidate
        # check.  Pin the exact sweep count on the paper graph so a
        # regression that reintroduces per-member or per-component
        # rebuilds (or extra sweeps) is caught immediately.
        g = paper_example_graph()
        calls = {"n": 0}
        original = Graph.components_without

        def spy(self, removed):
            calls["n"] += 1
            return original(self, removed)

        monkeypatch.setattr(Graph, "components_without", spy)
        seps = minimal_separators(g, kernel="sets")
        assert len(seps) == 3
        n = g.num_vertices()
        member_sweeps = sum(len(s) for s in seps)
        # Every candidate neighborhood admitted for the first time runs
        # exactly one is_minimal_separator check (one sweep); duplicate
        # candidates are filtered by the seen-set *before* re-checking,
        # so the total is a deterministic function of the instance:
        # 6 (init, one per vertex) + 6 (expansion, one per separator
        # member) + 3 (one minimality check per admitted separator).
        assert calls["n"] == 15
        assert calls["n"] >= n + member_sweeps
