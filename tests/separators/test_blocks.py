"""Tests for blocks (S, C) and their realizations."""

from repro.graphs.generators import erdos_renyi, paper_example_graph
from repro.separators.berry import minimal_separators
from repro.separators.blocks import (
    Block,
    all_full_blocks,
    blocks_of_separator,
    full_blocks_of_separator,
)


class TestBlock:
    def test_vertices_and_len(self):
        b = Block(frozenset({1}), frozenset({2, 3}))
        assert b.vertices == {1, 2, 3}
        assert len(b) == 3

    def test_equality_and_hash(self):
        a = Block(frozenset({1}), frozenset({2}))
        b = Block(frozenset({1}), frozenset({2}))
        c = Block(frozenset({2}), frozenset({1}))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_unpickle_recomputes_seed_dependent_hash(self):
        """A block pickled under one PYTHONHASHSEED must hash correctly
        under every other — string-label frozenset hashes are randomized
        per process, so shipping the writer's cached hash breaks every
        dict lookup in the reader (persistent artifact cache,
        cross-process checkpoints)."""
        import os
        import pickle
        import subprocess
        import sys

        import repro

        script = (
            "import pickle, sys;"
            "from repro.separators.blocks import Block;"
            "b = Block(frozenset({'u', 'v'}), frozenset({'w1', 'w2'}));"
            "sys.stdout.buffer.write(pickle.dumps(b))"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        local = Block(frozenset({"u", "v"}), frozenset({"w1", "w2"}))
        # Two writer seeds: at least one differs from this process's.
        for seed in ("0", "12345"):
            env["PYTHONHASHSEED"] = seed
            blob = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                check=True,
                env=env,
            ).stdout
            loaded = pickle.loads(blob)
            assert hash(loaded) == hash(local)
            assert loaded == local
            assert {local: "x"}[loaded] == "x"

    def test_realization_saturates_separator(self, paper_graph):
        s1 = frozenset({"w1", "w2", "w3"})
        blocks = list(blocks_of_separator(paper_graph, s1))
        for block in blocks:
            realized = block.realization(paper_graph)
            assert realized.is_clique(s1)
            assert realized.vertex_set() == block.vertices
        # Figure 2: the w-separator has components {u} and {v, v'}.
        comps = sorted(sorted(map(str, b.component)) for b in blocks)
        assert comps == [["u"], ["v", "v'"]]

    def test_fullness(self, paper_graph):
        # (S2, C42) of Figure 2 is the non-full block: S2={u,v}, C={v'}.
        s2 = frozenset({"u", "v"})
        blocks = {frozenset(b.component): b for b in blocks_of_separator(paper_graph, s2)}
        assert not blocks[frozenset({"v'"})].is_full(paper_graph)
        full = list(full_blocks_of_separator(paper_graph, s2))
        assert frozenset({"v'"}) not in {frozenset(b.component) for b in full}
        assert len(full) == 3  # w1, w2, w3 singleton components


class TestAllFullBlocks:
    def test_sorted_ascending(self):
        g = erdos_renyi(10, 0.3, seed=4)
        blocks = all_full_blocks(g, minimal_separators(g))
        sizes = [len(b) for b in blocks]
        assert sizes == sorted(sizes)

    def test_every_separator_has_two_full_blocks(self):
        for seed in range(10):
            g = erdos_renyi(9, 0.35, seed=seed)
            for s in minimal_separators(g):
                assert len(list(full_blocks_of_separator(g, s))) >= 2

    def test_full_blocks_marked_full(self):
        g = paper_example_graph()
        for block in all_full_blocks(g, minimal_separators(g)):
            assert block.is_full(g)
