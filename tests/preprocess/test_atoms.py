"""Unit tests for the clique-minimal-separator atom decomposition."""

from __future__ import annotations

from repro.graphs.generators import (
    bowtie_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    paper_example_graph,
    path_graph,
    petersen_graph,
    ring_of_cycles,
    tree_graph,
    tree_of_cliques,
)
from repro.graphs.graph import Graph
from repro.preprocess.atoms import atom_decomposition
from tests.conftest import connected_random_graphs


def atoms_of(graph):
    return set(atom_decomposition(graph).atoms)


class TestKnownDecompositions:
    def test_path_atoms_are_edges(self):
        assert atoms_of(path_graph(4)) == {
            frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})
        }

    def test_cycle_is_one_atom(self):
        assert atoms_of(cycle_graph(6)) == {frozenset(range(6))}

    def test_complete_graph_is_one_atom(self):
        assert atoms_of(complete_graph(5)) == {frozenset(range(5))}

    def test_petersen_and_grid_are_atoms(self):
        assert len(atom_decomposition(petersen_graph())) == 1
        assert len(atom_decomposition(grid_graph(3, 3))) == 1

    def test_bowtie_splits_into_its_cliques(self):
        assert atoms_of(bowtie_graph(4)) == {
            frozenset({0, 1, 2, 3}), frozenset({0, 4, 5, 6})
        }

    def test_tree_of_cliques_splits_into_its_cliques(self):
        decomposition = atom_decomposition(tree_of_cliques(5, 4))
        assert len(decomposition) == 5
        assert all(len(a) == 4 for a in decomposition.atoms)
        graph = decomposition.graph
        assert all(graph.is_clique(a) for a in decomposition.atoms)

    def test_ring_of_cycles_splits_into_cycles(self):
        decomposition = atom_decomposition(ring_of_cycles(3, 5))
        assert len(decomposition) == 3
        assert all(len(a) == 5 for a in decomposition.atoms)

    def test_tree_atoms_are_edges(self):
        g = tree_graph(10, seed=5)
        assert atoms_of(g) == {frozenset(e) for e in g.edges()}

    def test_paper_example(self):
        # v' hangs off v through the clique minimal separator {v}.
        decomposition = atom_decomposition(paper_example_graph())
        assert sorted(len(a) for a in decomposition.atoms) == [2, 5]
        assert frozenset({"v"}) in decomposition.separators


class TestStructuralInvariants:
    def corpus(self):
        out = [
            path_graph(5),
            cycle_graph(5),
            bowtie_graph(3),
            ring_of_cycles(2, 4),
            paper_example_graph(),
        ]
        out += connected_random_graphs(8, 0.3, 5, seed_base=900)
        out += connected_random_graphs(9, 0.4, 5, seed_base=950)
        return out

    def test_atoms_cover_and_overlap_on_cliques(self):
        for g in self.corpus():
            decomposition = atom_decomposition(g)
            union = set()
            for a in decomposition.atoms:
                union |= a
            assert union == set(g.vertices)
            atoms = decomposition.atoms
            for i, a in enumerate(atoms):
                for b in atoms[i + 1:]:
                    assert g.is_clique(a & b), (a, b)

    def test_every_edge_lives_in_an_atom(self):
        for g in self.corpus():
            decomposition = atom_decomposition(g)
            for u, v in g.edges():
                assert any(
                    u in a and v in a for a in decomposition.atoms
                ), (u, v)

    def test_separators_are_cliques(self):
        for g in self.corpus():
            decomposition = atom_decomposition(g)
            for s in decomposition.separators:
                assert g.is_clique(s)
                assert len(g.components_without(s)) >= 2

    def test_decomposition_is_deterministic(self):
        for g in self.corpus():
            a = atom_decomposition(g)
            b = atom_decomposition(g)
            assert a.atoms == b.atoms
            assert a.separators == b.separators

    def test_disconnected_components_split(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 4)])
        g.add_vertex(5)
        decomposition = atom_decomposition(g)
        assert set(decomposition.atoms) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({3, 4}),
            frozenset({5}),
        }
        # Empty adhesions between components are not separators.
        assert frozenset() not in set(decomposition.separators)

    def test_empty_graph(self):
        decomposition = atom_decomposition(Graph())
        assert decomposition.atoms == ()
        assert decomposition.is_trivial

    def test_describe(self):
        assert "atoms" in atom_decomposition(path_graph(3)).describe()
