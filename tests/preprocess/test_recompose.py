"""Unit tests for cost composition, plans, and the composed stream."""

from __future__ import annotations

import pytest

from repro.api import ComposedCheckpoint, ComposedRankedStream, Session
from repro.costs import registry as cost_registry
from repro.costs.base import BagCost
from repro.graphs.generators import (
    bowtie_graph,
    cycle_graph,
    grid_graph,
    paper_example_graph,
    path_graph,
    ring_of_cycles,
    tree_of_cliques,
)
from repro.graphs.graph import Graph
from repro.preprocess import recompose
from repro.preprocess.recompose import (
    CostComposition,
    PreprocessPlan,
    composition_for,
    register_composition,
)


def signature(results):
    return [(r.cost, frozenset(r.triangulation.bags)) for r in results]


def full_signature(results):
    return [
        (r.rank, r.cost, frozenset(r.triangulation.bags)) for r in results
    ]


class TestCompositionRegistry:
    def test_builtin_declarations(self):
        assert composition_for("width").mode == "max"
        assert composition_for("fill").mode == "sum"
        assert composition_for("sum-exp-bags").duplicate_sensitive
        assert composition_for("lex-width-fill") is None  # not composable
        assert composition_for(None) is None

    def test_cost_objects_never_compose(self):
        from repro.costs.classic import WidthCost

        assert composition_for(WidthCost()) is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            CostComposition(mode="product")


class TestPlan:
    def test_trivial_plans(self):
        for g in (cycle_graph(6), grid_graph(3, 3)):
            assert PreprocessPlan.build(g).trivial

    def test_bowtie_plan_is_all_constants(self):
        plan = PreprocessPlan.build(bowtie_graph(4))
        assert not plan.trivial
        assert plan.variable_atoms == ()
        # Reductions already peel the chordal bowtie completely.
        assert set(plan.constant_bags) >= {frozenset({0, 1, 2, 3})}

    def test_ring_plan_has_variable_atoms(self):
        plan = PreprocessPlan.build(ring_of_cycles(2, 5))
        assert not plan.trivial
        assert len(plan.variable_atoms) == 2
        assert "atoms" in plan.describe()

    def test_plan_snapshot_is_independent(self):
        g = ring_of_cycles(2, 5)
        plan = PreprocessPlan.build(g)
        g.add_edge(0, 2)
        assert plan.graph != g  # the plan kept its own copy

    def test_session_caches_plans(self):
        session = Session()
        g = ring_of_cycles(2, 5)
        session.top(g, "fill", k=2)
        session.top(g, "fill", k=4)
        session.top(g, "width", k=2)  # same duplicate-insensitive plan
        assert session.cache_info()["plans"] == 1
        session.top(g, "sum-exp-bags", k=2)  # duplicate-sensitive plan
        assert session.cache_info()["plans"] == 2


class TestComposedStream:
    def test_product_counts_and_order(self):
        # Two C5 atoms: 5 x 5 = 25 answers, non-decreasing cost.
        session = Session()
        results = list(session.stream(ring_of_cycles(2, 5), "fill"))
        assert len(results) == 25
        costs = [r.cost for r in results]
        assert costs == sorted(costs)
        assert costs[0] == 4.0  # 2 fill edges per pentagon
        assert len({frozenset(r.triangulation.bags) for r in results}) == 25
        assert [r.rank for r in results] == list(range(25))

    def test_composed_stream_type_and_stats(self):
        session = Session()
        g = ring_of_cycles(2, 4)
        stream = session.stream(g, "width")
        assert isinstance(stream, ComposedRankedStream)
        assert stream.pieces == 2
        results = list(stream)
        assert len(results) == 4  # 2 x 2 C4 triangulations
        assert stream.exhausted
        response = session.top(g, "width", k=10)
        assert response.stats.preprocessed
        assert response.stats.engine == "composed"
        assert response.stats.expansions > 0

    def test_triangulations_live_on_the_original_graph(self):
        session = Session()
        g = paper_example_graph()
        for r in session.stream(g, "fill"):
            assert r.triangulation.graph == g
            # Every bag is a subset of the original vertex set.
            for bag in r.triangulation.bags:
                assert bag <= g.vertex_set()

    def test_chordal_graph_single_answer(self):
        session = Session()
        for g in (bowtie_graph(4), tree_of_cliques(5, 4), path_graph(6)):
            results = list(session.stream(g, "sum-exp-bags"))
            assert len(results) == 1
            assert results[0].triangulation.chordal_graph == g

    def test_width_bound_filters_product(self):
        session = Session()
        g = ring_of_cycles(2, 5)
        direct = Session(preprocess=False)
        for bound in (1, 2, 3):
            a = signature(session.stream(g, "width", width_bound=bound))
            b = signature(direct.stream(g, "width", width_bound=bound))
            assert [c for c, _ in a] == [c for c, _ in b]
            assert {bags for _, bags in a} == {bags for _, bags in b}

    def test_width_bound_infeasible_constant(self):
        # The bowtie forces a 4-clique bag; width bound 2 kills it all.
        session = Session()
        results = list(
            session.stream(bowtie_graph(4), "width", width_bound=2)
        )
        assert results == []

    def test_disconnected_product(self):
        session = Session()
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])  # triangle...
        g.add_edges([(10, 11), (11, 12), (12, 13), (13, 10)])  # ...and C4
        results = list(session.stream(g, "fill"))
        assert len(results) == 2  # 1 triangle x 2 C4 triangulations
        assert all(
            frozenset({0, 1, 2}) in r.triangulation.bags for r in results
        )

    def test_engine_thread_through(self):
        session = Session()
        g = ring_of_cycles(2, 5)
        serial = signature(session.stream(g, "fill"))
        pooled = signature(session.stream(g, "fill", engine=2))
        assert serial == pooled

    def test_strategy_instance_falls_back_to_direct(self):
        from repro.engine import SerialStrategy

        session = Session()
        g = ring_of_cycles(2, 4)
        response = session.top(g, "fill", k=2, engine=SerialStrategy())
        assert not response.stats.preprocessed

    def test_preprocess_flag_per_request_overrides_session(self):
        g = paper_example_graph()
        on_session = Session()
        assert on_session.top(g, "width", k=1).stats.preprocessed
        assert not on_session.top(
            g, "width", k=1, preprocess=False
        ).stats.preprocessed
        off_session = Session(preprocess=False)
        assert not off_session.top(g, "width", k=1).stats.preprocessed
        assert off_session.top(
            g, "width", k=1, preprocess=True
        ).stats.preprocessed

    def test_diverse_and_decompositions_modes(self):
        session = Session()
        g = ring_of_cycles(2, 5)
        diverse = session.diverse(g, "fill", k=3, min_distance=1)
        assert len(diverse.results) == 3
        decomps = session.decompositions(g, "fill", k=5)
        assert len(decomps.results) == 5
        assert decomps.stats.preprocessed


class TestComposedCheckpoint:
    def test_every_pause_point(self):
        session = Session()
        g = ring_of_cycles(2, 5)
        uninterrupted = full_signature(session.stream(g, "fill"))
        assert len(uninterrupted) == 25
        for pause in range(len(uninterrupted) + 1):
            stream = session.stream(g, "fill")
            head = [next(stream) for _ in range(pause)]
            token = stream.checkpoint()
            stream.close()
            assert isinstance(token, ComposedCheckpoint)
            tail = list(session.resume_stream(token))
            assert (
                full_signature(head) + full_signature(tail) == uninterrupted
            ), pause

    def test_resume_in_cold_session_from_bytes(self):
        emitting = Session()
        g = ring_of_cycles(2, 5)
        uninterrupted = full_signature(emitting.stream(g, "fill"))
        stream = emitting.stream(g, "fill")
        head = [next(stream) for _ in range(7)]
        blob = stream.checkpoint().to_bytes()
        stream.close()
        cold = Session()  # no cached contexts, no plan, no graph object
        tail = list(cold.resume_stream(blob))
        assert full_signature(head) + full_signature(tail) == uninterrupted

    def test_paginated_top_chains(self):
        session = Session()
        g = ring_of_cycles(2, 5)
        page1 = session.top(g, "fill", k=10)
        page2 = session.resume(page1.checkpoint, k=10)
        page3 = session.resume(page2.checkpoint, k=10)
        combined = full_signature(
            list(page1.results) + list(page2.results) + list(page3.results)
        )
        assert combined == full_signature(session.stream(g, "fill"))
        assert page3.stats.exhausted

    def test_exhausted_token_resumes_without_context_builds(self):
        """Resuming a fully-drained composed token must not rebuild any
        atom context just to emit nothing (regression: it used to run
        the whole per-atom initialization for an empty frontier)."""
        emitting = Session()
        g = ring_of_cycles(2, 5)
        stream = emitting.stream(g, "fill")
        drained = list(stream)
        assert len(drained) == 25
        token = stream.checkpoint()
        assert token.exhausted
        cold = Session()
        assert list(cold.resume_stream(token.to_bytes())) == []
        assert cold.cache_info()["builds"] == 0

    def test_resume_rejects_other_cost(self):
        session = Session()
        stream = session.stream(ring_of_cycles(2, 4), "fill")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        with pytest.raises(ValueError, match="cost"):
            session.resume_stream(token, cost="width")

    def test_corrupted_token_rejected(self):
        session = Session()
        stream = session.stream(ring_of_cycles(2, 4), "fill")
        next(stream)
        token = stream.checkpoint()
        stream.close()
        import dataclasses

        forged = dataclasses.replace(token, fingerprint="0" * 64)
        with pytest.raises(ValueError, match="corrupted"):
            session.resume_stream(forged)


class _BagCountCost(BagCost):
    """Number of bags — composes additively, but only when the lift never
    drops a shadowed bag (duplicate sensitive)."""

    name = "bag-count"

    def evaluate(self, graph, bags):
        return float(len(bags))


class TestCustomCompositions:
    @pytest.fixture
    def bag_count_cost(self):
        cost_registry.register_cost("bag-count", lambda graph: _BagCountCost())
        try:
            yield
        finally:
            cost_registry._FACTORIES.pop("bag-count", None)
            recompose._COMPOSITIONS.pop("bag-count", None)

    def test_sound_registration(self, bag_count_cost):
        register_composition("bag-count", "sum", duplicate_sensitive=True)
        on = Session()
        off = Session(preprocess=False)
        for g in (paper_example_graph(), ring_of_cycles(2, 4)):
            a = signature(on.stream(g, "bag-count"))
            b = signature(off.stream(g, "bag-count"))
            assert [c for c, _ in a] == [c for c, _ in b]
            assert {bags for _, bags in a} == {bags for _, bags in b}

    def test_unsound_registration_detected(self, bag_count_cost):
        # Lying about duplicate sensitivity: the reduction lift on a
        # triangle shadows a bag, the composed value disagrees with the
        # recomputed cost, and the stream refuses to emit a wrong answer.
        register_composition("bag-count", "sum", duplicate_sensitive=False)
        session = Session()
        from repro.graphs.generators import complete_graph

        with pytest.raises(RuntimeError, match="composition"):
            list(session.stream(complete_graph(3), "bag-count"))
