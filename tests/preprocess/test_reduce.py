"""Unit tests for the safe reduction rules and the invertible trace."""

from __future__ import annotations

from repro.costs.classic import FillInCost, SumExpBagCost, WidthCost
from repro.core.mintriang import min_triangulation
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    tree_graph,
)
from repro.graphs.graph import Graph
from repro.preprocess.reduce import reduce_graph


class TestRules:
    def test_path_reduces_completely(self):
        reduced, trace = reduce_graph(path_graph(5))
        assert reduced.num_vertices() == 0
        assert trace.eliminated == frozenset(range(5))
        assert {s.kind for s in trace.steps} <= {"isolated", "pendant"}

    def test_tree_reduces_completely(self):
        reduced, trace = reduce_graph(tree_graph(12, seed=4))
        assert reduced.num_vertices() == 0
        assert len(trace) == 12

    def test_cycle_is_irreducible(self):
        reduced, trace = reduce_graph(cycle_graph(5))
        assert not trace
        assert reduced.num_vertices() == 5

    def test_complete_graph_peels_simplicially(self):
        reduced, trace = reduce_graph(complete_graph(4))
        assert reduced.num_vertices() == 0
        assert trace.steps[0].kind == "simplicial"
        assert trace.steps[0].bag == frozenset(range(4))

    def test_simplicial_fringe_on_cycle(self):
        # C5 with a pendant triangle: vertex 5 adjacent to the edge (0, 1).
        g = cycle_graph(5)
        g.add_edge(5, 0)
        g.add_edge(5, 1)
        reduced, trace = reduce_graph(g)
        assert trace.eliminated == frozenset({5})
        assert trace.steps[0].kind == "simplicial"
        assert trace.steps[0].bag == frozenset({5, 0, 1})
        assert reduced.vertex_set() == frozenset(range(5))

    def test_input_graph_is_not_mutated(self):
        g = path_graph(4)
        before = g.copy()
        reduce_graph(g)
        assert g == before

    def test_deterministic(self):
        g = tree_graph(10, seed=7)
        _r1, t1 = reduce_graph(g)
        _r2, t2 = reduce_graph(g)
        assert t1 == t2

    def test_describe(self):
        _reduced, trace = reduce_graph(path_graph(3))
        assert "eliminated" in trace.describe()
        assert reduce_graph(cycle_graph(4))[1].describe() == "no reductions"


class TestLift:
    def lifted_bags(self, graph):
        reduced, trace = reduce_graph(graph)
        assert reduced.num_vertices() == 0  # fully reduced inputs only
        return trace.lift_bags(())

    def test_lift_matches_direct_min_triangulation(self):
        for g in (path_graph(5), star_graph(4), tree_graph(9, seed=1)):
            direct = min_triangulation(g, WidthCost())
            assert self.lifted_bags(g) == direct.bags

    def test_lift_drops_shadowed_bags(self):
        # Single edge: eliminating 0 (pendant) leaves {1}; un-eliminating
        # inserts {0,1} which shadows the singleton bag {1}.
        reduced, trace = reduce_graph(path_graph(2))
        assert reduced.num_vertices() == 0
        assert trace.lift_bags(()) == frozenset([frozenset({0, 1})])

    def test_lift_on_partial_reduction(self):
        g = cycle_graph(4)
        g.add_edge(4, 0)  # pendant on the cycle
        reduced, trace = reduce_graph(g)
        assert trace.eliminated == frozenset({4})
        # Triangulate the remaining C4 and lift: must equal the direct
        # triangulation's bag set on the full graph.
        inner = min_triangulation(reduced, FillInCost())
        lifted = trace.lift_bags(inner.bags)
        direct = min_triangulation(g, FillInCost())
        assert lifted == direct.bags


class TestDuplicateSensitiveMode:
    def test_triangle_not_reduced(self):
        # Eliminating a triangle vertex would shadow the bag {a, b} of
        # the leftover edge; duplicate-sensitive mode must refuse.
        reduced, trace = reduce_graph(
            complete_graph(3), duplicate_sensitive=True
        )
        assert not trace
        assert reduced.num_vertices() == 3

    def test_safe_simplicial_still_reduced(self):
        # Pendant triangle on C5: after removing vertex 5 the cycle keeps
        # a full component seeing {0, 1}, so {0, 1} is never a bag and
        # the elimination is allowed even in duplicate-sensitive mode.
        g = cycle_graph(5)
        g.add_edge(5, 0)
        g.add_edge(5, 1)
        _reduced, trace = reduce_graph(g, duplicate_sensitive=True)
        assert trace.eliminated == frozenset({5})

    def test_isolated_always_safe(self):
        g = Graph(vertices=[0, 1], edges=[])
        _reduced, trace = reduce_graph(g, duplicate_sensitive=True)
        assert trace.eliminated == frozenset({0, 1})

    def test_sum_exp_exactness_on_allowed_reductions(self):
        # Whatever duplicate-sensitive mode eliminates must keep the cost
        # exactly additive: lifted cost == reduced cost + bag terms.
        cost = SumExpBagCost(2.0)
        g = cycle_graph(5)
        g.add_edge(5, 0)
        g.add_edge(5, 1)
        reduced, trace = reduce_graph(g, duplicate_sensitive=True)
        inner = min_triangulation(reduced, cost)
        lifted = trace.lift_bags(inner.bags)
        assert cost.evaluate(g, lifted) == inner.cost + sum(
            2.0 ** len(b) for b in trace.bags
        )
