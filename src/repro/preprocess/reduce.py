"""Safe reduction rules: eliminate vertices whose bag is forced.

A vertex ``v`` that is *simplicial* (its neighborhood is a clique) is
untouched by every minimal triangulation: no minimal triangulation adds a
fill edge at ``v``, its unique bag is ``N[v]``, and ``H`` is a minimal
triangulation of ``G`` if and only if ``H − v`` is a minimal
triangulation of ``G − v``.  Eliminating such vertices — isolated
vertices (``deg 0``) and pendant vertices (``deg 1``) are the cheap
special cases — shrinks the graph *without losing any solution*, and the
recorded :class:`ReductionStep` sequence is invertible: the bags of any
minimal triangulation of the reduced graph lift back to the bags of the
corresponding minimal triangulation of the original graph
(:meth:`ReductionTrace.lift_bags`).

The lift for one step is exact::

    bags(H) = {b in bags(H − v) : b ⊄ N[v]} ∪ {N[v]}

— the only bag a step can shadow is ``N(v)`` itself (any ``b ⊆ N(v)``
that was maximal in ``H − v`` must *equal* ``N(v)``, because ``N(v)`` is
a clique of the reduced graph).  That shadowing is harmless for costs
that only read the covered vertex pairs (width, fill-in), but it shifts
the value of per-bag *sums* such as ``Σ 2^|b|``.  For those
duplicate-sensitive costs, :func:`reduce_graph` applies a step only when
``N(v)`` provably cannot be a bag of the reduced graph — i.e. ``N(v)``
is not a potential maximal clique of ``G − v``, which for a clique means
some component of ``(G − v) \\ N(v)`` sees all of ``N(v)``.  See
``duplicate_safe`` below.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..graphs.graph import Graph, Vertex
from ..graphs.ordering import vertex_sort_key

Bag = frozenset[Vertex]

__all__ = ["ReductionStep", "ReductionTrace", "reduce_graph"]

#: Step kinds, from cheapest to most general rule.
ISOLATED = "isolated"
PENDANT = "pendant"
SIMPLICIAL = "simplicial"


@dataclass(frozen=True)
class ReductionStep:
    """One vertex elimination: ``vertex`` left the graph with bag ``bag``.

    Attributes
    ----------
    kind:
        ``"isolated"`` (degree 0), ``"pendant"`` (degree 1) or
        ``"simplicial"`` (neighborhood is a clique); the first two are
        special cases of the third, labelled for reporting.
    vertex:
        The eliminated vertex.
    bag:
        ``N[v]`` *at elimination time* — the bag this vertex contributes
        to every lifted triangulation.  A clique of the original graph,
        so it contributes no fill.
    """

    kind: str
    vertex: Vertex
    bag: Bag


@dataclass(frozen=True)
class ReductionTrace:
    """The invertible record of a reduction run.

    ``steps`` are in elimination order: ``steps[0]`` was removed from the
    original graph, ``steps[-1]`` from the next-to-last intermediate
    graph.  :meth:`lift_bags` plays them back in reverse.
    """

    steps: tuple[ReductionStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)

    @property
    def eliminated(self) -> frozenset[Vertex]:
        """All vertices removed by this trace."""
        return frozenset(s.vertex for s in self.steps)

    @property
    def bags(self) -> tuple[Bag, ...]:
        """The forced bags, in elimination order."""
        return tuple(s.bag for s in self.steps)

    def lift_bags(self, bags: Iterable[Bag]) -> frozenset[Bag]:
        """Bags of the original-graph triangulation corresponding to
        ``bags`` of the reduced-graph triangulation.

        Exact inverse of the elimination sequence: un-eliminating ``v``
        inserts ``N[v]`` and drops any bag it strictly contains (only
        ``N(v)`` itself can be strictly contained — see module docstring).
        """
        lifted = set(bags)
        for step in reversed(self.steps):
            lifted = {b for b in lifted if not b < step.bag}
            lifted.add(step.bag)
        return frozenset(lifted)

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.steps:
            return "no reductions"
        kinds: dict[str, int] = {}
        for s in self.steps:
            kinds[s.kind] = kinds.get(s.kind, 0) + 1
        parts = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return f"eliminated {len(self.steps)} vertices ({parts})"


def _duplicate_safe(graph: Graph, v: Vertex) -> bool:
    """Whether eliminating simplicial ``v`` can never shadow a bag.

    ``N(v)`` appears as a bag of some minimal triangulation of ``G − v``
    iff it is a potential maximal clique of ``G − v``; for a clique that
    holds iff **no** component of ``(G − v) \\ N(v)`` is full (sees all
    of ``N(v)``).  So a full component ⇒ ``N(v)`` is never a bag ⇒ the
    lift never drops anything ⇒ per-bag-sum costs stay exactly additive.

    Isolated vertices are always safe: their bag ``{v}`` contains no
    other vertex, and nothing in the reduced graph can equal ``N(v) = ∅``.
    """
    closed = graph.closed_neighborhood(v)
    if len(closed) == 1:  # isolated
        return True
    neighborhood = graph.adj(v)
    for comp in graph.components_without(closed):
        if graph.neighborhood_of_set(comp) == neighborhood:
            return True
    return False


def reduce_graph(
    graph: Graph, *, duplicate_sensitive: bool = False
) -> tuple[Graph, ReductionTrace]:
    """Exhaustively apply the safe reduction rules to a copy of ``graph``.

    Parameters
    ----------
    graph:
        Any graph (connectivity is not required; reductions are local).
    duplicate_sensitive:
        ``True`` when the downstream cost is a per-bag sum whose value
        changes if the lift drops a shadowed bag (e.g. ``sum-exp-bags``).
        Restricts eliminations to :func:`_duplicate_safe` ones, keeping
        the cost of a lifted triangulation *exactly* the sum of the
        per-piece costs.  Width and fill-in are insensitive (a shadowed
        bag is a clique of the original graph inside a larger bag, so it
        carries no fill and never the maximum), and pass ``False``.

    Returns
    -------
    ``(reduced, trace)`` — the reduced graph (a new object; the input is
    not mutated) and the elimination trace.  Vertices are scanned in
    canonical label order and passes repeat to a fixpoint, so the trace
    is deterministic for a given input.
    """
    work = graph.copy()
    steps: list[ReductionStep] = []
    changed = True
    while changed:
        changed = False
        for v in sorted(work.vertices, key=vertex_sort_key):
            degree = work.degree(v)
            if degree == 0:
                kind = ISOLATED
            elif degree == 1:
                kind = PENDANT
            elif work.is_clique(work.adj(v)):
                kind = SIMPLICIAL
            else:
                continue
            if duplicate_sensitive and not _duplicate_safe(work, v):
                continue
            bag = frozenset(work.closed_neighborhood(v))
            work.remove_vertex(v)
            steps.append(ReductionStep(kind=kind, vertex=v, bag=bag))
            changed = True
    return work, ReductionTrace(steps=tuple(steps))
