"""Preprocessing: safe reductions and clique-separator atom decomposition.

The once-per-graph initialization of the ranked enumerator — minimal
separators, PMCs, full blocks — is exponential in the worst case and is
what caps the graph sizes the workloads reach.  Minimal triangulations
decompose along **clique minimal separators** (Leimer 1993): the minimal
triangulations of ``G`` are exactly the unions of minimal triangulations
of its *atoms*, and their maximal-clique sets partition accordingly.  On
top of that, **safe reduction rules** (isolated / pendant / simplicial
vertex elimination) peel vertices whose bag in every minimal
triangulation is forced, recording an invertible trace.

This package implements that pipeline:

* :mod:`repro.preprocess.reduce` — the reduction rules and the
  :class:`~repro.preprocess.reduce.ReductionTrace` that lifts bag sets
  back to the original graph;
* :mod:`repro.preprocess.atoms` — clique-minimal-separator atom
  decomposition (via an MCS-M minimal triangulation and clique-tree
  contraction);
* :mod:`repro.preprocess.recompose` — per-atom ranked streams combined
  by a lazy Lawler-style product merge into one stream that is ranked
  over the *full* graph, plus the per-cost composition registry that
  decides when this is exact.

The public entry point is :meth:`repro.api.Session.stream` and friends
with ``preprocess=True`` (the default); everything here is also usable
directly for inspection::

    from repro.preprocess import PreprocessPlan

    plan = PreprocessPlan.build(graph)
    plan.describe()   # reductions applied, atoms found
"""

from .reduce import ReductionStep, ReductionTrace, reduce_graph
from .atoms import AtomDecomposition, atom_decomposition
from .recompose import (
    ComposedCheckpoint,
    ComposedRankedStream,
    CostComposition,
    PreprocessPlan,
    composition_for,
    register_composition,
)

__all__ = [
    "ReductionStep",
    "ReductionTrace",
    "reduce_graph",
    "AtomDecomposition",
    "atom_decomposition",
    "CostComposition",
    "composition_for",
    "register_composition",
    "PreprocessPlan",
    "ComposedRankedStream",
    "ComposedCheckpoint",
]
