"""Clique-minimal-separator atom decomposition.

The *atoms* of a graph (Leimer 1993) are its maximal connected induced
subgraphs without a clique separator.  They are unique, they overlap
exactly on clique minimal separators, and they are the right granularity
for triangulation problems: ``H`` is a minimal triangulation of ``G``
iff ``H[A]`` is a minimal triangulation of ``G[A]`` for every atom ``A``
and ``H`` is their union — moreover ``MaxClq(H)`` is partitioned by the
atoms, which is what makes per-atom cost composition exact
(:mod:`repro.preprocess.recompose`).

The construction follows Berry, Pogorelcnik and Simonet ("An
introduction to clique minimal separator decomposition", 2010):

1. compute **any** minimal triangulation ``H`` of ``G`` (we use MCS-M,
   already in :mod:`repro.triangulation.mcs_m`; atoms do not depend on
   which minimal triangulation is used);
2. the clique minimal separators of ``G`` are exactly the minimal
   separators of ``H`` that are cliques in ``G``;
3. take a clique tree of ``H`` and **contract** every tree edge whose
   adhesion is *not* a clique in ``G``; the atoms are the unions of the
   bags in each contracted component.

Step 3 also handles disconnected input for free: the stitched clique
"tree" of a disconnected chordal graph uses empty adhesions between
components, the empty set is a clique, so components are never merged —
connected-component splitting is just the degenerate case of the
decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.cliquetree import clique_tree
from ..graphs.graph import Graph, Vertex
from ..graphs.ordering import vertex_set_sort_key
from ..triangulation.mcs_m import mcs_m

Separator = frozenset[Vertex]
Atom = frozenset[Vertex]

__all__ = ["AtomDecomposition", "atom_decomposition"]


@dataclass(frozen=True)
class AtomDecomposition:
    """The atoms of a graph, in canonical (sorted) order.

    Attributes
    ----------
    graph:
        The decomposed graph.
    atoms:
        Atom vertex sets, sorted by ``(size, labels)`` so every kernel,
        process and session enumerates them in the same order.
    separators:
        The clique minimal separators that cut the atom tree apart
        (empty adhesions between connected components excluded).
    """

    graph: Graph
    atoms: tuple[Atom, ...]
    separators: tuple[Separator, ...]

    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def is_trivial(self) -> bool:
        """Whether the graph is a single atom (nothing to decompose)."""
        return len(self.atoms) <= 1

    def subgraphs(self) -> list[Graph]:
        """The induced subgraphs ``G[A]``, in atom order."""
        return [self.graph.subgraph(a) for a in self.atoms]

    def describe(self) -> str:
        """One-line human-readable summary."""
        sizes = ", ".join(str(len(a)) for a in self.atoms)
        return (
            f"{len(self.atoms)} atoms (sizes {sizes}) via "
            f"{len(self.separators)} clique minimal separators"
        )


class _DisjointSet:
    """Minimal union-find over clique-tree bag indices."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        self._parent[self.find(x)] = self.find(y)


def atom_decomposition(graph: Graph) -> AtomDecomposition:
    """Decompose ``graph`` into its atoms.

    Works on connected and disconnected inputs alike (each connected
    component decomposes independently; isolated vertices are singleton
    atoms).  The result is unique — independent of the minimal
    triangulation computed internally — by Leimer's theorem, and the
    returned order is canonical.
    """
    if graph.num_vertices() == 0:
        return AtomDecomposition(graph=graph, atoms=(), separators=())
    triangulated, _meo = mcs_m(graph)
    bags, edges = clique_tree(triangulated)
    bag_list = sorted(bags, key=vertex_set_sort_key)
    index = {bag: i for i, bag in enumerate(bag_list)}
    ds = _DisjointSet(len(bag_list))
    cut_separators: set[Separator] = set()
    for a, b in edges:
        adhesion = a & b
        if graph.is_clique(adhesion):
            if adhesion:
                cut_separators.add(frozenset(adhesion))
        else:
            ds.union(index[a], index[b])

    groups: dict[int, set[Vertex]] = {}
    for bag, i in index.items():
        groups.setdefault(ds.find(i), set()).update(bag)
    atoms = tuple(
        sorted(
            (frozenset(g) for g in groups.values()),
            key=lambda a: (len(a), vertex_set_sort_key(a)),
        )
    )
    # Only separators that actually cut two *distinct* atoms apart are
    # clique minimal separators of G; an adhesion repeated inside one
    # contracted group does not qualify.  With every non-clique edge
    # contracted, each clique adhesion does separate its two sides, so
    # the collected set is exactly the cut set (sorted for determinism).
    separators = tuple(sorted(cut_separators, key=vertex_set_sort_key))
    return AtomDecomposition(graph=graph, atoms=atoms, separators=separators)
