"""Exact ranked recomposition of per-atom streams.

Leimer's decomposition theorem gives a bijection

    minimal triangulations of G
        ≅  Π over atoms A of (minimal triangulations of G[A])

with ``MaxClq(H)`` partitioned by the atoms, and the safe reductions of
:mod:`repro.preprocess.reduce` extend it with forced constant bags.  For
a cost that *composes* over that partition — a per-bag maximum such as
width, or a per-bag sum such as fill-in — the cost of a combination is a
monotone function of the per-atom costs, so the ranked stream over the
full graph is a **ranked product join** of the per-atom ranked streams:
a priority queue over index vectors into the atom sequences, seeded at
``(0, …, 0)``, popping the cheapest combination and pushing its
successors (one coordinate advanced), exactly the Lawler-style frontier
the core enumerator uses over partitions.

:class:`CostComposition` declares how (and whether) a registered cost
composes; :class:`PreprocessPlan` packages one graph's reductions and
atoms; :class:`ComposedRankedStream` is the merged stream, emitting
:class:`~repro.core.ranked.RankedResult` objects whose triangulations
live on the *original* graph (bags lifted through the reduction trace).
Every emission recomputes the cost on the lifted bag set and verifies it
against the composed value — the composition invariants are checked on
every answer, not assumed.

The merged stream is pausable like the core one:
:meth:`ComposedRankedStream.checkpoint` captures the product frontier
plus one native checkpoint per atom stream, and
:meth:`ComposedRankedStream.from_checkpoint` resumes the exact sequence.
"""

from __future__ import annotations

import heapq
import pickle
import time
from collections.abc import Callable, Collection, Iterator
from dataclasses import dataclass

from ..costs.base import Bag, BagCost
from ..core.ranked import RankedResult
from ..core.mintriang import Triangulation
from ..graphs.graph import Graph, Vertex
from .atoms import Atom, AtomDecomposition, atom_decomposition
from .reduce import ReductionStep, ReductionTrace, reduce_graph

Separator = frozenset[Vertex]

__all__ = [
    "CostComposition",
    "composition_for",
    "register_composition",
    "PreprocessPlan",
    "ComposedRankedStream",
    "ComposedCheckpoint",
    "COMPOSED_CHECKPOINT_VERSION",
]


# ----------------------------------------------------------------------
# Cost composition registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostComposition:
    """How a registered cost combines across atoms and forced bags.

    Attributes
    ----------
    mode:
        ``"sum"`` — the cost of a combined triangulation is the sum of
        the per-piece costs (fill-in, per-bag sums); ``"max"`` — it is
        their maximum (width).  Both are monotone in every coordinate,
        which is what makes the ranked product join emit in
        non-decreasing order.
    duplicate_sensitive:
        ``True`` when the cost reads each bag individually (e.g.
        ``Σ 2^|b|``), so a bag shadowed by the reduction lift would shift
        the sum.  Reductions are then restricted to provably shadow-free
        eliminations (see :func:`repro.preprocess.reduce.reduce_graph`).
        Pair-based costs (fill-in) and max-based costs (width) are
        insensitive.
    """

    mode: str
    duplicate_sensitive: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("sum", "max"):
            raise ValueError(f"mode must be 'sum' or 'max', got {self.mode!r}")

    def combine(self, constant: float, values: "Collection[float]") -> float:
        if self.mode == "sum":
            return constant + sum(values)
        return max(constant, *values) if values else constant

    def identity(self) -> float:
        """The neutral constant contribution (no forced bags yet)."""
        return 0.0 if self.mode == "sum" else float("-inf")


#: cost registry name -> composition declaration.  ``lex-width-fill`` is
#: deliberately absent: its width term is scaled by ``|E(G)|`` of the
#: graph it is constructed for, so per-atom values are not comparable and
#: preprocessing auto-disables (Session falls back to the direct path).
_COMPOSITIONS: dict[str, CostComposition] = {
    "width": CostComposition(mode="max"),
    "fill": CostComposition(mode="sum"),
    "sum-exp-bags": CostComposition(mode="sum", duplicate_sensitive=True),
}


def register_composition(
    name: str, mode: str, *, duplicate_sensitive: bool = False
) -> None:
    """Declare that the cost registered under ``name`` composes.

    Only declare compositions for costs whose value on a disjoint-atom
    bag partition genuinely equals the ``mode``-combination of the
    per-atom values *and* whose factory is graph-independent (the same
    evaluation semantics on every induced subgraph) — the composed
    stream verifies this on every emitted answer and raises on a lie.
    """
    _COMPOSITIONS[name] = CostComposition(
        mode=mode, duplicate_sensitive=duplicate_sensitive
    )


def composition_for(spec: object) -> CostComposition | None:
    """The composition for a cost spec, or ``None`` (⇒ preprocessing off).

    Only registry *names* compose: a :class:`BagCost` instance carries no
    declaration, so it routes to the direct pipeline.
    """
    if isinstance(spec, str):
        return _COMPOSITIONS.get(spec)
    return None


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PreprocessPlan:
    """One graph's reductions and atoms, ready to stream.

    Attributes
    ----------
    graph:
        The original graph (a private snapshot; never mutated).
    trace:
        The reduction trace (possibly empty).
    reduced:
        The graph after reductions.
    decomposition:
        Atoms of :attr:`reduced`.
    complete_atoms:
        Atoms that are cliques — each has exactly one minimal
        triangulation (itself, one bag), so it contributes a constant.
    variable_atoms:
        Atoms needing a real per-atom ranked stream.
    """

    graph: Graph
    trace: ReductionTrace
    reduced: Graph
    decomposition: AtomDecomposition
    complete_atoms: tuple[Atom, ...]
    variable_atoms: tuple[Atom, ...]

    @staticmethod
    def build(graph: Graph, *, duplicate_sensitive: bool = False) -> "PreprocessPlan":
        """Reduce, decompose, and classify the atoms of ``graph``.

        The plan depends on the graph and the ``duplicate_sensitive``
        flag of the cost composition only — it is shared across cost
        specs with the same flag, width bounds, engines and kernels.
        """
        snapshot = graph.copy()
        reduced, trace = reduce_graph(
            snapshot, duplicate_sensitive=duplicate_sensitive
        )
        decomposition = atom_decomposition(reduced)
        complete = tuple(
            a for a in decomposition.atoms if reduced.is_clique(a)
        )
        variable = tuple(
            a for a in decomposition.atoms if not reduced.is_clique(a)
        )
        return PreprocessPlan(
            graph=snapshot,
            trace=trace,
            reduced=reduced,
            decomposition=decomposition,
            complete_atoms=complete,
            variable_atoms=variable,
        )

    @property
    def trivial(self) -> bool:
        """Whether preprocessing found nothing to exploit.

        A trivial plan (no reductions, at most one atom, nothing forced)
        means the composed stream would wrap a single inner stream — the
        session then uses the direct pipeline, which additionally keeps
        the native checkpoint format.
        """
        return not self.trace and self.decomposition.is_trivial

    @property
    def constant_bags(self) -> tuple[Bag, ...]:
        """Forced bags: reduction bags plus complete-atom cliques."""
        return tuple(self.trace.bags) + tuple(self.complete_atoms)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.trace.describe()}; {self.decomposition.describe()} "
            f"({len(self.variable_atoms)} enumerated, "
            f"{len(self.complete_atoms)} complete)"
        )


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------
COMPOSED_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class PieceState:
    """Resumable state of one per-atom stream inside a composed stream."""

    atom: Atom
    #: Results already drained from the atom stream, in rank order, as
    #: ``(value, bags)`` pairs — the product frontier indexes into this.
    drained: tuple[tuple[float, frozenset[Bag]], ...]
    #: Native checkpoint of the atom stream *after* draining ``drained``.
    checkpoint: object  # repro.api.checkpoint.StreamCheckpoint


@dataclass(frozen=True)
class ComposedCheckpoint:
    """Full resumable state of a paused composed (preprocessed) stream.

    Mirrors :class:`repro.api.checkpoint.StreamCheckpoint` for the
    product merge: the original graph, the reduction steps and atom
    classification (stored explicitly, so resume does not depend on
    re-deriving the plan), one :class:`PieceState` per variable atom,
    and the merge frontier (index vectors with their combined values and
    FIFO tie-break counters).
    """

    fingerprint: str
    cost_spec: str
    width_bound: int | None
    next_rank: int
    next_order: int
    vertices: tuple[Vertex, ...]
    edges: tuple[tuple[Vertex, Vertex], ...]
    steps: tuple[ReductionStep, ...]
    complete_atoms: tuple[Atom, ...]
    pieces: tuple[PieceState, ...]
    frontier: tuple[tuple[float, int, tuple[int, ...]], ...]
    visited: tuple[tuple[int, ...], ...]
    version: int = COMPOSED_CHECKPOINT_VERSION

    @property
    def exhausted(self) -> bool:
        """Whether the stream had no further answers when checkpointed."""
        return not self.frontier

    def restore_graph(self) -> Graph:
        """Rebuild the checkpointed original graph."""
        return Graph(vertices=self.vertices, edges=self.edges)

    def to_bytes(self) -> bytes:
        """Serialize to an opaque token (pickle; trusted state only)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(data: bytes) -> "ComposedCheckpoint":
        """Deserialize a token produced by :meth:`to_bytes`."""
        obj = pickle.loads(data)
        if not isinstance(obj, ComposedCheckpoint):
            raise ValueError(
                f"checkpoint payload is {type(obj).__name__}, "
                "expected ComposedCheckpoint"
            )
        if obj.version != COMPOSED_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported composed-checkpoint version {obj.version} "
                f"(this build reads version {COMPOSED_CHECKPOINT_VERSION})"
            )
        return obj


# ----------------------------------------------------------------------
# The composed stream
# ----------------------------------------------------------------------
class _Piece:
    """One variable atom: its live ranked stream plus the drained prefix."""

    __slots__ = ("atom", "stream", "drained", "done")

    def __init__(self, atom: Atom, stream, drained=()) -> None:
        self.atom = atom
        self.stream = stream  # RankedStream (duck-typed)
        self.drained: list[tuple[float, frozenset[Bag]]] = list(drained)
        self.done = False

    def result_at(self, index: int):
        """The ``(value, bags)`` of rank ``index``, draining as needed."""
        while len(self.drained) <= index and not self.done:
            try:
                result = next(self.stream)
            except StopIteration:
                self.done = True
                break
            self.drained.append(
                (result.cost, frozenset(result.triangulation.bags))
            )
        if index < len(self.drained):
            return self.drained[index]
        return None

    @property
    def expansions(self) -> int:
        return self.stream.expansions if self.stream is not None else 0

    def close(self) -> None:
        if self.stream is not None:
            self.stream.close()


#: Opens a fresh ranked stream over one atom subgraph (rank 0).
PieceOpener = Callable[[Graph], object]
#: Reopens a ranked stream over one atom subgraph from its checkpoint.
PieceResumer = Callable[[Graph, object], object]


class ComposedRankedStream(Iterator[RankedResult]):
    """Ranked enumeration over the full graph via its pieces.

    Presents the same surface as :class:`repro.api.stream.RankedStream`
    (iteration, ``checkpoint()``, ``close()``, the stats properties), so
    sessions and collectors treat both uniformly.  Emission order is
    deterministic: combined values tie-break by a FIFO counter over the
    product frontier, and the per-atom streams are themselves
    deterministic.
    """

    def __init__(
        self,
        *,
        graph: Graph,
        trace: ReductionTrace,
        complete_atoms: tuple[Atom, ...],
        pieces: list[_Piece],
        cost: BagCost,
        composition: CostComposition,
        cost_spec: str,
        fingerprint: str,
        width_bound: int | None,
        heap: list[tuple[float, int, tuple[int, ...]]],
        visited: set[tuple[int, ...]],
        next_rank: int,
        next_order: int,
        started: float | None = None,
    ) -> None:
        self._graph = graph
        self._trace = trace
        self._complete_atoms = complete_atoms
        self._pieces = pieces
        self._cost = cost
        self._composition = composition
        self._cost_spec = cost_spec
        self._fingerprint = fingerprint
        self._width_bound = width_bound
        self._heap = heap
        heapq.heapify(self._heap)
        self._visited = visited
        self._rank = next_rank
        self._base_rank = next_rank
        self._order = next_order
        self._closed = False
        self._started = time.perf_counter() if started is None else started
        # Forced-bag contribution, fixed across all combinations.
        constant = composition.identity()
        for bag in self._constant_bag_list():
            value = cost.evaluate(graph.subgraph(bag), (bag,))
            constant = composition.combine(
                constant, (value,)
            ) if composition.mode == "max" else constant + value
        self._constant_value = constant
        self.engine_name = "composed"

    def _constant_bag_list(self) -> tuple[Bag, ...]:
        return tuple(self._trace.bags) + tuple(self._complete_atoms)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        plan: PreprocessPlan,
        cost: BagCost,
        composition: CostComposition,
        *,
        cost_spec: str,
        fingerprint: str,
        width_bound: int | None = None,
        open_piece: PieceOpener,
    ) -> "ComposedRankedStream":
        """Begin the composed enumeration at rank 0.

        ``open_piece`` receives each variable atom's induced subgraph
        and returns a started ranked stream over it (the session wires
        this to its context cache, so atom initializations are cached
        and shared across requests).
        """
        started = time.perf_counter()
        graph = plan.graph
        # A forced bag larger than the width bound makes every
        # triangulation of the full graph infeasible.
        if width_bound is not None and any(
            len(b) > width_bound + 1 for b in plan.constant_bags
        ):
            return cls._exhausted_stream(
                plan, cost, composition, cost_spec, fingerprint,
                width_bound, started,
            )
        pieces: list[_Piece] = []
        for atom in plan.variable_atoms:
            pieces.append(_Piece(atom, open_piece(graph.subgraph(atom))))
        vec0 = tuple(0 for _ in pieces)
        heap: list[tuple[float, int, tuple[int, ...]]] = []
        visited: set[tuple[int, ...]] = {vec0}
        stream = cls(
            graph=graph,
            trace=plan.trace,
            complete_atoms=plan.complete_atoms,
            pieces=pieces,
            cost=cost,
            composition=composition,
            cost_spec=cost_spec,
            fingerprint=fingerprint,
            width_bound=width_bound,
            heap=heap,
            visited=visited,
            next_rank=0,
            next_order=1,
            started=started,
        )
        if all(p.result_at(0) is not None for p in pieces):
            heapq.heappush(
                stream._heap, (stream._combined_value(vec0), 0, vec0)
            )
        else:
            stream.close()  # some atom is infeasible: no answers at all
        return stream

    @classmethod
    def _exhausted_stream(
        cls, plan, cost, composition, cost_spec, fingerprint, width_bound,
        started,
    ) -> "ComposedRankedStream":
        stream = cls(
            graph=plan.graph,
            trace=plan.trace,
            complete_atoms=plan.complete_atoms,
            pieces=[],
            cost=cost,
            composition=composition,
            cost_spec=cost_spec,
            fingerprint=fingerprint,
            width_bound=width_bound,
            heap=[],
            visited=set(),
            next_rank=0,
            next_order=0,
            started=started,
        )
        stream.close()
        return stream

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: ComposedCheckpoint,
        cost: BagCost,
        composition: CostComposition,
        *,
        resume_piece: PieceResumer,
    ) -> "ComposedRankedStream":
        """Resume the exact sequence a prior composed stream paused.

        ``resume_piece`` receives each variable atom's subgraph and its
        native checkpoint and returns the resumed per-atom stream.  An
        exhausted token short-circuits: no atom stream (and hence no
        atom context) is ever touched just to emit nothing.
        """
        started = time.perf_counter()
        graph = checkpoint.restore_graph()
        pieces: list[_Piece] = []
        if checkpoint.frontier:
            for state in checkpoint.pieces:
                inner = resume_piece(
                    graph.subgraph(state.atom), state.checkpoint
                )
                pieces.append(_Piece(state.atom, inner, drained=state.drained))
        return cls(
            graph=graph,
            trace=ReductionTrace(steps=checkpoint.steps),
            complete_atoms=checkpoint.complete_atoms,
            pieces=pieces,
            cost=cost,
            composition=composition,
            cost_spec=checkpoint.cost_spec,
            fingerprint=checkpoint.fingerprint,
            width_bound=checkpoint.width_bound,
            heap=list(checkpoint.frontier),
            visited=set(checkpoint.visited),
            next_rank=checkpoint.next_rank,
            next_order=checkpoint.next_order,
            started=started,
        )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _combined_value(self, vec: tuple[int, ...]) -> float:
        values = [
            self._pieces[i].drained[v][0] for i, v in enumerate(vec)
        ]
        return self._composition.combine(self._constant_value, values)

    def __iter__(self) -> "ComposedRankedStream":
        return self

    def __next__(self) -> RankedResult:
        if self._closed or not self._heap:
            self.close()
            raise StopIteration
        value, _order, vec = heapq.heappop(self._heap)
        bags: set[Bag] = set()
        for i, v in enumerate(vec):
            bags |= self._pieces[i].drained[v][1]
        bags.update(self._complete_atoms)
        lifted = self._trace.lift_bags(bags)
        verify = self._cost.evaluate(self._graph, lifted)
        if verify != value:
            raise RuntimeError(
                f"cost composition violated: composed value {value} but "
                f"{self._cost.name} evaluates to {verify} on the lifted "
                "bag set — the cost's registered composition is unsound "
                "for this graph"
            )
        result = RankedResult(
            triangulation=Triangulation(self._graph, lifted, value),
            rank=self._rank,
            elapsed_seconds=time.perf_counter() - self._started,
            include=frozenset(),
            exclude=frozenset(),
        )
        self._rank += 1

        # Eager successor expansion (one coordinate advanced), keeping
        # the invariant that the frontier always holds every pending
        # combination — which is what makes checkpoint() correct here.
        for i in range(len(vec)):
            succ = vec[:i] + (vec[i] + 1,) + vec[i + 1 :]
            if succ in self._visited:
                continue
            if self._pieces[i].result_at(vec[i] + 1) is None:
                self._visited.add(succ)  # atom exhausted: never available
                continue
            self._visited.add(succ)
            heapq.heappush(
                self._heap, (self._combined_value(succ), self._order, succ)
            )
            self._order += 1
        if not self._heap:
            self.close()
        return result

    # ------------------------------------------------------------------
    # State (RankedStream-compatible surface)
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the enumerated (original) graph."""
        return self._fingerprint

    @property
    def cost_spec(self) -> str:
        """Registry name of the cost (always present for composed runs)."""
        return self._cost_spec

    @property
    def next_rank(self) -> int:
        """Rank the next emitted result will carry."""
        return self._rank

    @property
    def emitted(self) -> int:
        """Number of results emitted by *this* stream object."""
        return self._rank - self._base_rank

    @property
    def expansions(self) -> int:
        """Constrained DP runs executed across all atom streams."""
        return sum(p.expansions for p in self._pieces)

    @property
    def exhausted(self) -> bool:
        """Whether the enumeration space is fully emitted."""
        return not self._heap

    @property
    def pieces(self) -> int:
        """Number of enumerated (variable-atom) streams."""
        return len(self._pieces)

    def checkpoint(self) -> ComposedCheckpoint:
        """Snapshot the product frontier; the stream remains usable.

        Stored in sorted (pop) order like the core checkpoint: the
        ``(value, order)`` prefix is a total order, so any heap layout
        of the same entries resumes identically.
        """
        from ..api.fingerprint import canonical_edges, canonical_vertices

        piece_states = []
        for piece in self._pieces:
            piece_states.append(
                PieceState(
                    atom=piece.atom,
                    drained=tuple(piece.drained),
                    checkpoint=piece.stream.checkpoint(),
                )
            )
        return ComposedCheckpoint(
            fingerprint=self._fingerprint,
            cost_spec=self._cost_spec,
            width_bound=self._width_bound,
            next_rank=self._rank,
            next_order=self._order,
            vertices=canonical_vertices(self._graph),
            edges=canonical_edges(self._graph),
            steps=self._trace.steps,
            complete_atoms=self._complete_atoms,
            pieces=tuple(piece_states),
            frontier=tuple(sorted(self._heap)),
            visited=tuple(sorted(self._visited)),
        )

    def close(self) -> None:
        """Release every atom stream's engine.  Idempotent."""
        self._closed = True
        for piece in self._pieces:
            piece.close()

    def __enter__(self) -> "ComposedRankedStream":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
