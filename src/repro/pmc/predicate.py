"""The potential-maximal-clique predicate and PMC-local structure.

A vertex set ``Ω`` is a *potential maximal clique* (PMC) of ``G`` if some
minimal triangulation of ``G`` has ``Ω`` as a maximal clique — equivalently
(Theorem 2.2), iff ``Ω`` is a bag of some proper tree decomposition.

Bouchitté and Todinca (2001) give the local characterization implemented by
:func:`is_pmc`:  ``Ω`` is a PMC iff

1. no component of ``G \\ Ω`` is *full* (sees all of ``Ω``), and
2. ``Ω`` is *completable*: saturating, inside ``Ω``, the neighborhood
   ``S_i = N(C_i)`` of every component ``C_i`` of ``G \\ Ω`` turns ``Ω``
   into a clique.  Concretely: every pair of ``Ω``-vertices is adjacent in
   ``G`` or contained together in some ``S_i``.

The ``S_i`` are exactly the minimal separators *associated* to ``Ω``
(``MinSep_G(Ω)``), and the pairs ``(S_i, C_i)`` are the full blocks
associated to ``Ω`` (``Blck_G(Ω)``), used throughout the block DP.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs.bitgraph import BitGraph, iter_bits
from ..graphs.graph import Graph, Vertex
from ..separators.blocks import Block

Separator = frozenset[Vertex]
PMC = frozenset[Vertex]

__all__ = [
    "is_pmc",
    "is_pmc_mask",
    "minseps_of_pmc",
    "minseps_of_pmc_masks",
    "blocks_of_pmc",
]


def is_pmc(graph: Graph, omega: Iterable[Vertex]) -> bool:
    """Whether ``omega`` is a potential maximal clique of ``graph``."""
    om = set(omega)
    if not om:
        return False
    components = graph.components_without(om)
    neighborhoods = [graph.neighborhood_of_set(c) for c in components]
    # Condition 1: no full component.
    for nbh in neighborhoods:
        if len(nbh) == len(om):  # N(C) ⊆ Ω always; equal size means equal set
            return False
    # Condition 2: completability.
    om_list = list(om)
    for i, u in enumerate(om_list):
        adj_u = graph.adj(u)
        for v in om_list[i + 1 :]:
            if v in adj_u:
                continue
            if not any(u in nbh and v in nbh for nbh in neighborhoods):
                return False
    return True


def is_pmc_mask(bitgraph: BitGraph, omega: int) -> bool:
    """Mask-level :func:`is_pmc` (the PMC-enumeration hot predicate).

    Condition 2 is evaluated one ``Ω``-vertex at a time: the vertices of
    ``Ω`` that ``u`` is *not* adjacent to must all lie in the union of
    the component neighborhoods containing ``u`` — a pair ``(u, v)`` is
    co-located in some ``S_i`` exactly when that union covers ``v``.
    """
    if not omega:
        return False
    adj = bitgraph.adj
    neighborhoods = []
    for _comp, nbh in bitgraph.components_with_neighborhoods(
        bitgraph.full_mask & ~omega
    ):
        # Condition 1: no full component (every N(C) is a subset of Ω).
        if nbh == omega:
            return False
        neighborhoods.append(nbh)
    # Condition 2: completability.
    for u in iter_bits(omega):
        bit = 1 << u
        need = omega & ~(adj[u] | bit)
        if not need:
            continue
        cover = 0
        for nbh in neighborhoods:
            if nbh & bit:
                cover |= nbh
        if need & ~cover:
            return False
    return True


def minseps_of_pmc(graph: Graph, omega: Iterable[Vertex]) -> set[Separator]:
    """``MinSep_G(Ω)``: the minimal separators associated to PMC ``Ω``.

    These are the neighborhoods of the components of ``G \\ Ω``; they are
    exactly the minimal separators of ``G`` contained in ``Ω``.
    """
    om = set(omega)
    out: set[Separator] = set()
    for comp in graph.components_without(om):
        nbh = graph.neighborhood_of_set(comp)
        if nbh:
            out.add(frozenset(nbh))
    return out


def minseps_of_pmc_masks(bitgraph: BitGraph, omega: int) -> set[int]:
    """Mask-level :func:`minseps_of_pmc`."""
    out: set[int] = set()
    for _comp, nbh in bitgraph.components_with_neighborhoods(
        bitgraph.full_mask & ~omega
    ):
        if nbh:
            out.add(nbh)
    return out


def blocks_of_pmc(graph: Graph, omega: Iterable[Vertex]) -> list[Block]:
    """``Blck_G(Ω)``: the blocks associated to PMC ``Ω`` (all are full)."""
    om = set(omega)
    out: list[Block] = []
    for comp in graph.components_without(om):
        nbh = graph.neighborhood_of_set(comp)
        out.append(Block(frozenset(nbh), frozenset(comp)))
    return out
