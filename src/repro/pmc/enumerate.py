"""Listing all potential maximal cliques (Bouchitté and Todinca, 2002).

The enumeration processes the vertices ``v_1, …, v_n`` in BFS order (so that
prefixes of a connected graph stay connected) and maintains ``PMC(G_i)`` for
the growing induced prefix graphs ``G_i = G[{v_1..v_i}]``.  The step from
``G' = G_i`` to ``G = G_{i+1}`` (new vertex ``a``) relies on the
ONE_MORE_VERTEX theorem: every PMC ``Ω`` of ``G`` is of one of four forms,

1. ``Ω`` is a PMC of ``G'`` (or the singleton ``{a}``);
2. ``Ω = Ω' ∪ {a}`` for a PMC ``Ω'`` of ``G'``;
3. ``Ω = S ∪ {a}`` for a minimal separator ``S`` of ``G``;
4. ``Ω = S ∪ (T ∩ C)`` or ``Ω = S ∪ C`` where ``S`` is a minimal separator
   of ``G`` with ``a ∉ S``, ``C`` is **any** component of ``G \\ S``, and
   ``T`` is a minimal separator of ``G'``.

Case 4 is deliberately wider than the form usually quoted (which takes
only the component containing ``a``): the narrow family provably misses
PMCs — see ``docs/algorithms.md`` §3 — while the wide one passes
exhaustive cross-validation against the brute-force oracle.  Each
candidate is verified with :func:`repro.pmc.predicate.is_pmc`, so the
output is exactly ``PMC(G)`` whenever the candidate family is complete,
and the oracle tests establish completeness.

The per-prefix minimal separator sets are derived *top-down* from a single
Berry–Bordat–Cogis run on the full graph, using the vertex-removal lemma:
for every minimal separator ``S'`` of ``G − a``, either ``S'`` or
``S' ∪ {a}`` is a minimal separator of ``G``.  Hence
``MinSep(G − a) ⊆ {S, S \\ {a} : S ∈ MinSep(G)}`` and one minimality check
per candidate recovers the exact set — far cheaper than re-running BBC on
every prefix.

A ``budget`` (maximum number of PMCs) may be supplied; exceeding it raises
:class:`~repro.separators.berry.SeparatorLimitExceeded`, which the
experiment harness uses to classify graphs as "PMC-intractable"
(Figure 5 of the paper).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs.bitgraph import BitGraph, VertexIndexer
from ..graphs.graph import Graph, Vertex
from ..graphs.kernels import KernelSpec, resolve_kernel
from ..separators.berry import (
    SeparatorLimitExceeded,
    is_minimal_separator,
    is_minimal_separator_mask,
    minimal_separator_masks,
    minimal_separators,
)
from .predicate import is_pmc, is_pmc_mask

Separator = frozenset[Vertex]
PMC = frozenset[Vertex]

__all__ = [
    "potential_maximal_cliques",
    "potential_maximal_clique_masks",
    "prefix_minimal_separators",
    "prefix_minimal_separator_masks",
    "one_more_vertex",
    "one_more_vertex_masks",
]


def prefix_minimal_separators(
    graph: Graph,
    order: Sequence[Vertex],
    full_separators: set[Separator] | None = None,
    kernel: str | KernelSpec = "sets",
) -> list[set[Separator]]:
    """``MinSep(G_i)`` for every prefix ``G_i = G[order[:i]]``, ``i = 1..n``.

    Derived top-down from ``MinSep(G)`` via the vertex-removal lemma (see
    module docstring).  ``full_separators`` may be passed when already
    computed; otherwise BBC runs once on ``graph`` under ``kernel``
    (resolved through the registry; the default stays the label-level
    oracle because this function is the reference pipeline — callers on
    a fast kernel pass the separators in, or pass their kernel here).
    """
    n = len(order)
    if full_separators is None:
        full_separators = minimal_separators(
            graph, kernel=resolve_kernel(kernel)
        )
    per_prefix: list[set[Separator]] = [set() for _ in range(n)]
    if n == 0:
        return per_prefix
    per_prefix[n - 1] = set(full_separators)
    current = graph
    for i in range(n - 1, 0, -1):
        a = order[i]
        smaller = current.without((a,))
        candidates: set[Separator] = set()
        for s in per_prefix[i]:
            candidates.add(s - {a} if a in s else s)
        per_prefix[i - 1] = {
            s for s in candidates if is_minimal_separator(smaller, s)
        }
        current = smaller
    return per_prefix


def one_more_vertex(
    bigger: Graph,
    new_vertex: Vertex,
    pmcs_smaller: set[PMC],
    minseps_smaller: set[Separator],
    minseps_bigger: set[Separator],
    budget: int | None = None,
) -> set[PMC]:
    """One step of the Bouchitté–Todinca enumeration: ``PMC(G' + a)``.

    Parameters mirror the theorem: ``bigger`` is ``G`` (already containing
    ``new_vertex = a``), ``pmcs_smaller`` / ``minseps_smaller`` describe
    ``G' = G − a``, and ``minseps_bigger`` is ``MinSep(G)``.
    """
    a = new_vertex
    out: set[PMC] = set()
    checked: set[PMC] = set()

    def consider(candidate: frozenset[Vertex]) -> None:
        if candidate in checked:
            return
        checked.add(candidate)
        if is_pmc(bigger, candidate):
            out.add(candidate)
            if budget is not None and len(out) > budget:
                raise SeparatorLimitExceeded(
                    f"more than {budget} potential maximal cliques", partial=out
                )

    # The new vertex alone (it may start a fresh component of the prefix).
    consider(frozenset((a,)))

    # Cases 1 and 2: PMCs of G', possibly extended by a.
    for om in pmcs_smaller:
        consider(om)
        consider(om | {a})

    # Case 3: S ∪ {a} for S ∈ MinSep(G).
    for s in minseps_bigger:
        consider(s | {a})

    # Case 4: S ∪ (T ∩ C) and S ∪ C, for S ∈ MinSep(G) avoiding a,
    # T ∈ MinSep(G'), C ranging over the components of G \ S.
    for s in minseps_bigger:
        if a in s:
            continue
        for comp in bigger.components_without(s):
            consider(s | comp)
            for t in minseps_smaller:
                inter = t & comp
                if inter and not inter <= s:
                    consider(s | inter)
    return out


# ---------------------------------------------------------------------------
# Bitset (mask-level) kernel
# ---------------------------------------------------------------------------
def prefix_minimal_separator_masks(
    bitgraph: BitGraph,
    order: Sequence[int],
    full_separator_masks: set[int],
) -> list[set[int]]:
    """Mask-level :func:`prefix_minimal_separators`.

    ``order`` holds vertex *indices*; prefix graphs are induced bitmask
    views, and the vertex-removal candidate ``S \\ {a}`` is a single
    ``& ~bit`` (covering both branches of the set-kernel candidate
    construction at once).
    """
    n = len(order)
    per_prefix: list[set[int]] = [set() for _ in range(n)]
    if n == 0:
        return per_prefix
    per_prefix[n - 1] = set(full_separator_masks)
    prefix_mask = 0
    for v in order:
        prefix_mask |= 1 << v
    batched = getattr(bitgraph, "BATCHED", False)
    for i in range(n - 1, 0, -1):
        abit = 1 << order[i]
        prefix_mask &= ~abit
        smaller = bitgraph.induced(prefix_mask)
        candidates = {s & ~abit for s in per_prefix[i]}
        if batched:
            ordered = sorted(candidates)
            flags = smaller.is_minimal_separator_batch(ordered)
            per_prefix[i - 1] = {
                s for s, ok in zip(ordered, flags) if ok
            }
        else:
            per_prefix[i - 1] = {
                s for s in candidates if is_minimal_separator_mask(smaller, s)
            }
    return per_prefix


def one_more_vertex_masks(
    bigger: BitGraph,
    new_vertex: int,
    pmcs_smaller: set[int],
    minseps_smaller: set[int],
    minseps_bigger: set[int],
    budget: int | None = None,
) -> set[int]:
    """Mask-level :func:`one_more_vertex` (identical candidate family).

    ``checked`` hashes machine ints rather than frozensets, and the
    case-4 inner condition ``inter ≠ ∅ and inter ⊄ S`` collapses to one
    ``inter & ~S`` test.
    """
    if getattr(bigger, "BATCHED", False):
        return _one_more_vertex_masks_batched(
            bigger,
            new_vertex,
            pmcs_smaller,
            minseps_smaller,
            minseps_bigger,
            budget=budget,
        )
    abit = 1 << new_vertex
    out: set[int] = set()
    checked: set[int] = set()
    labels_of = bigger.indexer.labels_of

    def consider(candidate: int) -> None:
        if candidate in checked:
            return
        checked.add(candidate)
        if is_pmc_mask(bigger, candidate):
            out.add(candidate)
            if budget is not None and len(out) > budget:
                raise SeparatorLimitExceeded(
                    f"more than {budget} potential maximal cliques",
                    partial={labels_of(m) for m in out},
                )

    consider(abit)
    for om in pmcs_smaller:
        consider(om)
        consider(om | abit)
    for s in minseps_bigger:
        consider(s | abit)
    for s in minseps_bigger:
        if s & abit:
            continue
        for comp in bigger.components_without(s):
            consider(s | comp)
            for t in minseps_smaller:
                inter = t & comp
                if inter & ~s:
                    consider(s | inter)
    return out


def _one_more_vertex_masks_batched(
    bigger: BitGraph,
    new_vertex: int,
    pmcs_smaller: set[int],
    minseps_smaller: set[int],
    minseps_bigger: set[int],
    budget: int | None = None,
) -> set[int]:
    """Batched ONE_MORE_VERTEX: same candidate family, whole-array ops.

    Candidate *generation* vectorizes case 4 — one batched component
    sweep over every ``G \\ S``, then the full ``(S, C) × T``
    intersection grid as one array expression per chunk.  Candidate
    *verification* splits by provenance: candidates born from a
    ``(S, C)`` pair (cases 3 and 4, the bulk of the family) carry a
    separator decomposition of ``G \\ Ω``, so they go through
    :meth:`NumpyBitGraph.is_pmc_restricted_batch` — a closure over the
    tiny region ``C \\ Ω`` plus a precomputed static cover for the
    untouched components of ``G \\ S`` — while the rest (cases 1/2)
    take the full-region :meth:`NumpyBitGraph.is_pmc_batch`.  The
    verified set is identical to the scalar loop's; only discovery
    order differs, which the set semantics (and a sorted verification
    order) make unobservable.
    """
    import numpy as np

    abit = 1 << new_vertex
    full = bigger.full_mask
    labels_of = bigger.indexer.labels_of

    candidates: set[int] = {abit}
    for om in pmcs_smaller:
        candidates.add(om)
        candidates.add(om | abit)
    for s in minseps_bigger:
        if s & abit:
            candidates.add(s | abit)  # == s; no decomposition applies

    # Cases 3 and 4, vectorized: components of every G \ S in one
    # batch, then S ∪ {a}, S ∪ C directly and S ∪ (T ∩ C) as an outer
    # intersection grid.  Each candidate remembers the (S, C) pair that
    # produced it (first discovery wins; any witness pair is valid).
    prov: dict[int, int] = {}
    pair_comp: list[int] = []
    pair_static: list[list[int]] = []
    n = bigger.n_index

    def add_pair(mask: int, pid: int) -> None:
        if mask not in candidates:
            candidates.add(mask)
            prov[mask] = pid

    avoiding = [s for s in minseps_bigger if not s & abit]
    if avoiding:
        comp_lists = bigger.components_with_neighborhoods_batch(
            [full & ~s for s in avoiding]
        )
        pair_s: list[int] = []
        pair_c: list[int] = []
        for s, comps in zip(avoiding, comp_lists):
            base = len(pair_comp)
            for ci, (comp, _nbh) in enumerate(comps):
                pid = base + ci
                pair_s.append(s)
                pair_c.append(comp)
                pair_comp.append(comp)
                # Static condition-2 cover of the pair: for u ∈ S, the
                # OR of N(D) over the *other* components D of G \ S
                # whose neighborhood contains u.
                rows = [0] * n
                for oc, (ocomp, onbh) in enumerate(comps):
                    if oc == ci:
                        continue
                    m = onbh
                    while m:
                        low = m & -m
                        rows[low.bit_length() - 1] |= onbh
                        m ^= low
                pair_static.append(rows)
                add_pair(s | comp, pid)
                if comp & abit:
                    add_pair(s | abit, pid)
        if pair_s and minseps_smaller:
            t_words = bigger._to_words(sorted(minseps_smaller))
            n_t = t_words.shape[0]
            chunk = max(1, (1 << 21) // max(1, n_t * bigger.n_words))
            for start in range(0, len(pair_s), chunk):
                s_words = bigger._to_words(pair_s[start : start + chunk])
                c_words = bigger._to_words(pair_c[start : start + chunk])
                inter = c_words[:, None, :] & t_words[None, :, :]
                extra = inter & ~s_words[:, None, :]
                valid = (extra != 0).any(axis=2)
                rows_w = (s_words[:, None, :] | inter)[valid]
                if rows_w.size == 0:
                    continue
                if bigger.n_words == 1:
                    uniq, first = np.unique(rows_w[:, 0], return_index=True)
                    uniq = uniq[:, None]
                else:
                    uniq, first = np.unique(rows_w, axis=0, return_index=True)
                # Map each unique mask back to the (S, C) grid row that
                # first produced it.
                grid_row = np.flatnonzero(valid.reshape(-1)) // n_t
                for mask, fi in zip(
                    bigger._to_ints(uniq), grid_row[first].tolist()
                ):
                    add_pair(mask, start + int(fi))

    # Pack the per-pair static covers once; verification chunks below
    # index into this stack.
    static_stack = None
    if prov:
        flat_rows: list[int] = []
        for rows in pair_static:
            flat_rows.extend(rows)
        static_stack = bigger._to_words(flat_rows).reshape(
            len(pair_static), n, bigger.n_words
        )

    out: set[int] = set()
    ordered = sorted(candidates)
    chunk = bigger._chunk_size()
    for start in range(0, len(ordered), chunk):
        part = ordered[start : start + chunk]
        flags = [False] * len(part)
        plain = [i for i, m in enumerate(part) if m not in prov]
        paired = [i for i, m in enumerate(part) if m in prov]
        if plain:
            for i, ok in zip(plain, bigger.is_pmc_batch([part[i] for i in plain])):
                flags[i] = ok
        if paired:
            oms = [part[i] for i in paired]
            pids = [prov[om] for om in oms]
            regs = [pair_comp[p] & ~om for p, om in zip(pids, oms)]
            static = static_stack[np.asarray(pids, dtype=np.intp)]
            for i, ok in zip(
                paired, bigger.is_pmc_restricted_batch(oms, regs, static)
            ):
                flags[i] = ok
        for cand, ok in zip(part, flags):
            if ok:
                out.add(cand)
                if budget is not None and len(out) > budget:
                    raise SeparatorLimitExceeded(
                        f"more than {budget} potential maximal cliques",
                        partial={labels_of(m) for m in out},
                    )
    return out


def potential_maximal_clique_masks(
    bitgraph: BitGraph,
    separator_masks: set[int] | None = None,
    budget: int | None = None,
    order: Sequence[int] | None = None,
    deadline: float | None = None,
) -> set[int]:
    """Mask-level :func:`potential_maximal_cliques` over a bit kernel."""
    import time

    if bitgraph.num_vertices() == 0:
        return set()
    if order is None:
        order = bitgraph.bfs_order()
    if separator_masks is None:
        separator_masks = minimal_separator_masks(bitgraph)
    per_prefix = prefix_minimal_separator_masks(
        bitgraph, order, separator_masks
    )

    prefix_mask = 1 << order[0]
    pmcs: set[int] = {prefix_mask}
    for i in range(1, len(order)):
        a = order[i]
        prefix_mask |= 1 << a
        bigger = bitgraph.induced(prefix_mask)
        pmcs = one_more_vertex_masks(
            bigger,
            a,
            pmcs,
            per_prefix[i - 1],
            per_prefix[i],
            budget=budget,
        )
        if deadline is not None and time.perf_counter() > deadline:
            labels_of = bitgraph.indexer.labels_of
            raise SeparatorLimitExceeded(
                "PMC enumeration hit its time budget",
                partial={labels_of(m) for m in pmcs},
            )
    return pmcs


def potential_maximal_cliques(
    graph: Graph,
    separators: set[Separator] | None = None,
    budget: int | None = None,
    order: Sequence[Vertex] | None = None,
    deadline: float | None = None,
    kernel: str | KernelSpec = "auto",
) -> set[PMC]:
    """All potential maximal cliques ``PMC(G)``.

    Parameters
    ----------
    graph:
        Input graph (may be disconnected; PMCs of a disconnected graph are
        the PMCs of its components).
    separators:
        ``MinSep(G)`` if already available (saves the BBC run).
    budget:
        Optional cap on ``|PMC(G)|``; exceeding it raises
        :class:`SeparatorLimitExceeded`.
    order:
        Optional vertex insertion order (defaults to BFS order).
    deadline:
        Optional :func:`time.perf_counter` value bounding the wall clock
        (raises :class:`SeparatorLimitExceeded` when exceeded) — the PMC
        half of the Figure 5 tractability gate.
    kernel:
        A registered kernel name or spec (see
        :mod:`repro.graphs.kernels`).  Mask-level kernels run the whole
        pipeline — prefix minimal separators, ONE_MORE_VERTEX, the PMC
        predicate — over dense bitmasks (batched whole-array ops under
        the numpy kernel) and convert the result once at the end;
        ``"sets"`` is the original label-level path.  Identical output
        under every kernel.
    """
    import time

    if graph.num_vertices() == 0:
        return set()
    spec = resolve_kernel(kernel)
    if spec.uses_masks:
        indexer = VertexIndexer(graph.vertices)
        bitgraph = spec.build_graph(graph, indexer)
        masks = potential_maximal_clique_masks(
            bitgraph,
            separator_masks=(
                None
                if separators is None
                else {indexer.mask_of(s) for s in separators}
            ),
            budget=budget,
            order=(
                None if order is None else [indexer.index_of(v) for v in order]
            ),
            deadline=deadline,
        )
        return {indexer.labels_of(m) for m in masks}
    if order is None:
        order = graph.bfs_order()
    if separators is None:
        # This branch only runs for label-level kernels, so the resolved
        # spec (not a hardcoded name) keeps the reference path honest:
        # a faster registered kernel can never be silently pinned to an
        # interpreted one, nor vice versa.
        separators = minimal_separators(graph, kernel=spec)
    per_prefix = prefix_minimal_separators(graph, order, separators, kernel=spec)

    prefix_vertices: list[Vertex] = [order[0]]
    pmcs: set[PMC] = {frozenset(prefix_vertices)}
    for i in range(1, len(order)):
        a = order[i]
        prefix_vertices.append(a)
        bigger = graph.subgraph(prefix_vertices)
        pmcs = one_more_vertex(
            bigger,
            a,
            pmcs,
            per_prefix[i - 1],
            per_prefix[i],
            budget=budget,
        )
        if deadline is not None and time.perf_counter() > deadline:
            raise SeparatorLimitExceeded(
                "PMC enumeration hit its time budget", partial=pmcs
            )
    return pmcs
