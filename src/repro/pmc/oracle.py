"""Brute-force PMC oracle for testing the incremental enumeration.

Exponential in ``|V|`` — intended only for graphs of a dozen or so vertices
in the test suite.
"""

from __future__ import annotations

from itertools import combinations

from ..graphs.graph import Graph, Vertex
from .predicate import is_pmc

PMC = frozenset[Vertex]

__all__ = ["potential_maximal_cliques_bruteforce"]


def potential_maximal_cliques_bruteforce(graph: Graph, max_n: int = 16) -> set[PMC]:
    """All PMCs by testing every vertex subset with :func:`is_pmc`.

    Raises
    ------
    ValueError
        If the graph has more than ``max_n`` vertices (guards against
        accidentally exponential test runs).
    """
    vertices = list(graph.vertices)
    if len(vertices) > max_n:
        raise ValueError(
            f"brute-force oracle limited to {max_n} vertices, got {len(vertices)}"
        )
    out: set[PMC] = set()
    for size in range(1, len(vertices) + 1):
        for subset in combinations(vertices, size):
            if is_pmc(graph, subset):
                out.add(frozenset(subset))
    return out
