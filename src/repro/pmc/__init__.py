"""Potential maximal cliques: predicate, enumeration, brute-force oracle."""

from .predicate import is_pmc, minseps_of_pmc, blocks_of_pmc
from .enumerate import (
    potential_maximal_cliques,
    prefix_minimal_separators,
    one_more_vertex,
)
from .oracle import potential_maximal_cliques_bruteforce

__all__ = [
    "is_pmc",
    "minseps_of_pmc",
    "blocks_of_pmc",
    "potential_maximal_cliques",
    "prefix_minimal_separators",
    "one_more_vertex",
    "potential_maximal_cliques_bruteforce",
]
