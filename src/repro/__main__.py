"""``python -m repro`` dispatches to the CLI."""

from .cli import run

if __name__ == "__main__":
    run()
