"""Triangulations from separator sets and back (Parra–Scheffler bridge).

Theorem 2.5 of the paper (Parra and Scheffler, 1997): saturating every
member of a *maximal* set ``M`` of pairwise-parallel minimal separators
yields a minimal triangulation ``H`` with ``MinSep(H) = M``; conversely
every minimal triangulation arises this way from its own minimal separator
set.  These two directions are :func:`saturate_separators` and
:func:`minimal_separators_of_triangulation`.

The ranked enumerator identifies each minimal triangulation with its
separator set (the Lawler–Murty "items" are minimal separators), so this
round trip is the heart of the algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs.graph import Graph, Vertex
from ..graphs.kernels import KernelSpec, resolve_kernel
from ..graphs.cliquetree import minimal_separators_chordal

Separator = frozenset[Vertex]

__all__ = [
    "saturate_separators",
    "saturate_bags",
    "minimal_separators_of_triangulation",
    "triangulation_from_bags",
]


def _saturate_masked(
    graph: Graph, groups: Iterable[Iterable[Vertex]], spec: KernelSpec
) -> Graph:
    """Saturate every vertex group of ``groups`` via a mask-level kernel.

    One pass encodes the graph as adjacency bitmasks, each group becomes
    a single mask OR per member (instead of ``O(|U|^2)`` set inserts),
    and one pass decodes back to a label-level :class:`Graph`.

    Raises
    ------
    ValueError
        If some group member is not a vertex of ``graph`` — mirroring
        :meth:`Graph.saturate`, so both kernels reject typo'd labels the
        same way instead of the indexer leaking a :class:`KeyError`.
    """
    bitgraph = spec.build_graph(graph)
    mask_of = bitgraph.indexer.mask_of
    for group in groups:
        try:
            mask = mask_of(group)
        except KeyError as exc:
            raise ValueError(
                f"saturate: vertices not in graph: {exc.args[0]!r}"
            ) from None
        bitgraph.saturate(mask)
    return bitgraph.to_graph()


def saturate_separators(
    graph: Graph,
    separators: Iterable[Separator],
    kernel: str | KernelSpec = "auto",
) -> Graph:
    """``G`` with every separator in ``separators`` saturated into a clique.

    When ``separators`` is a maximal pairwise-parallel set of minimal
    separators the result is a minimal triangulation (Theorem 2.5(1)).
    Mask-level kernels (any registered spec with the ``"masks"``
    capability; the ``"auto"`` default) saturate word-parallel over
    adjacency bitmasks; ``"sets"`` mutates a :class:`Graph` copy directly.
    """
    spec = resolve_kernel(kernel)
    if spec.uses_masks and graph.num_vertices():
        return _saturate_masked(graph, separators, spec)
    out = graph.copy()
    for s in separators:
        out.saturate(s)
    return out


def saturate_bags(
    graph: Graph,
    bags: Iterable[Iterable[Vertex]],
    kernel: str | KernelSpec = "auto",
) -> Graph:
    """``H_T``: the graph obtained from ``G`` by saturating every bag.

    This is the graph the constraint semantics of Section 6.1 are defined
    on (``κ[I,X]`` checks clique-ness of constraint separators in ``H_T``).
    """
    spec = resolve_kernel(kernel)
    if spec.uses_masks and graph.num_vertices():
        return _saturate_masked(graph, bags, spec)
    out = graph.copy()
    for bag in bags:
        out.saturate(bag)
    return out


def triangulation_from_bags(graph: Graph, bags: Iterable[Iterable[Vertex]]) -> Graph:
    """Alias of :func:`saturate_bags` with intent: bags of a decomposition."""
    return saturate_bags(graph, bags)


def minimal_separators_of_triangulation(triangulation: Graph) -> set[Separator]:
    """``MinSep(H)`` for a chordal graph ``H``.

    These are the clique-tree adhesions; for a minimal triangulation of
    ``G`` they form the maximal pairwise-parallel set identifying it
    (Theorem 2.5(2)).

    Raises
    ------
    ValueError
        If ``triangulation`` is not chordal.
    """
    return minimal_separators_chordal(triangulation)
