"""Triangulation predicates: validity and minimality.

The minimality test is the Rose–Tarjan–Lueker characterization: a chordal
supergraph ``H ⊇ G`` is a *minimal* triangulation of ``G`` iff removing any
single fill edge destroys chordality.  (Quadratic in the number of fill
edges times a chordality test — fine as a verifier, not meant as a
construction tool.)
"""

from __future__ import annotations

from ..graphs.graph import Graph, Vertex
from ..graphs.chordal import is_chordal

Edge = tuple[Vertex, Vertex]

__all__ = ["fill_edges", "is_triangulation", "is_minimal_triangulation"]


def fill_edges(graph: Graph, triangulation: Graph) -> list[Edge]:
    """The fill set ``E(H) \\ E(G)``.

    Raises
    ------
    ValueError
        If ``triangulation`` is not a supergraph of ``graph`` on the same
        vertex set.
    """
    if triangulation.vertex_set() != graph.vertex_set():
        raise ValueError("triangulation must have the same vertex set as the graph")
    fill: list[Edge] = []
    for u, v in triangulation.edges():
        if not graph.has_edge(u, v):
            fill.append((u, v))
    return fill


def is_triangulation(graph: Graph, candidate: Graph) -> bool:
    """Whether ``candidate`` is a triangulation (chordal supergraph) of
    ``graph`` on the same vertex set."""
    if candidate.vertex_set() != graph.vertex_set():
        return False
    for u, v in graph.edges():
        if not candidate.has_edge(u, v):
            return False
    return is_chordal(candidate)


def is_minimal_triangulation(graph: Graph, candidate: Graph) -> bool:
    """Whether ``candidate`` is a *minimal* triangulation of ``graph``.

    Rose–Tarjan–Lueker: minimal iff chordal and every single fill-edge
    removal breaks chordality.
    """
    if not is_triangulation(graph, candidate):
        return False
    work = candidate.copy()
    for u, v in fill_edges(graph, candidate):
        work.remove_edge(u, v)
        chordal_without = is_chordal(work)
        work.add_edge(u, v)
        if chordal_without:
            return False
    return True
