"""Elimination-game triangulations and classic ordering heuristics.

The *elimination game* saturates the current neighborhood of each vertex as
it is eliminated; the result is always a triangulation (not necessarily
minimal).  Combined with the ``min-fill`` or ``min-degree`` greedy orders
these are the standard upper-bound heuristics the treewidth community
measures against, and they serve as non-minimal counterpoints to
LB-Triang/MCS-M in tests and ablation benchmarks.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs.graph import Graph, Vertex

__all__ = [
    "elimination_game",
    "min_degree_order",
    "min_fill_order",
    "triangulate_min_fill",
    "triangulate_min_degree",
]


def elimination_game(graph: Graph, order: Sequence[Vertex]) -> Graph:
    """Triangulate by eliminating vertices in ``order``.

    Each elimination saturates the neighborhood of the vertex in the
    *current* (partially filled) graph, then removes the vertex; the union
    of all added edges over the original graph is returned.  ``order`` is a
    perfect elimination order of the result.
    """
    work = graph.copy()
    result = graph.copy()
    for v in order:
        nbrs = list(work.adj(v))
        work.saturate(nbrs)
        result.saturate(nbrs)
        work.remove_vertex(v)
    return result


def min_degree_order(graph: Graph) -> list[Vertex]:
    """Greedy minimum-degree elimination order (dynamic degrees)."""
    work = graph.copy()
    order: list[Vertex] = []
    while work.num_vertices():
        v = min(work.vertices, key=work.degree)
        order.append(v)
        work.saturate(list(work.adj(v)))
        work.remove_vertex(v)
    return order


def min_fill_order(graph: Graph) -> list[Vertex]:
    """Greedy minimum-fill elimination order (dynamic fill counts)."""
    work = graph.copy()
    order: list[Vertex] = []

    def fill_count(v: Vertex) -> int:
        nbrs = list(work.adj(v))
        missing = 0
        for i, a in enumerate(nbrs):
            adj_a = work.adj(a)
            for b in nbrs[i + 1 :]:
                if b not in adj_a:
                    missing += 1
        return missing

    while work.num_vertices():
        v = min(work.vertices, key=fill_count)
        order.append(v)
        work.saturate(list(work.adj(v)))
        work.remove_vertex(v)
    return order


def triangulate_min_fill(graph: Graph) -> Graph:
    """Elimination-game triangulation along the min-fill order."""
    return elimination_game(graph, min_fill_order(graph))


def triangulate_min_degree(graph: Graph) -> Graph:
    """Elimination-game triangulation along the min-degree order."""
    return elimination_game(graph, min_degree_order(graph))
