"""Minimal triangulation construction and verification."""

from .lb_triang import lb_triang, lb_triang_order
from .mcs_m import mcs_m
from .saturate import (
    saturate_separators,
    saturate_bags,
    triangulation_from_bags,
    minimal_separators_of_triangulation,
)
from .minimality import fill_edges, is_triangulation, is_minimal_triangulation
from .elimination import (
    elimination_game,
    min_degree_order,
    min_fill_order,
    triangulate_min_fill,
    triangulate_min_degree,
)

__all__ = [
    "lb_triang",
    "lb_triang_order",
    "mcs_m",
    "saturate_separators",
    "saturate_bags",
    "triangulation_from_bags",
    "minimal_separators_of_triangulation",
    "fill_edges",
    "is_triangulation",
    "is_minimal_triangulation",
    "elimination_game",
    "min_degree_order",
    "min_fill_order",
    "triangulate_min_fill",
    "triangulate_min_degree",
]
