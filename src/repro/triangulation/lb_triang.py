"""LB-Triang: minimal triangulation from an arbitrary vertex ordering.

Berry, Bordat, Heggernes, Simonet and Villanger (2006) show that the
following "wide-range" procedure produces a *minimal* triangulation of
``G`` for **any** processing order of the vertices:  maintain the evolving
fill graph ``H`` (initially ``G``); for each vertex ``v`` in order, compute
the connected components ``C`` of ``H \\ N_H[v]`` and saturate every
neighborhood ``N_H(C)`` (each is a minimal separator of ``H`` contained in
``N_H(v)``).

The paper under reproduction uses LB_TRIANG as the black-box triangulator
inside the CKK baseline because it yields low width/fill results in
practice; the choice of ordering is the knob (`'min-degree'` tends to work
well).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs.graph import Graph, Vertex

__all__ = ["lb_triang", "lb_triang_order"]


def lb_triang_order(graph: Graph, strategy: str = "min-degree") -> list[Vertex]:
    """A processing order for :func:`lb_triang`.

    Strategies
    ----------
    ``"min-degree"``
        Static ascending degree (cheap, effective default).
    ``"given"``
        Insertion order of the graph's vertices.
    ``"max-degree"``
        Static descending degree (useful as a deliberately bad baseline in
        experiments).
    """
    vertices = list(graph.vertices)
    if strategy == "given":
        return vertices
    if strategy == "min-degree":
        return sorted(vertices, key=graph.degree)
    if strategy == "max-degree":
        return sorted(vertices, key=graph.degree, reverse=True)
    raise ValueError(f"unknown ordering strategy {strategy!r}")


def lb_triang(
    graph: Graph,
    order: Sequence[Vertex] | None = None,
    strategy: str = "min-degree",
) -> Graph:
    """A minimal triangulation of ``graph`` via LB-Triang.

    Parameters
    ----------
    graph:
        The graph to triangulate (works on disconnected graphs too).
    order:
        Explicit processing order; overrides ``strategy``.
    strategy:
        Ordering heuristic passed to :func:`lb_triang_order` when ``order``
        is not given.

    Returns
    -------
    A new :class:`Graph` ``H ⊇ G`` that is a minimal triangulation of ``G``.
    """
    if order is None:
        order = lb_triang_order(graph, strategy)
    fill_graph = graph.copy()
    for v in order:
        closed = fill_graph.closed_neighborhood(v)
        for comp in fill_graph.components_without(closed):
            separator = fill_graph.neighborhood_of_set(comp)
            fill_graph.saturate(separator)
    return fill_graph
