"""MCS-M: minimal triangulation via maximum-cardinality search.

Berry, Blair, Heggernes and Peyton (2004) extend maximum cardinality search
to produce a minimal triangulation together with a minimal elimination
ordering.  At each step an unnumbered vertex ``v`` of maximum weight is
selected; every unnumbered vertex ``u`` for which there is a path
``v, x_1, …, x_k, u`` in ``G`` whose intermediate vertices are unnumbered
and of weight strictly less than ``w(u)`` receives a weight increment and a
fill edge ``uv`` (when ``uv`` is missing).  The reverse selection order is a
perfect elimination order of the resulting graph, which is a *minimal*
triangulation of ``G``.

Provided as an alternative black-box minimal triangulator: tests require
two independent algorithms (LB-Triang and MCS-M) to agree on minimality
invariants, and the CKK baseline can use either to diversify its seeds.
"""

from __future__ import annotations

import heapq

from ..graphs.graph import Graph, Vertex

__all__ = ["mcs_m"]


def _minimax_barriers(
    graph: Graph, source: Vertex, unnumbered: set[Vertex], weight: dict[Vertex, int]
) -> dict[Vertex, int]:
    """For each unnumbered ``u``, the smallest possible value of the maximum
    weight of an intermediate vertex on an unnumbered path ``source → u``
    (``-1`` when ``u`` is a direct neighbor: no intermediates needed).

    Dijkstra over the (max, min) semiring: extending a path through ``u``
    raises the barrier to ``max(current, w(u))``.  Intermediates need not
    themselves satisfy the MCS-M condition, so expansion is unrestricted.
    """
    barrier: dict[Vertex, int] = {}
    heap: list[tuple[int, int, Vertex]] = []
    counter = 0
    for nb in graph.adj(source):
        if nb in unnumbered:
            counter += 1
            heapq.heappush(heap, (-1, counter, nb))
    while heap:
        b, _, u = heapq.heappop(heap)
        if u in barrier:
            continue
        barrier[u] = b
        through_u = max(b, weight[u])
        for x in graph.adj(u):
            if x in unnumbered and x not in barrier and x != source:
                counter += 1
                heapq.heappush(heap, (through_u, counter, x))
    return barrier


def mcs_m(graph: Graph, start: Vertex | None = None) -> tuple[Graph, list[Vertex]]:
    """A minimal triangulation plus its minimal elimination ordering.

    Parameters
    ----------
    graph:
        The graph to triangulate (disconnected inputs are fine).
    start:
        Optional vertex to number first (i.e. eliminated last).

    Returns
    -------
    ``(H, meo)``: ``H ⊇ G`` is a minimal triangulation of ``G`` and ``meo``
    is a perfect elimination order of ``H`` (first eliminated first).
    """
    unnumbered: set[Vertex] = set(graph.vertices)
    weight: dict[Vertex, int] = {v: 0 for v in unnumbered}
    fill: set[frozenset[Vertex]] = set()
    numbering: list[Vertex] = []  # in selection order (last eliminated first)

    while unnumbered:
        if not numbering and start is not None:
            v = start
        else:
            v = max(unnumbered, key=weight.__getitem__)
        unnumbered.discard(v)
        numbering.append(v)
        barriers = _minimax_barriers(graph, v, unnumbered, weight)
        for u, b in barriers.items():
            if b < weight[u]:
                weight[u] += 1
                if not graph.has_edge(u, v):
                    fill.add(frozenset((u, v)))

    triangulated = graph.copy()
    for e in fill:
        u, w_ = tuple(e)
        triangulated.add_edge(u, w_)
    numbering.reverse()
    return triangulated, numbering
