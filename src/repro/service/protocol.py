"""The newline-delimited-JSON streaming protocol of the enumeration service.

One connection carries one job.  The client opens with a single
``request`` frame; the server answers with a stream of incremental
``answer`` frames followed by exactly one *terminal* frame:

* ``stats``     — normal completion (the page is served; a resume token
  is attached whenever the stream is pausable and not exhausted);
* ``deadline``  — the per-request deadline expired first (the token
  resumes exactly where the stream stopped);
* ``cancelled`` — the client sent an in-band ``cancel`` frame (or
  disconnected; nobody reads the frame then, but the job still winds
  down through it);
* ``error``     — the request was malformed or failed; the connection
  ends, the server lives on.

Frames are canonically encoded — ``json.dumps(..., sort_keys=True,
separators=(",", ":"))`` plus ``"\\n"`` — so a frame's byte string is a
pure function of its content.  ``answer`` frames carry no timing fields
and list their bags in the canonical vertex order: the byte sequence a
client receives for a given request is therefore **bit-identical** to
the serialization of the results ``Session.stream`` produces serially
(the service differential harness in ``tests/service/`` holds the
servers to exactly that).

Vertex labels travel as JSON values with one extension: tuple labels
(e.g. grid coordinates) are encoded as JSON arrays and decoded back to
tuples — a list is never a valid (hashable) vertex label, so the
round trip is unambiguous.

Resume tokens are the existing cross-process checkpoint byte strings
(:mod:`repro.api.checkpoint`), base64-wrapped for the JSON transport.
Checkpoints are pickle-based, so a server must never unpickle bytes it
did not mint: every wire token is therefore **HMAC-signed** with the
scheduler's token key (:func:`sign_token` / :func:`verify_token`), and
a token that fails authentication is rejected in-band before any
deserialization happens.  A structurally damaged token is a
``bad-request``; a well-formed token whose HMAC tag does not verify
raises :class:`TokenAuthError` and surfaces as the distinct error code
``token_key_mismatch`` — the signature of a key rotation or server
restart, not of corruption — so clients know re-submitting the job (not
fixing their bytes) is the remedy.  By default the key is random per
scheduler, so tokens resume against the server that minted them; share
one key across instances to make tokens portable across a pool or a
restart: pass ``token_key=`` / ``repro serve --token-secret``, or set
the ``REPRO_TOKEN_SECRET`` environment variable, which every scheduler
without an explicit key falls back to (:func:`resolve_token_key`).
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import secrets
from dataclasses import dataclass, field

from ..graphs.graph import Graph, Vertex
from ..graphs.kernels import resolve_kernel
from ..graphs.ordering import vertex_set_sort_key, vertex_sort_key

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "TokenAuthError",
    "ENV_TOKEN_SECRET",
    "resolve_token_key",
    "ServiceRequest",
    "AnswerFrame",
    "StatsFrame",
    "ServiceStatsFrame",
    "DeadlineFrame",
    "CancelledFrame",
    "ErrorFrame",
    "TERMINAL_TYPES",
    "OPS",
    "encode_frame",
    "decode_frame",
    "typed_frame",
    "encode_token",
    "decode_token",
    "graph_to_wire",
    "graph_from_wire",
    "answer_frame",
    "serialize_answers",
    "parse_request",
]

PROTOCOL_VERSION = 1

#: Valid job kinds a request frame may carry.  ``stats`` is the
#: observability kind: no graph, no token, one terminal
#: ``service-stats`` frame describing the scheduler and its workers.
OPS = ("enumerate", "top", "diverse", "decompositions", "stats")

#: Frame types that end a response stream.
TERMINAL_TYPES = frozenset(
    {"stats", "service-stats", "deadline", "cancelled", "error"}
)


class ProtocolError(ValueError):
    """A frame that violates the wire protocol (malformed, wrong type)."""


class TokenAuthError(ProtocolError):
    """A structurally valid resume token whose HMAC tag does not verify.

    Distinguished from plain :class:`ProtocolError` so the service can
    answer with the ``token_key_mismatch`` error code: the token was
    minted under a different signing key (server restart without a
    shared secret, key rotation) rather than damaged in transit, and the
    client's remedy is to re-submit the job, not to fix its bytes.
    """


# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------
def encode_frame(frame: dict) -> bytes:
    """One frame as its canonical NDJSON line (including the newline)."""
    return (
        json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> dict:
    """Parse one NDJSON line into a frame dict.

    Raises
    ------
    ProtocolError
        If the line is not valid JSON or not a JSON object.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def encode_token(token: bytes) -> str:
    """A checkpoint byte string as its JSON-safe base64 form."""
    return base64.b64encode(token).decode("ascii")


def decode_token(raw: str) -> bytes:
    """Invert :func:`encode_token`."""
    try:
        return base64.b64decode(raw.encode("ascii"), validate=True)
    except Exception as exc:
        raise ProtocolError(f"invalid resume token: {exc}") from None


#: Length of the HMAC-SHA256 tag prefixed to every signed wire token.
TOKEN_TAG_BYTES = 32


def new_token_key() -> bytes:
    """A fresh random token-signing key (32 bytes)."""
    return secrets.token_bytes(32)


#: Environment variable holding a shared token-signing secret (the
#: secret itself, not a file path) — the deployment-friendly way to keep
#: resume tokens valid across server restarts and instances.
ENV_TOKEN_SECRET = "REPRO_TOKEN_SECRET"


def resolve_token_key(explicit: bytes | None = None) -> bytes:
    """The effective token-signing key.

    Precedence: ``explicit`` bytes (``token_key=`` / ``--token-secret``),
    else the ``REPRO_TOKEN_SECRET`` environment secret (UTF-8 encoded),
    else a fresh random per-instance key.  Without the env fallback, a
    gateway or server restart silently invalidated every outstanding
    token even in deployments that *wanted* stable keys but could not
    thread a flag through their process manager.
    """
    if explicit is not None:
        return explicit
    env = os.environ.get(ENV_TOKEN_SECRET)
    if env:
        return env.encode("utf-8")
    return new_token_key()


def sign_token(key: bytes, payload: bytes) -> bytes:
    """Prefix ``payload`` with its HMAC-SHA256 tag under ``key``."""
    return hmac.new(key, payload, hashlib.sha256).digest() + payload


def verify_token(key: bytes, blob: bytes) -> bytes:
    """Authenticate a signed wire token; returns the raw payload.

    Raises
    ------
    ProtocolError
        If the blob is truncated (structural corruption) — the mandatory
        gate before the (pickle-based) checkpoint payload may be
        deserialized, since unpickling attacker-controlled bytes is code
        execution.
    TokenAuthError
        If the tag does not verify: the token was signed under a
        different key (server restart / rotation) or tampered with —
        reported to clients as ``token_key_mismatch``.
    """
    if len(blob) <= TOKEN_TAG_BYTES:
        raise ProtocolError("resume token is truncated")
    tag, payload = blob[:TOKEN_TAG_BYTES], blob[TOKEN_TAG_BYTES:]
    expected = hmac.new(key, payload, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise TokenAuthError(
            "resume token failed authentication: it was minted under a "
            "different signing key (server restart or key rotation — "
            "share a key via --token-secret or REPRO_TOKEN_SECRET to "
            "keep tokens portable), or tampered with"
        )
    return payload


# ----------------------------------------------------------------------
# Vertex labels and graphs on the wire
# ----------------------------------------------------------------------
def _encode_label(label: Vertex):
    if isinstance(label, tuple):
        return [_encode_label(x) for x in label]
    if isinstance(label, (str, int, float, bool)) or label is None:
        return label
    raise ProtocolError(
        f"vertex label {label!r} of type {type(label).__name__} is not "
        "wire-encodable (use str/int/float/bool or tuples of those)"
    )


def _decode_label(value) -> Vertex:
    if isinstance(value, list):
        return tuple(_decode_label(x) for x in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ProtocolError(
        f"wire label {value!r} of type {type(value).__name__} is not decodable"
    )


def graph_to_wire(graph: Graph) -> dict:
    """A graph as its canonical wire object (deterministic ordering)."""
    from ..api.fingerprint import canonical_edges, canonical_vertices

    return {
        "vertices": [_encode_label(v) for v in canonical_vertices(graph)],
        "edges": [
            [_encode_label(u), _encode_label(v)]
            for u, v in canonical_edges(graph)
        ],
    }


def graph_from_wire(wire) -> Graph:
    """Rebuild a graph from its wire object.

    Raises
    ------
    ProtocolError
        If the object is structurally invalid (wrong shapes, undecodable
        labels, edges over unknown vertices).
    """
    if not isinstance(wire, dict):
        raise ProtocolError(
            f"graph must be a JSON object, got {type(wire).__name__}"
        )
    vertices_raw = wire.get("vertices")
    edges_raw = wire.get("edges", [])
    if not isinstance(vertices_raw, list) or not isinstance(edges_raw, list):
        raise ProtocolError("graph needs 'vertices' and 'edges' arrays")
    vertices = [_decode_label(v) for v in vertices_raw]
    known = set(vertices)
    edges = []
    for pair in edges_raw:
        if not isinstance(pair, list) or len(pair) != 2:
            raise ProtocolError(f"edge {pair!r} is not a 2-element array")
        u, v = (_decode_label(x) for x in pair)
        if u not in known or v not in known:
            raise ProtocolError(f"edge ({u!r}, {v!r}) references unknown vertices")
        edges.append((u, v))
    try:
        return Graph(vertices=vertices, edges=edges)
    except ValueError as exc:
        raise ProtocolError(f"invalid graph: {exc}") from None


# ----------------------------------------------------------------------
# Answer serialization — the byte-identity anchor
# ----------------------------------------------------------------------
def _canonical_bags(bags) -> list:
    return [
        [_encode_label(v) for v in bag]
        for bag in sorted(
            (sorted(bag, key=vertex_sort_key) for bag in bags),
            key=vertex_set_sort_key,
        )
    ]


def _tree_to_wire(decomposition) -> dict:
    """A :class:`~repro.core.decomposition.TreeDecomposition` on the wire.

    Nodes are renumbered into their sorted-id order, so the encoding is a
    pure function of the decomposition's content.
    """
    node_ids = sorted(decomposition.bags)
    index = {node: i for i, node in enumerate(node_ids)}
    edges = sorted(
        tuple(sorted((index[a], index[b]))) for a, b in decomposition.edges
    )
    return {
        "bags": [
            [
                _encode_label(v)
                for v in sorted(decomposition.bags[node], key=vertex_sort_key)
            ]
            for node in node_ids
        ],
        "edges": [list(e) for e in edges],
    }


def answer_frame(result, rank: int | None = None) -> dict:
    """The canonical ``answer`` frame of one enumerated result.

    Accepts a :class:`~repro.core.ranked.RankedResult`, a
    :class:`~repro.core.proper.RankedDecomposition` or a bare
    :class:`~repro.core.mintriang.Triangulation` (diverse mode passes
    the selection index as ``rank``).  Deliberately timing-free: the
    frame bytes depend only on the enumerated structure, never on which
    engine, kernel, or interleaving produced it.  A decomposition result
    additionally carries its ``tree`` (node bags + tree edges), since
    distinct clique trees of one triangulation share the same bag set.
    """
    triangulation = getattr(result, "triangulation", result)
    if rank is None:
        rank = result.rank
    frame = {
        "type": "answer",
        "rank": rank,
        "cost": result.cost,
        "width": triangulation.width,
        "bags": _canonical_bags(triangulation.bags),
    }
    decomposition = getattr(result, "decomposition", None)
    if decomposition is not None:
        frame["tree"] = _tree_to_wire(decomposition)
    return frame


def serialize_answers(results) -> list[bytes]:
    """The exact frame bytes a server streams for ``results``.

    The reference side of the service differential tests: feed it the
    output of a serial ``Session.stream`` run and compare against the
    raw ``answer`` lines a client received.
    """
    return [encode_frame(answer_frame(r)) for r in results]


# ----------------------------------------------------------------------
# Typed requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceRequest:
    """One validated job admitted to the scheduler.

    ``op`` is the job kind (:data:`OPS`).  Exactly one of ``graph`` and
    ``token`` is set: fresh jobs carry the graph, resumed ones carry the
    checkpoint token of a previous ``stats`` / ``deadline`` /
    ``cancelled`` frame (``enumerate`` / ``top`` only — diverse and
    decomposition jobs are not pausable).  ``deadline`` is wall-clock
    seconds from admission; on expiry an ``enumerate``/``top`` stream is
    paused into a token rather than discarded (non-pausable ops still
    stop at the deadline, but with ``checkpoint: null``).
    """

    op: str
    graph: Graph | None = None
    token: bytes | None = field(default=None, repr=False)
    cost: str = "width"
    k: int | None = None
    width_bound: int | None = None
    #: Accepts any registered kernel name (or ``"auto"``); normalized to
    #: the resolved concrete name in ``__post_init__``, so schedulers,
    #: worker session pools, and cache keys never see ``"auto"``.
    kernel: str = "bitset"
    preprocess: bool | None = None
    min_distance: int = 1
    scan_limit: int | None = None
    per_triangulation: int | None = None
    deadline: float | None = None
    answer_budget: int | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(
                f"unknown op {self.op!r}; expected one of {', '.join(OPS)}"
            )
        # Registry-driven kernel validation: any registered, available
        # kernel (or a spec, or "auto") is accepted the moment it is
        # registered; the stored value is always the concrete name.
        try:
            resolved = resolve_kernel(self.kernel).name
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        object.__setattr__(self, "kernel", resolved)
        if self.op == "stats":
            if self.graph is not None or self.token is not None:
                raise ProtocolError("op 'stats' takes neither graph nor token")
        elif (self.graph is None) == (self.token is None):
            raise ProtocolError("request needs exactly one of graph and token")
        if self.token is not None and self.op not in ("enumerate", "top"):
            raise ProtocolError(f"op {self.op!r} cannot resume from a token")
        if not isinstance(self.cost, str):
            raise ProtocolError("cost must be a registry name string")
        if self.op == "top" and self.k is None:
            raise ProtocolError("op 'top' requires k")
        if self.op == "diverse" and self.k is None:
            raise ProtocolError("op 'diverse' requires k")
        if self.k is not None and self.k < 0:
            raise ProtocolError(f"k must be >= 0, got {self.k}")
        if self.deadline is not None and self.deadline <= 0:
            raise ProtocolError(f"deadline must be > 0, got {self.deadline}")
        if self.answer_budget is not None and self.answer_budget < 0:
            raise ProtocolError(
                f"answer_budget must be >= 0, got {self.answer_budget}"
            )
        if self.min_distance < 1:
            raise ProtocolError(
                f"min_distance must be >= 1, got {self.min_distance}"
            )

    @property
    def result_limit(self) -> int | None:
        """Total answers to stream: the tighter of ``k`` and the budget."""
        limits = [x for x in (self.k, self.answer_budget) if x is not None]
        return min(limits) if limits else None

    def to_frame(self) -> dict:
        """The request as its wire frame (inverse of :func:`parse_request`)."""
        frame: dict = {"type": "request", "v": PROTOCOL_VERSION, "op": self.op}
        if self.graph is not None:
            frame["graph"] = graph_to_wire(self.graph)
        if self.token is not None:
            frame["token"] = encode_token(self.token)
        frame["cost"] = self.cost
        for key in (
            "k",
            "width_bound",
            "preprocess",
            "scan_limit",
            "per_triangulation",
            "deadline",
            "answer_budget",
        ):
            value = getattr(self, key)
            if value is not None:
                frame[key] = value
        if self.kernel != "bitset":
            frame["kernel"] = self.kernel
        if self.min_distance != 1:
            frame["min_distance"] = self.min_distance
        return frame


def _check_field(frame: dict, key: str, types, what: str):
    value = frame.get(key)
    if value is not None and not isinstance(value, types):
        raise ProtocolError(f"{key} must be {what}, got {value!r}")
    return value


def parse_request(frame: dict) -> ServiceRequest:
    """Validate and type one ``request`` frame.

    Raises
    ------
    ProtocolError
        On any structural violation — unknown frame type, missing or
        ill-typed fields, both/neither of graph and token, bad labels.
        Semantic failures (unknown cost names, disconnected graphs, ...)
        are intentionally left to job start, where they surface as
        in-band ``error`` frames.
    """
    frame_type = frame.get("type")
    if frame_type != "request":
        raise ProtocolError(
            f"expected a 'request' frame, got type {frame_type!r}"
        )
    version = frame.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})"
        )
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op' field")
    graph = None
    if frame.get("graph") is not None:
        graph = graph_from_wire(frame["graph"])
    token = None
    if frame.get("token") is not None:
        raw = frame["token"]
        if not isinstance(raw, str):
            raise ProtocolError("token must be a base64 string")
        token = decode_token(raw)
    cost = frame.get("cost", "width")
    # bool is an int subclass; reject it explicitly for the numeric fields.
    for key in ("k", "width_bound", "scan_limit", "per_triangulation",
                "answer_budget", "min_distance", "deadline"):
        if isinstance(frame.get(key), bool):
            raise ProtocolError(f"{key} must be a number, got {frame[key]!r}")
    kernel = frame.get("kernel", "bitset")
    if not isinstance(kernel, str):
        raise ProtocolError(f"kernel must be a string, got {kernel!r}")
    # Registry membership (including "auto" resolution) is enforced by
    # ServiceRequest.__post_init__ below.
    preprocess = _check_field(frame, "preprocess", bool, "a boolean")
    deadline = _check_field(frame, "deadline", (int, float), "a number")
    min_distance = _check_field(frame, "min_distance", int, "an integer")
    return ServiceRequest(
        op=op,
        graph=graph,
        token=token,
        cost=cost if cost is not None else "width",
        k=_check_field(frame, "k", int, "an integer"),
        width_bound=_check_field(frame, "width_bound", int, "an integer"),
        kernel=kernel,
        preprocess=preprocess,
        min_distance=min_distance if min_distance is not None else 1,
        scan_limit=_check_field(frame, "scan_limit", int, "an integer"),
        per_triangulation=_check_field(
            frame, "per_triangulation", int, "an integer"
        ),
        deadline=float(deadline) if deadline is not None else None,
        answer_budget=_check_field(frame, "answer_budget", int, "an integer"),
    )


# ----------------------------------------------------------------------
# Typed server->client frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AnswerFrame:
    """One incremental answer; ``raw`` is the exact line as received.

    ``tree`` is present on ``decompositions`` answers only: a
    ``(bags, edges)`` pair where edges index into the listed bags.
    """

    rank: int
    cost: float
    width: int
    bags: tuple
    tree: "tuple | None" = None
    raw: bytes = field(compare=False, repr=False, default=b"")


@dataclass(frozen=True)
class StatsFrame:
    """Terminal frame of a normally completed job."""

    emitted: int
    expansions: int
    exhausted: bool
    elapsed_seconds: float
    engine: str
    preprocessed: bool
    next_rank: int | None
    checkpoint: bytes | None = field(repr=False, default=None)
    raw: bytes = field(compare=False, repr=False, default=b"")


@dataclass(frozen=True)
class ServiceStatsFrame:
    """Terminal frame of a ``stats`` job: server observability.

    ``scheduler`` holds the admission counters, ``workers`` one row per
    backend worker (queue depth, warm-session fingerprints, cache hit
    counts), and ``cache`` the fleet-aggregated disk-cache view —
    ``{"enabled", "path", "kinds": {kind: {hits, misses, stores,
    evictions, corrupt, entries, bytes}}}`` — empty when the server runs
    without a persistent store.
    """

    scheduler: dict
    backend: str
    workers: tuple
    cache: dict = field(default_factory=dict)
    #: Kernel-registry view: ``{"available": [...], "auto": name,
    #: "registered": {name: {description, available, priority,
    #: capabilities}}}`` (empty when talking to an older server).
    kernels: dict = field(default_factory=dict)
    raw: bytes = field(compare=False, repr=False, default=b"")


@dataclass(frozen=True)
class DeadlineFrame:
    """Terminal frame of a job cut short by its deadline."""

    emitted: int
    next_rank: int | None
    checkpoint: bytes | None = field(repr=False, default=None)
    raw: bytes = field(compare=False, repr=False, default=b"")


@dataclass(frozen=True)
class CancelledFrame:
    """Terminal frame of a cancelled job."""

    emitted: int
    next_rank: int | None
    checkpoint: bytes | None = field(repr=False, default=None)
    raw: bytes = field(compare=False, repr=False, default=b"")


@dataclass(frozen=True)
class ErrorFrame:
    """Terminal in-band error; the server connection ends, the server lives."""

    code: str
    message: str
    raw: bytes = field(compare=False, repr=False, default=b"")


def _optional_token(frame: dict) -> bytes | None:
    raw = frame.get("checkpoint")
    return decode_token(raw) if raw is not None else None


def typed_frame(frame: dict, raw: bytes = b""):
    """Lift a decoded server frame into its typed form.

    Raises
    ------
    ProtocolError
        On an unknown frame type or missing fields.
    """
    frame_type = frame.get("type")
    try:
        if frame_type == "answer":
            tree = frame.get("tree")
            return AnswerFrame(
                rank=frame["rank"],
                cost=frame["cost"],
                width=frame["width"],
                bags=tuple(
                    tuple(_decode_label(v) for v in bag)
                    for bag in frame["bags"]
                ),
                tree=(
                    (
                        tuple(
                            tuple(_decode_label(v) for v in bag)
                            for bag in tree["bags"]
                        ),
                        tuple(tuple(e) for e in tree["edges"]),
                    )
                    if tree is not None
                    else None
                ),
                raw=raw,
            )
        if frame_type == "stats":
            return StatsFrame(
                emitted=frame["emitted"],
                expansions=frame["expansions"],
                exhausted=frame["exhausted"],
                elapsed_seconds=frame["elapsed_seconds"],
                engine=frame["engine"],
                preprocessed=frame["preprocessed"],
                next_rank=frame.get("next_rank"),
                checkpoint=_optional_token(frame),
                raw=raw,
            )
        if frame_type == "service-stats":
            return ServiceStatsFrame(
                scheduler=frame["scheduler"],
                backend=frame["backend"],
                workers=tuple(frame["workers"]),
                cache=frame.get("cache") or {},
                kernels=frame.get("kernels") or {},
                raw=raw,
            )
        if frame_type == "deadline":
            return DeadlineFrame(
                emitted=frame["emitted"],
                next_rank=frame.get("next_rank"),
                checkpoint=_optional_token(frame),
                raw=raw,
            )
        if frame_type == "cancelled":
            return CancelledFrame(
                emitted=frame["emitted"],
                next_rank=frame.get("next_rank"),
                checkpoint=_optional_token(frame),
                raw=raw,
            )
        if frame_type == "error":
            return ErrorFrame(
                code=frame["code"], message=frame["message"], raw=raw
            )
    except KeyError as exc:
        raise ProtocolError(
            f"{frame_type} frame is missing field {exc.args[0]!r}"
        ) from None
    raise ProtocolError(f"unknown frame type {frame_type!r}")
