"""The multi-process execution backend: long-lived workers, warm sessions.

The in-process scheduler proved the service byte-exact under
concurrency, but every slice still contends on one GIL: aggregate
throughput *fell* as clients were added.  This module is the escape
hatch — ``backend="process"`` dispatches whole slices (answer-budget
batches, never single expansions) to a pool of worker processes spawned
once at server startup, each owning kernel-keyed
:class:`~repro.api.Session` objects whose prepared-table and
preprocess-plan caches stay warm across jobs.

Placement is by **graph-fingerprint affinity**: a request's content
fingerprint picks a consistent preferred worker, so repeat requests for
the same graph land where its context is already built; when the
preferred worker is clearly busier than the least-loaded one, the job
spills there instead (load beats warmth only past a threshold).

Wire protocol (one duplex pipe per worker; messages are typed tuples,
length-prefixed and pickled by :class:`multiprocessing.connection
.Connection`):

========================  ============================================
parent -> worker           meaning
========================  ============================================
``(seq, "slice", job_id,   run one slice; ``spec`` (first dispatch or
max_answers, spec)``       crash re-dispatch only) carries the request
                           plus resume/replay state
``(None, "cancel", id)``   cooperative cancel — handled by the worker's
                           *reader thread* while the slice runs, so it
                           lands at the next answer boundary
``(None, "finish", id)``   drop job state (parent-side abort)
``(seq, "stats")``         session/cache introspection round trip
``(seq, "ping")``          heartbeat round trip
``(None, "shutdown")``     exit the worker loop
========================  ============================================

Replies echo ``seq``: ``("frames", job_id, frames, finished,
checkpoint, emitted)`` — the *checkpoint frame*: after every unfinished
slice the worker serializes its stream frontier, so the parent always
holds the state as of the last acknowledged answer batch — plus
``("error", ...)``, ``("stats-reply", ...)`` and ``("pong", ...)``.
Exactly one round trip is in flight per worker (the parent's dispatch
lock), so replies need no demultiplexer; stale replies from a timed-out
stats probe are discarded by sequence number.

Crash recovery: a worker death surfaces as ``EOFError``/``OSError`` on
the pipe (plus ``Process.is_alive``), the pool respawns the seat, and
each affected job independently re-dispatches from its last checkpoint
— pausable streams resume their serialized frontier; diverse and
decomposition jobs (deterministic, not pausable) replay from scratch,
silently skipping the answers the client already has.  Either way the
client's byte stream continues exactly where the last acknowledged
slice ended; ``tests/service/`` kills workers mid-stream to hold the
backend to that.

Workers use the ``spawn`` start method: the parent runs an asyncio loop
plus executor threads, and forking a threaded process inherits locks in
undefined states.  The ~0.2 s interpreter+import cost is paid once per
worker per server lifetime — these are long-lived processes, not a task
pool.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import zlib

from ..api import load_checkpoint
from ..api.fingerprint import graph_fingerprint
from .protocol import (
    ProtocolError,
    TokenAuthError,
    resolve_token_key,
    verify_token,
)
from .scheduler import ExecutionBackend, ScheduledJob, _JobRunner

__all__ = ["ProcessWorkerBackend", "WorkerPool"]

#: A job spills off its preferred (affinity) worker once that worker is
#: running this many more jobs than the least-loaded one.
DEFAULT_SPILL_THRESHOLD = 2

#: Worker crashes tolerated per job before it fails with an ``error``
#: frame (a graph that deterministically kills workers must not respawn
#: the pool forever).
DEFAULT_MAX_REDISPATCH = 3


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------
def _worker_main(
    conn, token_key: bytes, index: int, cache_dir: "str | None" = None
) -> None:
    """One worker process: warm sessions, a slice loop, a cancel reader.

    The reader thread owns ``conn.recv``: it turns ``cancel`` messages
    into event sets *immediately* (while the main thread is inside a
    slice), and queues everything else for the main loop.  Only the
    main thread sends, so the worker side needs no send lock.
    """
    import queue
    import signal

    from ..api import Session

    # A foreground ``repro serve`` shares its process group with the
    # terminal, so Ctrl-C delivers SIGINT here too — mid-slice, possibly
    # mid-sqlite-write.  Shutdown must stay parent-orchestrated (the
    # ``shutdown`` message, then join): ignore the signal and let the
    # pool wind this seat down in order.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass

    work: "queue.SimpleQueue" = queue.SimpleQueue()
    state_lock = threading.Lock()
    cancel_events: dict[int, threading.Event] = {}
    # Cancels racing ahead of their job's first slice (the reader sees
    # the cancel before the main loop created the runner) park here.
    pre_cancelled: set[int] = set()

    def reader() -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                work.put(None)
                return
            kind = message[1]
            if kind == "cancel":
                job_id = message[2]
                with state_lock:
                    event = cancel_events.get(job_id)
                    if event is None:
                        pre_cancelled.add(job_id)
                    else:
                        event.set()
            elif kind == "shutdown":
                work.put(None)
                return
            else:
                work.put(message)

    threading.Thread(
        target=reader, name=f"repro-worker-{index}-reader", daemon=True
    ).start()

    sessions: dict[str, Session] = {}
    runners: dict[int, _JobRunner] = {}

    def session_for(kernel: str) -> Session:
        session = sessions.get(kernel)
        if session is None:
            # Every seat points at the same cache_dir, so one worker's
            # context build or DP fill warms the whole pool (and the
            # next server pointed at the directory).
            session = sessions[kernel] = Session(
                kernel=kernel, cache_dir=cache_dir
            )
        return session

    def drop(job_id: int) -> None:
        runner = runners.pop(job_id, None)
        if runner is not None:
            runner.close()
        with state_lock:
            cancel_events.pop(job_id, None)
            pre_cancelled.discard(job_id)

    try:
        _worker_loop(
            conn, token_key, work, state_lock, cancel_events, pre_cancelled,
            sessions, runners, session_for, drop,
        )
    finally:
        # Orderly seat teardown even when the loop dies on a pipe error:
        # release streams, then close the sessions — closing a session
        # closes the store handle it owns, checkpointing the shared
        # sqlite WAL instead of abandoning it hot.
        for runner in list(runners.values()):
            runner.close()
        runners.clear()
        for session in sessions.values():
            session.close()
        sessions.clear()
        conn.close()


def _worker_loop(
    conn,
    token_key: bytes,
    work,
    state_lock,
    cancel_events,
    pre_cancelled,
    sessions,
    runners,
    session_for,
    drop,
) -> None:
    """The worker's message loop (split out so teardown wraps it)."""
    while True:
        message = work.get()
        if message is None:
            break
        seq, kind = message[0], message[1]
        if kind == "ping":
            conn.send((seq, ("pong", os.getpid())))
        elif kind == "stats":
            conn.send(
                (
                    seq,
                    (
                        "stats-reply",
                        {
                            "pid": os.getpid(),
                            "pinned_jobs": len(runners),
                            "sessions": {
                                kernel: {
                                    "cache": session.cache_info(),
                                    "warm": session.warm_fingerprints(),
                                }
                                for kernel, session in sessions.items()
                            },
                        },
                    ),
                )
            )
        elif kind == "finish":
            drop(message[2])
        elif kind == "slice":
            _seq, _kind, job_id, max_answers, spec = message
            try:
                runner = runners.get(job_id)
                if runner is None:
                    if spec is None:
                        raise RuntimeError(
                            f"slice for unknown job {job_id} without a spec "
                            "(dispatch protocol violation)"
                        )
                    request = spec["request"]
                    event = threading.Event()
                    with state_lock:
                        if spec["cancelled"] or job_id in pre_cancelled:
                            pre_cancelled.discard(job_id)
                            event.set()
                        cancel_events[job_id] = event
                    runner = _JobRunner(
                        session_for(request.kernel),
                        request,
                        event,
                        token_key,
                        resume_payload=spec["resume_payload"],
                        base_emitted=spec["base_emitted"],
                        skip_answers=spec["skip_answers"],
                        deadline_override=spec["deadline_override"],
                    )
                    runners[job_id] = runner
                frames, finished = runner.slice_(max_answers)
                if finished:
                    drop(job_id)
                    conn.send(
                        (seq, ("frames", job_id, frames, True, None, 0))
                    )
                else:
                    checkpoint, emitted = runner.internal_state()
                    conn.send(
                        (
                            seq,
                            (
                                "frames",
                                job_id,
                                frames,
                                False,
                                checkpoint,
                                emitted,
                            ),
                        )
                    )
            except TokenAuthError as exc:
                drop(job_id)
                conn.send((seq, ("error", job_id, "token", str(exc))))
            except ProtocolError as exc:
                drop(job_id)
                conn.send((seq, ("error", job_id, "protocol", str(exc))))
            except Exception as exc:
                drop(job_id)
                conn.send((seq, ("error", job_id, "internal", str(exc))))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _affinity_index(fingerprint: str, size: int) -> int:
    """Consistent preferred-worker choice for a content fingerprint."""
    return zlib.crc32(fingerprint.encode("ascii")) % size


class WorkerHandle:
    """One seat in the pool: a process, its pipe, and the two locks.

    ``send_lock`` keeps concurrent sends off the pipe byte stream;
    ``dispatch_lock`` serializes round trips so a reply always belongs
    to the one request in flight.  ``active_jobs`` (guarded by the pool
    lock) is the routing load signal.
    """

    def __init__(self, index: int, generation: int, process, conn) -> None:
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.dispatch_lock = threading.Lock()
        self.active_jobs = 0  # guarded by the pool lock
        self.dead = False  # guarded by the pool lock
        self._seq = itertools.count(1)

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def send(self, kind: str, *rest) -> None:
        """Fire-and-forget message (``cancel`` / ``finish`` / ``shutdown``)."""
        with self.send_lock:
            self.conn.send((None, kind, *rest))

    def round_trip(self, kind: str, *rest):
        """Send one request and block for its (sequence-matched) reply.

        Deliberately unbounded: a slice dispatch legitimately blocks for
        as long as the enumeration runs (the job's *deadline* is
        enforced inside the worker, on ``time.monotonic()``, never by a
        pipe timeout here).  Timed waits belong to
        :meth:`try_round_trip`, whose reply deadline is likewise
        monotonic.  Raises the pipe's ``EOFError``/``OSError`` when the
        worker died — the caller's crash-detection signal.
        """
        with self.dispatch_lock:
            seq = next(self._seq)
            with self.send_lock:
                self.conn.send((seq, kind, *rest))
            while True:
                reply_seq, reply = self.conn.recv()
                if reply_seq == seq:
                    return reply
                # A stale reply from a timed-out probe; drop and keep
                # waiting for ours.

    def try_round_trip(self, kind: str, *rest, lock_timeout: float,
                       reply_timeout: float):
        """Best-effort round trip for observability probes.

        Returns ``None`` instead of blocking behind a long slice, and
        raises ``TimeoutError`` (leaving a stale, sequence-discarded
        reply in the pipe) if the worker accepts the probe but does not
        answer in time.
        """
        if not self.dispatch_lock.acquire(timeout=lock_timeout):
            return None
        try:
            seq = next(self._seq)
            with self.send_lock:
                self.conn.send((seq, kind, *rest))
            deadline = time.monotonic() + reply_timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.conn.poll(remaining):
                    raise TimeoutError("worker probe reply timed out")
                reply_seq, reply = self.conn.recv()
                if reply_seq == seq:
                    return reply
        finally:
            self.dispatch_lock.release()


class WorkerPool:
    """Spawns and routes over the long-lived worker processes.

    Routing (:meth:`route`) is consistent-choice-with-spill: the
    fingerprint's preferred worker wins unless it is ``spill_threshold``
    jobs busier than the least-loaded seat.  A dead seat is respawned in
    place with a bumped generation; jobs pinned to the old process each
    notice the broken pipe on their next slice and re-dispatch
    themselves.
    """

    def __init__(
        self,
        workers: int,
        token_key: bytes,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        cache_dir: "str | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._token_key = token_key
        self._spill = spill_threshold
        self._cache_dir = cache_dir
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._respawns = 0
        self._closed = False
        self._workers = [self._spawn(i, 0) for i in range(workers)]

    def _spawn(self, index: int, generation: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._token_key, index, self._cache_dir),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(index, generation, process, parent_conn)

    @property
    def size(self) -> int:
        return len(self._workers)

    @property
    def respawns(self) -> int:
        """Seats respawned after a crash (the crash-recovery telemetry)."""
        with self._lock:
            return self._respawns

    def route(self, fingerprint: str) -> WorkerHandle:
        """Pick a worker for a job and count it against that worker."""
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._revive_locked()
            preferred = self._workers[
                _affinity_index(fingerprint, len(self._workers))
            ]
            least = min(
                self._workers, key=lambda w: (w.active_jobs, w.index)
            )
            chosen = preferred
            if preferred.active_jobs - least.active_jobs >= self._spill:
                chosen = least
            chosen.active_jobs += 1
            return chosen

    def _revive_locked(self) -> None:
        for i, worker in enumerate(self._workers):
            if worker.dead or not worker.process.is_alive():
                worker.dead = True
                self._workers[i] = self._spawn(i, worker.generation + 1)
                self._respawns += 1

    def report_crash(self, handle: WorkerHandle) -> None:
        """Respawn a seat whose process died (idempotent across jobs)."""
        with self._lock:
            handle.dead = True
            if self._closed:
                return
            current = self._workers[handle.index]
            if current is handle:
                self._workers[handle.index] = self._spawn(
                    handle.index, handle.generation + 1
                )
                self._respawns += 1
        try:
            handle.conn.close()
        except OSError:
            pass

    def release(self, handle: WorkerHandle) -> None:
        """Drop one job from a worker's load count."""
        with self._lock:
            if handle.active_jobs > 0:
                handle.active_jobs -= 1

    def probe(self) -> bool:
        """One ``ping`` round trip against a live seat (``/health``).

        Tries the least-loaded seats first; a busy pool degrades to a
        slower probe (waiting on the dispatch lock), a dead pool — every
        seat crashed faster than revival — reports unhealthy.
        """
        with self._lock:
            if self._closed:
                return False
            self._revive_locked()
            workers = sorted(
                self._workers, key=lambda w: (w.active_jobs, w.index)
            )
        for worker in workers:
            if not worker.alive:
                continue
            try:
                reply = worker.try_round_trip(
                    "ping", lock_timeout=2.0, reply_timeout=15.0
                )
            except (TimeoutError, EOFError, OSError):
                continue
            if reply is not None and reply[0] == "pong":
                return True
        return False

    def worker_stats(self) -> list[dict]:
        """One introspection row per seat (best-effort pipe probes)."""
        with self._lock:
            workers = list(self._workers)
            respawns = self._respawns
        rows = []
        for worker in workers:
            row = {
                "worker": worker.index,
                "generation": worker.generation,
                "pid": worker.process.pid,
                "alive": worker.alive,
                "active_jobs": worker.active_jobs,
                "respawns": respawns,
            }
            if worker.alive:
                try:
                    reply = worker.try_round_trip(
                        "stats", lock_timeout=2.0, reply_timeout=15.0
                    )
                except (TimeoutError, EOFError, OSError):
                    row["busy"] = True
                else:
                    if reply is None:
                        row["busy"] = True
                    else:
                        row.update(reply[1])
            rows.append(row)
        return rows

    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.send("shutdown")
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.process.join(timeout=3)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:
                pass


class _RemoteRunner:
    """The parent-side runner of one job on the worker pool.

    Presents the exact ``slice_``/``close`` surface of
    :class:`~repro.service.scheduler._JobRunner`, but each slice is one
    pipe round trip to the worker holding the job's stream.  Keeps the
    last acknowledged ``(checkpoint, emitted)`` pair so a worker crash
    re-dispatches the job — to a freshly routed worker — continuing
    exactly where the last delivered answer batch ended.
    """

    def __init__(
        self,
        pool: WorkerPool,
        job: ScheduledJob,
        token_key: bytes,
        max_redispatch: int,
    ) -> None:
        self._pool = pool
        self._job = job
        self._token_key = token_key
        self._max_redispatch = max_redispatch
        self._handle: WorkerHandle | None = None
        self._checkpoint: bytes | None = None
        self._emitted = 0
        self._finished = False
        self._crashes = 0
        self._fingerprint: str | None = None
        deadline = job.request.deadline
        # time.monotonic(), matching the runner-side deadline clock and
        # the probe reply timeouts in try_round_trip: a wall-clock step
        # (NTP, VM resume) must neither expire a fresh job nor grant a
        # re-dispatched one extra time.
        self._deadline_at = (
            time.monotonic() + deadline if deadline is not None else None
        )
        job.add_cancel_callback(self._forward_cancel)

    # -- cancel forwarding ---------------------------------------------
    def _forward_cancel(self) -> None:
        handle = self._handle
        if handle is None or self._finished:
            return  # not dispatched yet; the spec will carry the flag
        try:
            handle.send("cancel", self._job.id)
        except (OSError, ValueError):
            pass  # dead pipe: the re-dispatch spec carries the flag

    # -- routing -------------------------------------------------------
    def _routing_fingerprint(self) -> str:
        request = self._job.request
        if request.graph is not None:
            return graph_fingerprint(request.graph)
        # Token resume: authenticate before unpickling (same gate as the
        # worker will apply), then read the checkpoint's fingerprint so
        # the resumed job lands on the worker already warm for its graph.
        payload = verify_token(self._token_key, request.token)
        try:
            checkpoint = load_checkpoint(payload)
        except Exception as exc:
            raise ProtocolError(f"invalid resume token: {exc}") from None
        return getattr(checkpoint, "fingerprint", None) or ""

    def _spec(self) -> dict:
        """The dispatch spec: the request plus resume/replay state."""
        remaining = None
        if self._deadline_at is not None:
            remaining = max(self._deadline_at - time.monotonic(), 1e-6)
        if self._checkpoint is not None:
            # Pausable stream: resume the serialized frontier, counters
            # continuing at the answers already delivered.
            return {
                "request": self._job.request,
                "resume_payload": self._checkpoint,
                "base_emitted": self._emitted,
                "skip_answers": 0,
                "deadline_override": remaining,
                "cancelled": self._job.cancelled,
            }
        # No checkpoint (first dispatch, or a non-pausable op):
        # deterministic replay, skipping what the client already has.
        return {
            "request": self._job.request,
            "resume_payload": None,
            "base_emitted": self._emitted,
            "skip_answers": self._emitted,
            "deadline_override": remaining,
            "cancelled": self._job.cancelled,
        }

    # -- the slice -----------------------------------------------------
    def slice_(self, max_answers: int) -> tuple[list[dict], bool]:
        if self._fingerprint is None:
            self._fingerprint = self._routing_fingerprint()
        while True:
            handle = self._handle
            spec = None
            if handle is None or not handle.alive:
                if handle is not None:
                    # Our worker died between slices; its state is gone.
                    self._pool.release(handle)
                    self._pool.report_crash(handle)
                handle = self._pool.route(self._fingerprint)
                self._handle = handle
                spec = self._spec()
            try:
                reply = handle.round_trip(
                    "slice", self._job.id, max_answers, spec
                )
            except (EOFError, OSError) as exc:
                self._pool.release(handle)
                self._pool.report_crash(handle)
                self._handle = None
                self._crashes += 1
                if self._crashes > self._max_redispatch:
                    self._finished = True
                    raise RuntimeError(
                        f"worker process crashed {self._crashes} times "
                        "while running this job"
                    ) from exc
                continue  # re-dispatch from the last acknowledged state
            kind = reply[0]
            if kind == "frames":
                _, _job_id, frames, finished, checkpoint, emitted = reply
                if finished:
                    self._finish(handle)
                else:
                    if checkpoint is not None:
                        self._checkpoint = checkpoint
                    self._emitted = emitted
                return frames, finished
            if kind == "error":
                _, _job_id, error_kind, message = reply
                self._finish(handle)
                if error_kind == "token":
                    raise TokenAuthError(message)
                if error_kind == "protocol":
                    raise ProtocolError(message)
                raise RuntimeError(message)
            raise RuntimeError(f"unexpected worker reply {kind!r}")

    def _finish(self, handle: WorkerHandle) -> None:
        if not self._finished:
            self._finished = True
            self._pool.release(handle)

    def close(self) -> None:
        """Release pool accounting; tell the worker to drop an aborted job."""
        handle, self._handle = self._handle, None
        if self._finished or handle is None:
            self._finished = True
            return
        self._finished = True
        self._pool.release(handle)
        try:
            handle.send("finish", self._job.id)
        except (OSError, ValueError):
            pass  # worker already gone; nothing to drop


class ProcessWorkerBackend(ExecutionBackend):
    """``backend="process"``: slices execute on the worker-process pool.

    Parameters
    ----------
    workers:
        Pool size (default: ``os.cpu_count()``, floor 2).  Long-lived —
        spawned here, reaped by :meth:`close`.
    token_key:
        The scheduler's token-signing key; workers mint resume tokens
        under it so pause/resume is backend-transparent.
    spill_threshold:
        Load difference at which affinity yields to the least-loaded
        worker.
    max_redispatch:
        Worker crashes tolerated per job before it errors out.
    cache_dir:
        Persistent artifact-store directory shared by every seat's
        sessions (:mod:`repro.cache`); ``None`` defers to the
        ``REPRO_CACHE_DIR`` environment variable, which spawn-started
        workers inherit.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        token_key: bytes | None = None,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        max_redispatch: int = DEFAULT_MAX_REDISPATCH,
        cache_dir: "str | None" = None,
    ) -> None:
        if workers is None:
            workers = max(os.cpu_count() or 1, 2)
        self._token_key = resolve_token_key(token_key)
        self._max_redispatch = max_redispatch
        self.pool = WorkerPool(
            workers,
            self._token_key,
            spill_threshold=spill_threshold,
            cache_dir=cache_dir,
        )

    def create_runner(self, job: ScheduledJob) -> _RemoteRunner:
        return _RemoteRunner(
            self.pool, job, self._token_key, self._max_redispatch
        )

    def worker_stats(self) -> list[dict]:
        return self.pool.worker_stats()

    def probe(self) -> bool:
        return self.pool.probe()

    def telemetry(self) -> dict:
        return {"workers": self.pool.size, "respawns": self.pool.respawns}

    def close(self) -> None:
        self.pool.close()
