"""``repro.service`` — the concurrent enumeration service.

The serving tier over :mod:`repro.api`: an asyncio TCP server that
multiplexes many concurrent clients over a shared
:class:`~repro.api.Session` pool, streaming ranked answers as the
Lawler–Murty loop emits them — the paper's incremental-delay guarantee
turned into a wire protocol.

* :mod:`~repro.service.protocol` — the newline-delimited-JSON frame
  format (request → ``answer``* → one terminal frame), canonical
  encoding, typed frames, resume tokens;
* :mod:`~repro.service.scheduler` — fair-share slicing of any number of
  admitted jobs over a bounded worker pool, with deadlines, answer
  budgets and cooperative cancellation;
* :mod:`~repro.service.workers` — the multi-process execution backend
  (``backend="process"``): long-lived worker processes owning warm
  kernel-keyed sessions, graph-fingerprint affinity routing, and crash
  re-dispatch from the last acknowledged slice checkpoint;
* :mod:`~repro.service.server` — the asyncio server
  (:class:`EnumerationServer`), plus the blocking
  :class:`ServerThread` / :func:`serve` wrappers;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the typed
  blocking client used by the tests, the throughput benchmark, and
  ``repro submit``.

Correctness contract, enforced by ``tests/service/``: the ``answer``
frame bytes any client receives are bit-identical to the serialization
of the results a serial ``Session.stream`` run produces for the same
request — under arbitrary concurrency, and across a mid-stream
disconnect-and-resume via checkpoint token.
"""

from __future__ import annotations

from .client import ServiceClient, ServiceError, ServiceResult, ServiceStream
from .protocol import (
    AnswerFrame,
    CancelledFrame,
    DeadlineFrame,
    ErrorFrame,
    ProtocolError,
    ServiceRequest,
    ServiceStatsFrame,
    StatsFrame,
    serialize_answers,
)
from .scheduler import (
    EnumerationScheduler,
    ExecutionBackend,
    InProcessBackend,
    ScheduledJob,
)
from .server import EnumerationServer, ServerThread, serve
from .workers import ProcessWorkerBackend, WorkerPool

__all__ = [
    "AnswerFrame",
    "CancelledFrame",
    "DeadlineFrame",
    "EnumerationScheduler",
    "EnumerationServer",
    "ErrorFrame",
    "ExecutionBackend",
    "InProcessBackend",
    "ProcessWorkerBackend",
    "ProtocolError",
    "ScheduledJob",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceRequest",
    "ServiceResult",
    "ServiceStatsFrame",
    "ServiceStream",
    "StatsFrame",
    "WorkerPool",
    "serialize_answers",
    "serve",
]
