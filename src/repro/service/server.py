"""The asyncio TCP server of the enumeration service.

One connection carries one job: the client sends a single ``request``
frame, the server streams ``answer`` frames as the scheduler produces
them and finishes with one terminal frame (``stats`` / ``deadline`` /
``cancelled`` / ``error``).  While a job streams, the server keeps
reading the connection: an in-band ``{"type": "cancel"}`` frame — or
the client closing its end — triggers cooperative cancellation through
the scheduler, which releases the job's worker slot at the next answer
boundary.  A malformed opening frame is answered with an in-band
``error`` frame on that connection only; the server keeps serving.

Pause/resume is connection-independent: any terminal frame carrying a
``checkpoint`` token can be resumed by a *new* connection (a new
request frame with ``token`` instead of ``graph``), continuing the
exact ranked sequence — the cross-process checkpoint machinery is the
reconnection story.

Use :class:`EnumerationServer` inside an existing event loop, or
:class:`ServerThread` / :func:`serve` for the blocking entry points
(tests, benchmarks, and ``repro serve``).
"""

from __future__ import annotations

import asyncio
import signal
import threading

from .protocol import (
    ProtocolError,
    TERMINAL_TYPES,
    decode_frame,
    encode_frame,
    parse_request,
)
from .scheduler import DEFAULT_SLICE_ANSWERS, EnumerationScheduler, ScheduledJob

__all__ = ["EnumerationServer", "ServerThread", "serve"]


class EnumerationServer:
    """Streams scheduler frames over NDJSON TCP connections.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.service.scheduler.EnumerationScheduler` to
        admit jobs into; built from ``max_workers`` / ``slice_answers``
        when not given.
    host, port:
        Bind address; port ``0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    max_frame_bytes:
        Upper bound on one incoming frame line (asyncio's stream limit;
        default 16 MiB — far above any realistic request graph).  A
        frame beyond it is answered with an in-band ``error`` frame,
        not a dropped connection.
    backend, worker_processes:
        Passed to the built scheduler: ``backend="process"`` runs
        slices on ``worker_processes`` long-lived worker processes with
        session affinity (:mod:`repro.service.workers`); the default
        stays in-process.
    cache_dir:
        Passed to the built scheduler: the persistent artifact-store
        directory (:mod:`repro.cache`) shared by every backend session,
        so warm state survives server restarts.  ``None`` defers to
        ``REPRO_CACHE_DIR``.
    """

    def __init__(
        self,
        *,
        scheduler: EnumerationScheduler | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 2,
        slice_answers: int = DEFAULT_SLICE_ANSWERS,
        max_pending_frames: int = 64,
        max_frame_bytes: int = 16 * 1024 * 1024,
        token_key: bytes | None = None,
        backend: str | None = None,
        worker_processes: int | None = None,
        cache_dir: str | None = None,
    ) -> None:
        self.scheduler = scheduler or EnumerationScheduler(
            max_workers=max_workers,
            slice_answers=slice_answers,
            max_pending_frames=max_pending_frames,
            token_key=token_key,
            backend=backend,
            worker_processes=worker_processes,
            cache_dir=cache_dir,
        )
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        self._server: asyncio.base_events.Server | None = None
        self.address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=self._max_frame_bytes,
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        assert self._server is not None, "call start() before serve_forever()"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel live jobs, and wind the scheduler down.

        Order matters: jobs are cancelled *before* waiting on the
        connection handlers, because on Python >= 3.12.1
        ``Server.wait_closed`` blocks until every handler returns — and
        a handler streaming a long job only returns once the scheduler
        cancels it and the terminal ``cancelled`` frame goes out.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()  # stop accepting; live handlers keep running
        await self.scheduler.close()
        if server is not None:
            try:
                # Handlers are now delivering their terminal frames; give
                # them a bounded window (a stalled client socket must not
                # wedge shutdown — its task dies with the event loop).
                await asyncio.wait_for(server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:
                pass

    # -- one connection ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; the job (if any) was cancelled below
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
        except ValueError:
            # Opening frame exceeded the stream limit: still an in-band
            # protocol violation, answered as one.
            await self._send(
                writer,
                {
                    "type": "error",
                    "code": "bad-request",
                    "message": (
                        "request frame exceeds the server's "
                        f"{self._max_frame_bytes}-byte frame limit"
                    ),
                },
            )
            return
        if not line:
            return
        try:
            request = parse_request(decode_frame(line))
        except ProtocolError as exc:
            # In-band error; this connection ends, the server lives on.
            await self._send(
                writer,
                {"type": "error", "code": "bad-request", "message": str(exc)},
            )
            return
        try:
            job = await self.scheduler.submit(request)
        except RuntimeError as exc:
            # Raced with shutdown: still an in-band answer, not a dead socket.
            await self._send(
                writer,
                {"type": "error", "code": "shutting-down", "message": str(exc)},
            )
            return
        watcher = asyncio.create_task(self._watch_client(reader, job))
        try:
            while True:
                frame = await job.next_frame()
                try:
                    await self._send(writer, frame)
                except (ConnectionError, OSError):
                    # Mid-stream disconnect: release the slot cooperatively
                    # and let the job wind down through its terminal frame.
                    self.scheduler.cancel(job)
                    if frame["type"] not in TERMINAL_TYPES:
                        await job.drain()
                    break
                if frame["type"] in TERMINAL_TYPES:
                    break
        finally:
            watcher.cancel()

    async def _watch_client(
        self, reader: asyncio.StreamReader, job: ScheduledJob
    ) -> None:
        """Watch for in-band cancel frames and for the client hanging up."""
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Oversized garbage mid-stream: treat as a lost client.
                line = b""
            except (ConnectionError, OSError):
                line = b""
            if not line:  # EOF: the client disconnected mid-stream
                self.scheduler.cancel(job)
                return
            try:
                frame = decode_frame(line)
            except ProtocolError:
                continue  # garbage mid-stream is ignored, not fatal
            if frame.get("type") == "cancel":
                self.scheduler.cancel(job)
                return

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()


class ServerThread:
    """A server running on its own event loop in a daemon thread.

    The blocking deployment shape used by the tests, the throughput
    benchmark, and any host application that is not itself async::

        with ServerThread(max_workers=4) as handle:
            client = ServiceClient(*handle.address)
            ...

    ``address`` is available as soon as the context manager (or
    :meth:`start`) returns.
    """

    def __init__(self, **server_kwargs: object) -> None:
        self._server_kwargs = server_kwargs
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.address: tuple[str, int] | None = None
        self.server: EnumerationServer | None = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-service-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = EnumerationServer(**self._server_kwargs)
        try:
            self.address = await server.start()
            self.server = server
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()

    def stop(self) -> None:
        """Shut the server down and join its thread.  Idempotent."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed by an earlier stop()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def scheduler_stats(self) -> dict[str, int]:
        """The live scheduler counters (thread-safe reads of plain ints)."""
        assert self.server is not None
        return self.server.scheduler.stats()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_workers: int = 2,
    slice_answers: int = DEFAULT_SLICE_ANSWERS,
    token_key: bytes | None = None,
    backend: str | None = None,
    worker_processes: int | None = None,
    cache_dir: str | None = None,
    http_port: int | None = None,
    on_bound=None,
    on_http_bound=None,
    stop: "threading.Event | None" = None,
    announce=print,
) -> None:
    """Run a server in the foreground until interrupted (``repro serve``).

    ``on_bound`` (if given) receives the actual ``(host, port)`` once
    listening; setting the optional ``stop`` event from another thread
    shuts the server down cleanly — the hooks that let tests drive this
    exact entry point.

    SIGINT/SIGTERM are turned into an *orderly* stop via
    ``loop.add_signal_handler`` rather than left to propagate as
    :class:`KeyboardInterrupt`: the exception path interrupts
    ``server.stop()`` mid-teardown at an arbitrary await point, which
    can exit before the worker seats are joined and the shared artifact
    store is closed (orphaned children, hot sqlite WAL).  With the
    handler, a signal merely sets the stop flag and the one teardown
    path runs to completion: cancel jobs → join worker processes →
    close backend sessions (checkpointing the store's WAL).
    """

    async def main() -> None:
        server = EnumerationServer(
            host=host,
            port=port,
            max_workers=max_workers,
            slice_answers=slice_answers,
            token_key=token_key,
            backend=backend,
            worker_processes=worker_processes,
            cache_dir=cache_dir,
        )
        loop = asyncio.get_running_loop()
        interrupted = asyncio.Event()
        hooked: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, interrupted.set)
            except (NotImplementedError, RuntimeError, ValueError):
                continue  # non-main thread or platform without support
            hooked.append(signum)
        gateway = None
        if http_port is not None:
            from ..gateway.server import GatewayServer

            # Shares the scheduler: HTTP and TCP clients hit the same
            # sessions, worker seats, and artifact store.
            gateway = GatewayServer(
                scheduler=server.scheduler, host=host, port=http_port
            )
        bound_host, bound_port = await server.start()
        announce(f"repro service listening on {bound_host}:{bound_port}")
        if on_bound is not None:
            on_bound((bound_host, bound_port))
        if gateway is not None:
            http_host, http_bound = await gateway.start()
            announce(
                f"repro http gateway listening on {http_host}:{http_bound}"
            )
            if on_http_bound is not None:
                on_http_bound((http_host, http_bound))
        try:
            if stop is None:
                await interrupted.wait()
            else:
                while not stop.is_set() and not interrupted.is_set():
                    await asyncio.sleep(0.05)
        except asyncio.CancelledError:
            pass
        finally:
            # From here on a *second* signal still just sets the event:
            # teardown stays uninterruptible until the handlers unhook.
            announce("repro service shutting down")
            if gateway is not None:
                # Stops the HTTP listener and cancels its streams; the
                # shared scheduler closes below, once, with the server.
                await gateway.stop()
            await server.stop()
            for signum in hooked:
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass  # signal arrived where no handler could be installed
