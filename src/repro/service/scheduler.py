"""Fair-share scheduling of enumeration jobs over a shared session pool.

The scheduler is the concurrency heart of the service: it admits typed
jobs (:class:`~repro.service.protocol.ServiceRequest` — ``enumerate``,
``top``, ``diverse``, ``decompositions``), opens each one as a ranked
stream over a shared per-kernel :class:`~repro.api.Session`, and runs
the streams in **slices** on a bounded thread pool.  One slice pulls at
most ``slice_answers`` results before giving the worker slot back, so a
job over an expensive graph interleaves with — rather than starves —
every cheap job admitted alongside it.  Fairness falls out of the slot
semaphore's FIFO wakeups: after each slice a job goes to the back of
the line.

Per-job controls, all cooperative (checked between answers, never by
killing a thread):

* ``deadline``      — wall-clock seconds from admission; on expiry the
  job ends with a ``deadline`` frame carrying a resume token;
* ``answer_budget`` / ``k`` — caps on streamed answers; the terminal
  ``stats`` frame carries the token for the remainder;
* :meth:`EnumerationScheduler.cancel` — sets the job's cancel event;
  the running slice notices at the next answer boundary, emits a
  ``cancelled`` frame (with a token when the stream is pausable) and
  releases the slot.  This is exactly what a client disconnect triggers.

Emission-order guarantee: each job owns its stream exclusively, slices
of one job never overlap, and the frames of consecutive slices are
concatenated in order — so the answer frames of a job are bit-identical
to a serial ``Session.stream`` run of the same request, no matter how
many jobs run concurrently.  Sessions are shared across jobs (that is
the point: one context build serves every client asking about the same
graph); :class:`~repro.api.Session` is lock-protected for exactly this
slice-reentrant use.

*Where* a slice executes is pluggable (:class:`ExecutionBackend`):

* :class:`InProcessBackend` (default) — slices run on this process's
  executor threads over a shared per-kernel session pool.  All slices
  contend on one GIL; this is the reference backend, kept as the
  differential oracle.
* ``backend="process"`` — slices are dispatched whole (one IPC round
  trip per answer batch) to a pool of long-lived worker processes, each
  owning warm kernel-keyed sessions, with graph-fingerprint affinity
  routing and crash re-dispatch (:mod:`repro.service.workers`).  The
  frames a job streams are bit-identical either way.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from abc import ABC, abstractmethod
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from ..api import Session, load_checkpoint
from ..api.session import _diverse_selection, _expand_decompositions
from ..graphs.kernels import (
    available_kernels,
    registered_kernels,
    resolve_kernel,
)
from .protocol import (
    ProtocolError,
    ServiceRequest,
    TERMINAL_TYPES,
    TokenAuthError,
    answer_frame,
    encode_token,
    resolve_token_key,
    sign_token,
    verify_token,
)

__all__ = [
    "EnumerationScheduler",
    "ExecutionBackend",
    "InProcessBackend",
    "ScheduledJob",
    "DEFAULT_SLICE_ANSWERS",
    "aggregate_disk_cache",
]

#: Answers one slice may stream before yielding its worker slot.
DEFAULT_SLICE_ANSWERS = 4

#: Upper bounds (seconds) of the slice-latency histogram buckets.  A
#: slice is one executor round trip — context builds land in the tail
#: buckets, warm-stream batches in the head.
SLICE_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class _SliceHistogram:
    """Fixed-bucket latency histogram (Prometheus-shaped counters).

    Mutated only from the scheduler's event loop (after each awaited
    slice), so plain ints suffice; snapshots hand out copies.
    """

    def __init__(self, bounds: tuple[float, ...] = SLICE_LATENCY_BUCKETS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += seconds
        self.count += 1

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class ScheduledJob:
    """One admitted job: a frame queue plus its cooperative-cancel state.

    Consumers read :attr:`frames` until a terminal frame (``type`` in
    :data:`~repro.service.protocol.TERMINAL_TYPES`) arrives; the
    scheduler guarantees exactly one terminal frame per job, always
    delivered last.  The queue is *bounded* (``max_pending``): a job
    whose consumer reads slowly stops slicing once the buffer fills —
    backpressure, not unbounded server-side buffering — and resumes as
    the consumer catches up.
    """

    def __init__(
        self, job_id: int, request: ServiceRequest, max_pending: int = 64
    ) -> None:
        self.id = job_id
        self.request = request
        self.frames: asyncio.Queue[dict] = asyncio.Queue(maxsize=max_pending)
        self.status = "pending"  # -> running -> <terminal frame type>
        self.emitted = 0
        self._cancel = threading.Event()
        self._cancel_callbacks: list[Callable[[], None]] = []
        self._task: asyncio.Task | None = None

    @property
    def cancelled(self) -> bool:
        """Whether a cancel was requested (not yet necessarily honored)."""
        return self._cancel.is_set()

    def add_cancel_callback(self, callback: Callable[[], None]) -> None:
        """Register a hook run when cancellation is requested.

        Remote backends use this to forward the cancel to the worker
        process holding the job, so the in-flight slice stops at its
        next answer boundary instead of running to the slice cap.  A
        callback registered after the cancel already happened fires
        immediately.
        """
        self._cancel_callbacks.append(callback)
        if self._cancel.is_set():
            callback()

    def request_cancel(self) -> None:
        """Set the cancel flag and notify any registered backend hooks."""
        self._cancel.set()
        for callback in self._cancel_callbacks:
            try:
                callback()
            except Exception:
                pass  # a dead worker pipe must not break cancellation

    @property
    def finished(self) -> bool:
        """Whether the job's terminal frame has been produced."""
        return self.status in TERMINAL_TYPES

    async def next_frame(self) -> dict:
        """The next frame of this job (blocks until one is available)."""
        return await self.frames.get()

    async def drain(self) -> list[dict]:
        """Consume and return all remaining frames through the terminal one."""
        out = []
        while True:
            frame = await self.frames.get()
            out.append(frame)
            if frame["type"] in TERMINAL_TYPES:
                return out

    async def wait(self) -> None:
        """Block until the job's runner task has fully wound down."""
        if self._task is not None:
            await asyncio.shield(self._task)


class _JobRunner:
    """The synchronous half of one job: owns the stream, runs in slices.

    Never touched by more than one executor thread at a time (the
    scheduler serializes a job's slices), so it needs no locking of its
    own.  All blocking work — opening the stream (context build) and
    pulling answers — happens inside :meth:`slice_`, on an executor
    thread, never on the event loop.
    """

    def __init__(
        self,
        session: Session,
        request: ServiceRequest,
        cancel: threading.Event,
        token_key: bytes,
        *,
        resume_payload: bytes | None = None,
        base_emitted: int = 0,
        skip_answers: int = 0,
        deadline_override: float | None = None,
    ) -> None:
        self._session = session
        self._request = request
        self._cancel = cancel
        self._token_key = token_key
        self._stream = None  # the pausable RankedStream, when op allows
        self._source = None  # the ranked stream powering ANY op (stats)
        self._iterator = None
        self._opened = False
        # Crash re-dispatch state (multi-process backend only): a trusted
        # internal checkpoint to resume from, the answers already
        # delivered before the crash (the counters continue there so
        # k/answer-budget accounting survives re-dispatch), and — for
        # ops without a pausable stream — how many deterministic answers
        # to replay silently before streaming fresh ones.
        self._resume_payload = resume_payload
        self._emitted = base_emitted
        self._skip = skip_answers
        # Deadlines (and elapsed reporting) are measured on
        # time.monotonic(): an NTP step or VM clock correction must not
        # prematurely expire — or immortalize — a job.
        self._started = time.monotonic()
        deadline = (
            deadline_override
            if deadline_override is not None
            else request.deadline
        )
        self._deadline_at = (
            self._started + deadline if deadline is not None else None
        )
        # Answer-prefix write-back state (pausable enumerate/top streams
        # only): the absolute rank the collection starts at, and the
        # answers gathered so far (None = disabled: over the cap, or a
        # non-pausable op).
        self._publish_base = 0
        self._publish_cap = 0
        self._collected: "list | None" = None

    # -- opening -------------------------------------------------------
    def _open(self) -> None:
        request = self._request
        if self._resume_payload is not None:
            # Internal re-dispatch after a worker crash: the payload is
            # a checkpoint this service minted and held in memory, never
            # wire input, so it loads without the HMAC gate.
            try:
                checkpoint = load_checkpoint(self._resume_payload)
            except Exception as exc:  # server fault, not the client's
                raise RuntimeError(
                    f"internal re-dispatch checkpoint failed to load: {exc}"
                ) from exc
            stream = self._session.resume_stream(checkpoint)
            self._stream = stream
            self._source = stream
            self._iterator = stream
        elif request.token is not None:
            # Authenticate BEFORE deserializing: checkpoints are pickle
            # payloads, and unpickling unauthenticated network bytes
            # would be remote code execution.
            payload = verify_token(self._token_key, request.token)
            try:
                checkpoint = load_checkpoint(payload)
            except Exception as exc:
                raise ProtocolError(f"invalid resume token: {exc}") from None
            stream = self._session.resume_stream(checkpoint)
            self._stream = stream
            self._source = stream
            self._iterator = stream
        elif request.op in ("enumerate", "top"):
            stream = self._session.stream(
                request.graph,
                request.cost,
                width_bound=request.width_bound,
                preprocess=request.preprocess,
            )
            self._stream = stream
            self._source = stream
            self._iterator = stream
        elif request.op == "diverse":
            self._iterator = self._diverse_iterator()
        else:  # decompositions
            self._iterator = self._decomposition_iterator()
        if self._stream is not None and self._session.store is not None:
            from ..cache.answers import max_prefix_answers

            self._publish_base = self._stream.next_rank
            self._publish_cap = max_prefix_answers()
            self._collected = []
        self._opened = True

    def _diverse_iterator(self):
        """Session's greedy diverse selection, sliceable answer by answer.

        Delegates to :func:`repro.api.session._diverse_selection` — the
        single implementation behind :meth:`Session.diverse` — wrapped
        as a generator so the scheduler can pause it between answers.
        """
        request = self._request
        limit = request.result_limit  # min(k, answer_budget), like Session
        assert limit is not None
        stream = self._session.stream(
            request.graph,
            request.cost,
            width_bound=request.width_bound,
            preprocess=request.preprocess,
        )
        self._source = stream
        try:
            # should_stop is polled once per *scanned* candidate, so a
            # cancel/deadline lands mid-scan instead of after up to
            # scan_limit expansions; slice_'s StopIteration handler then
            # re-checks which terminal frame the early exit deserves.
            yield from _diverse_selection(
                stream,
                limit,
                request.min_distance,
                request.scan_limit,
                should_stop=self._interrupted,
            )
        finally:
            stream.close()

    def _decomposition_iterator(self):
        """Proposition 6.1 expansion, with the source stream retained
        so the terminal stats can report its true exhaustion state."""
        request = self._request
        stream = self._session.stream(
            request.graph,
            request.cost,
            width_bound=request.width_bound,
            preprocess=request.preprocess,
        )
        self._source = stream
        try:
            yield from _expand_decompositions(
                stream, request.per_triangulation
            )
        finally:
            stream.close()

    def _interrupted(self) -> bool:
        """Whether cancellation or the deadline should stop work now."""
        return self._cancel.is_set() or (
            self._deadline_at is not None
            and time.monotonic() > self._deadline_at
        )

    # -- answer-prefix write-back --------------------------------------
    def _collect_answer(self, result) -> None:
        """Accumulate one emitted answer for the prefix write-back.

        Disabled (for the rest of the job) once the prefix would exceed
        the cap: a partial stretch cannot be published, because the
        terminal checkpoint sits at the *stream's* position, not the
        truncated collection's.
        """
        if self._collected is None or self._stream is None:
            return
        from ..cache.answers import cached_from_result

        self._collected.append(cached_from_result(result))
        if self._publish_base + len(self._collected) > self._publish_cap:
            self._collected = None

    def _publish_prefix(self) -> None:
        """Fold this job's enumerated stretch into the answers record.

        Called at every terminal that leaves the stream in a
        checkpoint-consistent state (stats, cancelled, deadline).
        Best-effort: a cache failure must never break the job that
        already produced its frames.
        """
        stream = self._stream
        collected = self._collected
        if stream is None or collected is None:
            return
        store = self._session.store
        spec = stream.cost_spec
        if store is None or spec is None:
            return
        try:
            from ..cache.answers import (
                candidate_keys,
                load_prefix,
                merge_prefix,
                preprocess_applies_for,
            )
            from ..preprocess.recompose import ComposedRankedStream

            if not collected and self._publish_base == 0:
                return
            checkpoint = stream.checkpoint()
            composed = isinstance(stream, ComposedRankedStream)
            if self._request.token is None and self._resume_payload is None:
                applies = preprocess_applies_for(
                    spec, self._request.preprocess
                )
                probes = candidate_keys(
                    fingerprint=stream.fingerprint,
                    cost_spec=spec,
                    width_bound=checkpoint.width_bound,
                    kernel=self._request.kernel,
                    applies=applies,
                )
            else:
                probes = candidate_keys(
                    fingerprint=stream.fingerprint,
                    cost_spec=spec,
                    width_bound=checkpoint.width_bound,
                    kernel=self._request.kernel,
                    applies=None,
                    composed=composed,
                )
            key, record = load_prefix(store, probes)
            if record is None and not collected:
                return
            merged = merge_prefix(
                record,
                fingerprint=stream.fingerprint,
                cost_spec=spec,
                preprocessed=composed,
                start=self._publish_base,
                answers=tuple(collected),
                end_checkpoint=checkpoint.to_bytes(),
                exhausted=stream.exhausted,
            )
            if merged is not None:
                store.put("answers", key, merged)
        except Exception:
            pass

    # -- checkpoints ---------------------------------------------------
    def _token_fields(self) -> dict:
        """``checkpoint``/``next_rank`` fields for a pausable stream.

        A drained stream gets no token (there is nothing to resume;
        the README protocol table promises exactly this), matching the
        non-pausable ops.
        """
        if self._stream is None:
            return {"next_rank": None, "checkpoint": None}
        if self._stream.exhausted:
            return {"next_rank": self._stream.next_rank, "checkpoint": None}
        token = sign_token(self._token_key, self._stream.checkpoint().to_bytes())
        return {
            "next_rank": self._stream.next_rank,
            "checkpoint": encode_token(token),
        }

    def _stats_frame(self, drained: bool) -> dict:
        """The terminal ``stats`` frame.

        All measurements come from the *source* ranked stream (the one
        powering the op, whatever the op), mirroring what the in-process
        ``Session`` reports for the same request: ``exhausted`` is the
        source frontier's state — for decompositions additionally
        requiring the expansion itself to have drained — never a guess
        from the answer cap.
        """
        source = self._source
        if source is None:
            exhausted = drained
        elif self._request.op == "decompositions":
            exhausted = source.exhausted and drained
        else:
            exhausted = source.exhausted
        frame = {
            "type": "stats",
            "emitted": self._emitted,
            "expansions": source.expansions if source is not None else 0,
            "exhausted": exhausted,
            "elapsed_seconds": round(time.monotonic() - self._started, 6),
            "engine": source.engine_name if source is not None else "none",
            "preprocessed": (
                source is not None and source.engine_name == "composed"
            ),
        }
        frame.update(self._token_fields())
        return frame

    # -- the slice -----------------------------------------------------
    def slice_(self, max_answers: int) -> tuple[list[dict], bool]:
        """Run one slice; returns ``(frames, finished)``.

        Streams up to ``max_answers`` further answers, honoring — in
        priority order, checked between answers — cancellation, the
        deadline, and the answer cap.  When it reports finished, the
        last frame is the job's single terminal frame and the stream is
        closed.
        """
        frames: list[dict] = []
        try:
            if not self._opened:
                # Failures while opening — unknown costs, disconnected
                # graphs, bad tokens — are the client's fault; anything
                # thrown later, mid-enumeration, is a server fault and
                # must not masquerade as one.
                try:
                    self._open()
                except ProtocolError:
                    raise
                except (ValueError, KeyError) as exc:
                    raise ProtocolError(str(exc)) from exc
            while self._skip > 0:
                # Crash replay for ops without a pausable stream: the
                # enumeration is deterministic, so re-running it and
                # discarding the answers the client already has restores
                # the exact position.  An interruption mid-replay gets no
                # resume token — a token minted here would sit *before*
                # answers the client already received and replay them.
                if self._interrupted():
                    kind = "cancelled" if self._cancel.is_set() else "deadline"
                    frames.append({"type": kind, "emitted": self._emitted,
                                   "next_rank": None, "checkpoint": None})
                    self.close()
                    return frames, True
                try:
                    next(self._iterator)
                except StopIteration:
                    frames.append(self._stats_frame(drained=True))
                    self.close()
                    return frames, True
                self._skip -= 1
            limit = self._request.result_limit
            for _ in range(max_answers):
                if self._cancel.is_set():
                    frames.append({"type": "cancelled", "emitted": self._emitted,
                                   **self._token_fields()})
                    self._publish_prefix()
                    self.close()
                    return frames, True
                if (
                    self._deadline_at is not None
                    and time.monotonic() > self._deadline_at
                ):
                    frames.append({"type": "deadline", "emitted": self._emitted,
                                   **self._token_fields()})
                    self._publish_prefix()
                    self.close()
                    return frames, True
                if limit is not None and self._emitted >= limit:
                    frames.append(self._stats_frame(drained=False))
                    self._publish_prefix()
                    self.close()
                    return frames, True
                try:
                    result = next(self._iterator)
                except StopIteration:
                    # An early exit forced by should_stop mid-scan must
                    # surface as the interruption it was, not as normal
                    # completion.
                    if self._cancel.is_set():
                        frames.append({"type": "cancelled",
                                       "emitted": self._emitted,
                                       **self._token_fields()})
                    elif (
                        self._deadline_at is not None
                        and time.monotonic() > self._deadline_at
                    ):
                        frames.append({"type": "deadline",
                                       "emitted": self._emitted,
                                       **self._token_fields()})
                    else:
                        frames.append(self._stats_frame(drained=True))
                    self._publish_prefix()
                    self.close()
                    return frames, True
                if self._request.op == "diverse":
                    frame = answer_frame(result, rank=self._emitted)
                else:
                    frame = answer_frame(result)
                self._collect_answer(result)
                self._emitted += 1
                frames.append(frame)
            return frames, False
        except Exception:
            self.close()
            raise

    def internal_state(self) -> tuple[bytes | None, int]:
        """``(checkpoint bytes, answers delivered)`` for crash re-dispatch.

        Captured by the worker backend after every unfinished slice (the
        protocol's *checkpoint frame*): pausable streams serialize their
        frontier, so a re-dispatched job resumes exactly where the last
        acknowledged slice ended; non-pausable ops return ``None`` and
        are re-dispatched as a deterministic replay that skips the
        delivered prefix.
        """
        if self._stream is not None:
            # Serialized even when already exhausted: resuming an
            # exhausted frontier yields the terminal stats frame, which
            # is exactly what re-running the job from scratch must not do.
            return self._stream.checkpoint().to_bytes(), self._emitted
        return None, self._emitted

    def close(self) -> None:
        """Release the stream (idempotent)."""
        iterator, self._iterator = self._iterator, None
        self._stream = None
        if iterator is not None:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()


class ExecutionBackend(ABC):
    """Where a job's slices execute.

    The scheduler owns admission, fairness, frame queues and
    cancellation; a backend owns the enumeration itself.  Its runners
    expose the :class:`_JobRunner` surface — ``slice_(max_answers)``
    returning ``(frames, finished)``, plus ``close()`` — and every
    backend must produce bit-identical answer frames for the same
    request (``tests/service/`` holds them to it).
    """

    #: Stable name reported by ``stats`` frames.
    name = "abstract"

    @abstractmethod
    def create_runner(self, job: "ScheduledJob"):
        """A fresh runner for one admitted job (cheap; no blocking work)."""

    def worker_stats(self) -> list[dict]:
        """Per-worker introspection rows for the ``stats`` job kind."""
        return []

    def probe(self) -> bool:
        """A liveness round trip (``/health``): can this backend run a
        slice right now?  In-process execution is alive by definition;
        remote backends ping an actual worker seat."""
        return True

    def telemetry(self) -> dict:
        """Cheap backend counters for a metrics scrape (no round trips)."""
        return {}

    def close(self) -> None:
        """Release worker resources (processes, sessions)."""


class InProcessBackend(ExecutionBackend):
    """Slices run on the scheduler's executor threads (the GIL-bound
    reference backend, kept as the differential oracle).

    Sessions are shared across jobs, one per kernel: every client asking
    about the same graph reuses one context build and one prepared DP
    table per cost.
    """

    name = "inprocess"

    def __init__(
        self,
        token_key: bytes,
        session_factory: Callable[[str], Session] | None = None,
        cache_dir: "str | None" = None,
    ) -> None:
        self._token_key = token_key
        self._session_factory = session_factory or (
            lambda kernel: Session(kernel=kernel, cache_dir=cache_dir)
        )
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()

    def session(self, kernel: str = "auto") -> Session:
        """The shared session serving jobs of ``kernel`` (built lazily).

        The pool is keyed by *resolved* kernel name, so ``"auto"`` and
        the concrete kernel it resolves to share one session.
        """
        name = resolve_kernel(kernel).name
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = self._session_factory(name)
                self._sessions[name] = session
            return session

    def create_runner(self, job: "ScheduledJob") -> _JobRunner:
        return _JobRunner(
            self.session(job.request.kernel),
            job.request,
            job._cancel,
            self._token_key,
        )

    def worker_stats(self) -> list[dict]:
        with self._lock:
            kernels = dict(self._sessions)
        return [
            {
                "worker": 0,
                "pid": os.getpid(),
                "alive": True,
                "active_jobs": None,  # jobs are not pinned in-process
                "sessions": {
                    kernel: {
                        "cache": session.cache_info(),
                        "warm": session.warm_fingerprints(),
                    }
                    for kernel, session in kernels.items()
                },
            }
        ]

    def close(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()


def kernel_registry_stats() -> dict:
    """The kernel registry as an observability payload.

    Served under ``"kernels"`` in the ``stats`` op and echoed by the
    gateway's ``/metrics`` as ``repro_kernel_info``: which kernels this
    server knows, which are available right now, and what ``"auto"``
    resolves to.
    """
    return {
        "available": list(available_kernels()),
        "auto": resolve_kernel("auto").name,
        "registered": {
            spec.name: {
                "description": spec.description,
                "available": spec.is_available(),
                "priority": spec.priority,
                "capabilities": sorted(spec.capabilities),
            }
            for spec in registered_kernels()
        },
    }


def aggregate_disk_cache(workers: list[dict], extra: "tuple | list" = ()) -> dict:
    """Fold per-worker disk-cache stats into one fleet-level view.

    The session counters (hits/misses/stores/evictions/corrupt) are per
    store handle, so they sum; ``entries``/``bytes`` describe the one
    shared database every handle points at, so the freshest view wins
    (max) instead of double-counting.  ``extra`` takes additional raw
    store-stats snapshots (the scheduler's own answer-serving handle)
    folded with the same rules.
    """
    kinds: dict[str, dict[str, int]] = {}
    state = {"enabled": False, "path": None}

    def fold(disk: dict) -> None:
        if not disk:
            return
        state["enabled"] = True
        state["path"] = disk.get("path", state["path"])
        for kind, counters in (disk.get("kinds") or {}).items():
            agg = kinds.setdefault(
                kind,
                {
                    "hits": 0,
                    "misses": 0,
                    "stores": 0,
                    "evictions": 0,
                    "corrupt": 0,
                    "entries": 0,
                    "bytes": 0,
                },
            )
            for name in ("hits", "misses", "stores", "evictions", "corrupt"):
                agg[name] += int(counters.get(name, 0))
            for name in ("entries", "bytes"):
                agg[name] = max(agg[name], int(counters.get(name, 0)))

    for row in workers:
        for sess in (row.get("sessions") or {}).values():
            fold((sess.get("cache") or {}).get("disk"))
    for disk in extra:
        fold(disk)
    return {"enabled": state["enabled"], "path": state["path"], "kinds": kinds}


class EnumerationScheduler:
    """Admits jobs and multiplexes their slices over a bounded worker pool.

    Parameters
    ----------
    max_workers:
        Executor threads == concurrently running slices.  Everything
        else — any number of admitted jobs — waits its turn on the slot
        semaphore.
    slice_answers:
        Answers per slice before a job yields its slot.  Smaller values
        trade throughput for fairness (and for cancellation latency —
        cancels and deadlines are noticed at answer boundaries).
    max_pending_frames:
        Bound of each job's frame buffer.  A consumer that falls this
        far behind pauses its job's slicing (backpressure) until it
        catches up; server memory per job is O(bound), never O(answers).
    token_key:
        HMAC key signing every resume token this scheduler mints; only
        tokens that verify under it are ever deserialized (checkpoints
        are pickle payloads — authentication is the unpickling gate).
        ``None`` (default) generates a random per-scheduler key, scoping
        tokens to this instance; pass a shared key to make tokens
        portable across a pool or a restart.
    session_factory:
        Builds the shared :class:`~repro.api.Session` for a kernel name;
        one session is created lazily per kernel and reused by every job
        requesting that kernel.  Defaults to ``Session(kernel=...)``.
        In-process backend only (worker processes build their own
        sessions).
    backend:
        Where slices execute: ``"inprocess"`` (default; the reference
        backend and differential oracle), ``"process"`` (long-lived
        worker processes with session affinity,
        :class:`~repro.service.workers.ProcessWorkerBackend`), or a
        ready :class:`ExecutionBackend` instance.
    worker_processes:
        Size of the worker-process pool for ``backend="process"``
        (default: ``max_workers``).  The slot semaphore is widened to
        cover every worker, so the pool is never starved by the slice
        cap.
    cache_dir:
        Directory of the persistent artifact store every backend
        session attaches to (:mod:`repro.cache`): the in-process
        backend's shared sessions and every worker-process seat point
        at the same directory, so one context build or DP fill serves
        the whole fleet and survives restarts.  ``None`` defers to the
        ``REPRO_CACHE_DIR`` environment variable (no store when that is
        unset too).

    The scheduler must be driven from one running asyncio event loop
    (:class:`asyncio.Queue` and the slot semaphore bind to it); the
    blocking enumeration work all happens on the executor threads.
    """

    def __init__(
        self,
        *,
        max_workers: int = 2,
        slice_answers: int = DEFAULT_SLICE_ANSWERS,
        max_pending_frames: int = 64,
        token_key: bytes | None = None,
        session_factory: Callable[[str], Session] | None = None,
        backend: "str | ExecutionBackend | None" = None,
        worker_processes: int | None = None,
        cache_dir: "str | None" = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if slice_answers < 1:
            raise ValueError(f"slice_answers must be >= 1, got {slice_answers}")
        if max_pending_frames < 1:
            raise ValueError(
                f"max_pending_frames must be >= 1, got {max_pending_frames}"
            )
        if worker_processes is not None and worker_processes < 1:
            raise ValueError(
                f"worker_processes must be >= 1, got {worker_processes}"
            )
        self._slice_answers = slice_answers
        self._max_pending = max_pending_frames
        # Explicit key, else the REPRO_TOKEN_SECRET environment secret,
        # else random (tokens then die with this instance).
        self._token_key = resolve_token_key(token_key)
        self._cache_dir = cache_dir
        self._backend = self._make_backend(
            backend, worker_processes or max_workers, session_factory
        )
        # One slot per concurrently running slice; with worker processes
        # the slot count covers the whole pool so no worker idles for
        # lack of a dispatching thread (+1 thread keeps the cheap
        # ``stats`` job kind responsive under full load).
        slots = max_workers
        if isinstance(backend, str) and backend != "inprocess":
            slots = max(max_workers, worker_processes or max_workers)
        self._executor = ThreadPoolExecutor(
            max_workers=slots + 1, thread_name_prefix="repro-service"
        )
        self._slots = asyncio.Semaphore(slots)
        self._slots_total = slots
        self._ids = itertools.count(1)
        self._jobs: dict[int, ScheduledJob] = {}
        self._admitted = 0
        self._admitted_by_op: dict[str, int] = {}
        self._completed = 0
        #: Jobs satisfied entirely from the answer-prefix disk cache —
        #: no executor slot consumed, no backend runner created.
        self._answers_served = 0
        self._slice_hist = _SliceHistogram()
        # The scheduler's own store handle for probing answer prefixes
        # before a job ever reaches the backend (lazy: opening sqlite on
        # the event-loop thread at construction would be rude).
        self._store_lock = threading.Lock()
        self._store_obj = None
        self._store_init = False
        self._closed = False

    def _make_backend(
        self,
        backend: "str | ExecutionBackend | None",
        worker_processes: int,
        session_factory: Callable[[str], Session] | None,
    ) -> ExecutionBackend:
        if isinstance(backend, ExecutionBackend):
            return backend
        if backend is None or backend in ("inprocess", "in-process", "thread"):
            return InProcessBackend(
                self._token_key, session_factory, cache_dir=self._cache_dir
            )
        if backend == "process":
            from .workers import ProcessWorkerBackend

            return ProcessWorkerBackend(
                workers=worker_processes,
                token_key=self._token_key,
                cache_dir=self._cache_dir,
            )
        raise ValueError(
            f"unknown backend {backend!r}; expected 'inprocess' or 'process'"
        )

    # -- sessions ------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend serving this scheduler's slices."""
        return self._backend

    def session(self, kernel: str = "auto") -> Session:
        """The shared in-process session for ``kernel``.

        Only meaningful for the in-process backend (worker processes
        own their sessions; inspect them through the ``stats`` job kind).
        """
        if not isinstance(self._backend, InProcessBackend):
            raise RuntimeError(
                "session() is an in-process-backend accessor; use the "
                "'stats' job kind to inspect worker sessions"
            )
        return self._backend.session(kernel)

    # -- lifecycle -----------------------------------------------------
    async def submit(self, request: ServiceRequest) -> ScheduledJob:
        """Admit one job; its frames start flowing into ``job.frames``."""
        if self._closed:
            raise RuntimeError("scheduler is closed")
        job = ScheduledJob(next(self._ids), request, self._max_pending)
        self._jobs[job.id] = job
        self._admitted += 1
        self._admitted_by_op[request.op] = (
            self._admitted_by_op.get(request.op, 0) + 1
        )
        job._task = asyncio.create_task(self._run(job))
        return job

    def _store(self):
        """The scheduler's lazily opened artifact store (or ``None``)."""
        if self._store_init:
            return self._store_obj
        with self._store_lock:
            if not self._store_init:
                from ..cache.store import open_store

                try:
                    self._store_obj = open_store(self._cache_dir)
                except Exception:
                    self._store_obj = None
                self._store_init = True
        return self._store_obj

    def _serve_from_answers(self, request: ServiceRequest) -> "list[dict] | None":
        """All frames of a prefix-covered job, straight from disk.

        Returns ``None`` whenever the job cannot be fully satisfied from
        the cached answer prefix — for any reason at all, including
        errors: the live path re-raises token/validation failures with
        their proper error frames, so this probe never converts one into
        a silent miss of a different shape.  Runs on an executor thread.
        """
        try:
            store = self._store()
            if store is None or not isinstance(request.cost, str):
                return None
            from ..cache.answers import (
                candidate_keys,
                load_prefix,
                preprocess_applies_for,
                result_from_cached,
            )

            started = time.monotonic()
            if request.token is not None:
                payload = verify_token(self._token_key, request.token)
                checkpoint = load_checkpoint(payload)
                if checkpoint.cost_spec is None or checkpoint.exhausted:
                    return None
                from ..preprocess.recompose import ComposedCheckpoint

                probes = candidate_keys(
                    fingerprint=checkpoint.fingerprint,
                    cost_spec=checkpoint.cost_spec,
                    width_bound=checkpoint.width_bound,
                    kernel=request.kernel,
                    applies=None,
                    composed=isinstance(checkpoint, ComposedCheckpoint),
                )
                start = checkpoint.next_rank
                graph = checkpoint.restore_graph()
            elif request.graph is not None:
                from ..api.fingerprint import graph_fingerprint

                graph = request.graph
                probes = candidate_keys(
                    fingerprint=graph_fingerprint(graph),
                    cost_spec=request.cost,
                    width_bound=request.width_bound,
                    kernel=request.kernel,
                    applies=preprocess_applies_for(
                        request.cost, request.preprocess
                    ),
                )
                start = 0
            else:
                return None
            _key, record = load_prefix(store, probes)
            limit = request.result_limit
            if record is None or not record.covers(start, limit):
                return None
            served, end, ckpt_bytes, exhausted_here = record.page(start, limit)
            frames = [
                answer_frame(result_from_cached(answer, graph, start + index))
                for index, answer in enumerate(served)
            ]
            if exhausted_here or ckpt_bytes is None:
                token_fields = {"next_rank": end, "checkpoint": None}
            else:
                token_fields = {
                    "next_rank": end,
                    "checkpoint": encode_token(
                        sign_token(self._token_key, ckpt_bytes)
                    ),
                }
            frames.append(
                {
                    "type": "stats",
                    "emitted": len(served),
                    "expansions": 0,
                    "exhausted": exhausted_here,
                    "elapsed_seconds": round(time.monotonic() - started, 6),
                    "engine": "cache",
                    "preprocessed": record.preprocessed,
                    **token_fields,
                }
            )
            return frames
        except Exception:
            return None

    async def _run(self, job: ScheduledJob) -> None:
        job.status = "running"
        loop = asyncio.get_running_loop()
        if job.request.op == "stats":
            await self._run_stats(job, loop)
            return
        runner = None
        terminal = "error"
        try:
            if job.request.op in ("enumerate", "top"):
                # Prefix-covered jobs are answered from disk without
                # consuming a slice slot or touching the backend — no
                # worker seat, no executor-slot wait.  (The probe itself
                # runs on the executor's spare thread, like stats.)
                frames = await loop.run_in_executor(
                    self._executor, self._serve_from_answers, job.request
                )
                if frames:
                    self._answers_served += 1
                    for frame in frames:
                        if frame["type"] == "answer":
                            job.emitted += 1
                        else:
                            terminal = frame["type"]
                        await job.frames.put(frame)
                    return
            runner = self._backend.create_runner(job)
            while True:
                async with self._slot():
                    started = time.perf_counter()
                    frames, finished = await loop.run_in_executor(
                        self._executor, runner.slice_, self._slice_answers
                    )
                    self._slice_hist.observe(time.perf_counter() - started)
                for frame in frames:
                    if frame["type"] == "answer":
                        job.emitted += 1
                    else:
                        terminal = frame["type"]
                    # Blocks when the consumer is behind (bounded queue):
                    # the slot is already released, so a slow client
                    # costs buffer space and its own latency, nothing else.
                    await job.frames.put(frame)
                if finished:
                    break
                # Explicit fairness point: even if the semaphore has free
                # slots, let other ready jobs interleave between slices.
                await asyncio.sleep(0)
        except TokenAuthError as exc:
            # Key rotation / restart, not corruption: a distinct code so
            # clients know to re-submit rather than distrust their bytes.
            await job.frames.put(
                {
                    "type": "error",
                    "code": "token_key_mismatch",
                    "message": str(exc),
                }
            )
        except ProtocolError as exc:
            await job.frames.put(
                {"type": "error", "code": "bad-request", "message": str(exc)}
            )
        except Exception as exc:  # keep the scheduler alive, report in-band
            await job.frames.put(
                {"type": "error", "code": "internal", "message": str(exc)}
            )
        finally:
            if runner is not None:
                runner.close()
            job.status = terminal
            self._completed += 1
            self._jobs.pop(job.id, None)

    async def _run_stats(self, job: ScheduledJob, loop) -> None:
        """The ``stats`` job kind: one terminal ``service-stats`` frame.

        Worker introspection may block on pipe round trips, so it runs
        on the executor (never the event loop) — but outside the slot
        semaphore: observability must answer even when every slice slot
        is busy (the executor keeps a spare thread for exactly this).
        """
        terminal = "error"
        try:
            payload = await loop.run_in_executor(
                self._executor, self.service_stats
            )
            terminal = "service-stats"
            await job.frames.put({"type": "service-stats", **payload})
        except Exception as exc:
            await job.frames.put(
                {"type": "error", "code": "internal", "message": str(exc)}
            )
        finally:
            job.status = terminal
            self._completed += 1
            self._jobs.pop(job.id, None)

    def _slot(self):
        return self._slots

    @property
    def token_key(self) -> bytes:
        """The key this scheduler signs resume tokens with."""
        return self._token_key

    def open_token(self, token: bytes):
        """Authenticate a wire token this scheduler minted and load it.

        The inspection/debugging counterpart of the resume path; raises
        :class:`~repro.service.protocol.ProtocolError` on a token from
        another instance (or tampered bytes) before any unpickling.
        """
        return load_checkpoint(verify_token(self._token_key, token))

    def cancel(self, job: ScheduledJob) -> None:
        """Request cooperative cancellation (a disconnect calls this too).

        The job's running slice notices at its next answer boundary,
        emits a terminal ``cancelled`` frame and releases the worker
        slot; a job that already finished is unaffected.  Remote
        backends additionally forward the cancel to the worker process
        holding the job (via the job's registered cancel callback).
        """
        job.request_cancel()

    @property
    def active_jobs(self) -> int:
        """Jobs admitted but not yet wound down (slot pressure proxy)."""
        return len(self._jobs)

    def stats(self) -> dict[str, int]:
        """Scheduler counters (admission/completion/live job counts)."""
        return {
            "admitted": self._admitted,
            "completed": self._completed,
            "active": self.active_jobs,
            "answers_served": self._answers_served,
        }

    def metrics_snapshot(self) -> dict:
        """Cheap, non-blocking counters for a metrics scrape.

        Everything here is event-loop state or a plain attribute — no
        pipe round trips, so a scrape stays fast even while every seat
        is busy (or crashed).  The expensive per-worker/cache rows come
        from :meth:`service_stats` instead.
        """
        slots_free = self._slots._value
        running = min(self._slots_total - slots_free, self.active_jobs)
        return {
            "backend": self._backend.name,
            "admitted": self._admitted,
            "completed": self._completed,
            "active": self.active_jobs,
            "answers_served": self._answers_served,
            "jobs_by_op": dict(self._admitted_by_op),
            "slots_total": self._slots_total,
            "slots_free": slots_free,
            # Admitted-but-not-sliced jobs waiting on the slot semaphore.
            "queue_depth": max(0, self.active_jobs - running),
            "slice_seconds": self._slice_hist.snapshot(),
            "backend_telemetry": self._backend.telemetry(),
        }

    def probe(self) -> bool:
        """One execution-backend health round trip (may block briefly)."""
        return self._backend.probe()

    def service_stats(self) -> dict:
        """The full observability payload behind the ``stats`` job kind.

        Scheduler counters plus per-worker introspection rows from the
        backend (queue depth, warm-session fingerprints, cache hits).
        May block on worker pipe round trips — call from an executor
        thread, never the event loop (``_run_stats`` does).
        """
        workers = self._backend.worker_stats()
        extra = []
        if self._store_init and self._store_obj is not None:
            try:
                extra.append(self._store_obj.stats())
            except Exception:
                pass
        return {
            "scheduler": self.stats(),
            "backend": self._backend.name,
            "workers": workers,
            "cache": aggregate_disk_cache(workers, extra=extra),
            "kernels": kernel_registry_stats(),
        }

    async def close(self) -> None:
        """Cancel every live job, wait for wind-down, stop the executor."""
        self._closed = True
        jobs = list(self._jobs.values())
        for job in jobs:
            self.cancel(job)
        for job in jobs:
            if job._task is None:
                continue
            # Give a still-attached consumer (a live connection handler)
            # first claim on the remaining frames, so the client receives
            # its terminal cancelled frame + resume token.  Only when the
            # runner cannot finish on its own — the consumer is gone and
            # the bounded queue is full — drain on its behalf.
            try:
                await asyncio.wait_for(asyncio.shield(job._task), timeout=1.0)
            except asyncio.TimeoutError:
                drain = asyncio.create_task(job.drain())
                await job._task
                drain.cancel()
                try:
                    await drain
                except asyncio.CancelledError:
                    pass
        self._executor.shutdown(wait=True)
        self._backend.close()
        with self._store_lock:
            if self._store_obj is not None:
                self._store_obj.close()
                self._store_obj = None
