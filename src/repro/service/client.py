"""A typed blocking client for the enumeration service.

:class:`ServiceClient` speaks the NDJSON protocol of
:mod:`repro.service.protocol` over a plain TCP socket — no asyncio on
the client side, so tests, benchmarks, and synchronous applications can
drive a server with ordinary calls::

    client = ServiceClient(host, port)
    result = client.top(graph, "fill", k=10)        # ServiceResult
    for answer in result.answers:                   # AnswerFrame, typed
        print(answer.rank, answer.cost)
    more = client.resume(result.checkpoint, k=10)   # ranks 10..19

Streaming and mid-stream control are available through :meth:`open`,
which returns a :class:`ServiceStream` — iterate it for typed frames as
they arrive, :meth:`ServiceStream.cancel` for an in-band cooperative
cancel, or :meth:`ServiceStream.abort` to drop the connection outright
(the server treats that exactly like a crashed client).  Every frame
keeps the raw line it was parsed from (``frame.raw``), which is what
the differential suite compares byte-for-byte against serial
``Session.stream`` output.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Iterator, Union

from ..graphs.graph import Graph
from .protocol import (
    AnswerFrame,
    CancelledFrame,
    DeadlineFrame,
    ErrorFrame,
    ProtocolError,
    ServiceRequest,
    ServiceStatsFrame,
    StatsFrame,
    decode_frame,
    encode_frame,
    typed_frame,
)

__all__ = ["ServiceClient", "ServiceStream", "ServiceResult", "ServiceError"]

TerminalFrame = Union[
    StatsFrame, ServiceStatsFrame, DeadlineFrame, CancelledFrame, ErrorFrame
]


class ServiceError(RuntimeError):
    """An in-band ``error`` frame, raised client-side.

    The original frame is available as :attr:`frame`.
    """

    def __init__(self, frame: ErrorFrame) -> None:
        super().__init__(f"{frame.code}: {frame.message}")
        self.frame = frame


@dataclass(frozen=True)
class ServiceResult:
    """One fully-collected response: answers plus the terminal frame."""

    answers: tuple[AnswerFrame, ...]
    terminal: TerminalFrame

    @property
    def checkpoint(self) -> bytes | None:
        """The resume token, when the terminal frame carries one."""
        return getattr(self.terminal, "checkpoint", None)

    @property
    def exhausted(self) -> bool:
        """Whether the server reported the enumeration space drained."""
        return isinstance(self.terminal, StatsFrame) and self.terminal.exhausted

    @property
    def answer_lines(self) -> tuple[bytes, ...]:
        """The raw ``answer`` frame bytes, in arrival order."""
        return tuple(a.raw for a in self.answers)


class ServiceStream:
    """One open job: a socket plus an iterator of typed frames."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rb")
        self.terminal: TerminalFrame | None = None

    def __iter__(self) -> Iterator:
        return self

    def __next__(self):
        if self.terminal is not None:
            raise StopIteration
        line = self._file.readline()
        if not line:
            self.close()
            raise ProtocolError("server closed the connection mid-stream")
        frame = typed_frame(decode_frame(line), raw=line)
        if not isinstance(frame, AnswerFrame):
            self.terminal = frame
            self.close()
        return frame

    def cancel(self) -> None:
        """Send the in-band cancel frame; keep reading for the terminal."""
        try:
            self._sock.sendall(encode_frame({"type": "cancel"}))
        except OSError:
            pass  # stream already wound down server-side

    def abort(self) -> None:
        """Drop the connection without a cancel frame (simulated crash)."""
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceStream":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class ServiceClient:
    """Blocking entry points over one server address (one socket per job)."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def open(self, request: ServiceRequest) -> ServiceStream:
        """Send one request; returns the live frame stream."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            sock.sendall(encode_frame(request.to_frame()))
        except OSError:
            sock.close()
            raise
        return ServiceStream(sock)

    def send_raw(self, line: bytes) -> ServiceStream:
        """Send raw bytes as the opening frame (malformed-input testing)."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            sock.sendall(line)
        except OSError:
            sock.close()
            raise
        return ServiceStream(sock)

    def collect(self, request: ServiceRequest) -> ServiceResult:
        """Run one job to its terminal frame; raise on in-band errors."""
        answers: list[AnswerFrame] = []
        with self.open(request) as stream:
            for frame in stream:
                if isinstance(frame, AnswerFrame):
                    answers.append(frame)
        terminal = stream.terminal
        assert terminal is not None
        if isinstance(terminal, ErrorFrame):
            raise ServiceError(terminal)
        return ServiceResult(answers=tuple(answers), terminal=terminal)

    # -- typed entry points --------------------------------------------
    def enumerate(
        self,
        graph: Graph,
        cost: str = "width",
        *,
        k: int | None = None,
        **options: object,
    ) -> ServiceResult:
        """Stream the ranked sequence (all of it unless capped)."""
        return self.collect(
            ServiceRequest(op="enumerate", graph=graph, cost=cost, k=k, **options)
        )

    def top(
        self,
        graph: Graph,
        cost: str = "width",
        k: int = 10,
        **options: object,
    ) -> ServiceResult:
        """The ``k`` cheapest answers, with a resume token attached."""
        return self.collect(
            ServiceRequest(op="top", graph=graph, cost=cost, k=k, **options)
        )

    def diverse(
        self,
        graph: Graph,
        cost: str = "width",
        k: int = 10,
        *,
        min_distance: int = 1,
        **options: object,
    ) -> ServiceResult:
        """Greedy quality/diversity selection over the ranked prefix."""
        return self.collect(
            ServiceRequest(
                op="diverse",
                graph=graph,
                cost=cost,
                k=k,
                min_distance=min_distance,
                **options,
            )
        )

    def decompositions(
        self,
        graph: Graph,
        cost: str = "width",
        k: int | None = 10,
        **options: object,
    ) -> ServiceResult:
        """Proper tree decompositions by increasing cost."""
        return self.collect(
            ServiceRequest(
                op="decompositions", graph=graph, cost=cost, k=k, **options
            )
        )

    def service_stats(self) -> ServiceStatsFrame:
        """Server observability: scheduler counters plus per-worker rows
        (queue depth, warm-session fingerprints, cache hit counts)."""
        result = self.collect(ServiceRequest(op="stats"))
        terminal = result.terminal
        assert isinstance(terminal, ServiceStatsFrame)
        return terminal

    def resume(
        self, token: bytes, *, k: int | None = None, **options: object
    ) -> ServiceResult:
        """Continue a paused stream from its checkpoint token.

        The concatenation of the emitting job's answers and this call's
        answers is bit-identical to one uninterrupted run.
        """
        return self.collect(
            ServiceRequest(op="enumerate", token=token, k=k, **options)
        )
