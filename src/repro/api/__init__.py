"""``repro.api`` — the unified session layer (the public entry point).

Everything the library can do — ranked enumeration of minimal
triangulations, diverse top-k, proper tree decompositions — is served
through one surface:

* :class:`~repro.api.session.Session` — builds the expensive
  initialization (:class:`~repro.core.context.TriangulationContext`)
  once per graph fingerprint behind an LRU cache and exposes
  ``stream()`` / ``top()`` / ``diverse()`` / ``decompositions()``.
* :class:`~repro.api.request.EnumerationRequest` /
  :class:`~repro.api.response.EnumerationResponse` — the typed
  request/response pair behind :meth:`Session.execute`.
* :class:`~repro.api.checkpoint.StreamCheckpoint` — a serialized
  priority-queue frontier; :meth:`Session.resume` continues the exact
  ranked sequence where a prior call stopped (paginated top-k).

Quick start::

    from repro.api import Session

    session = Session()
    page = session.top(graph, "fill", k=5)
    for result in page.results:
        print(result.rank, result.cost)
    more = session.resume(page.checkpoint, k=5)   # ranks 5..9

The legacy free functions (``ranked_triangulations``,
``top_k_triangulations``, ``diverse_top_k``, ...) remain importable as
thin deprecated wrappers over a process-wide default session
(:func:`default_session`).
"""

from __future__ import annotations

from ..preprocess.recompose import ComposedCheckpoint, ComposedRankedStream
from .checkpoint import FrontierEntry, StreamCheckpoint, load_checkpoint
from .fingerprint import graph_fingerprint
from .request import EnumerationRequest
from .response import EnumerationResponse, EnumerationStats
from .session import Session
from .stream import RankedStream

__all__ = [
    "Session",
    "EnumerationRequest",
    "EnumerationResponse",
    "EnumerationStats",
    "RankedStream",
    "ComposedRankedStream",
    "StreamCheckpoint",
    "ComposedCheckpoint",
    "FrontierEntry",
    "graph_fingerprint",
    "load_checkpoint",
    "default_session",
]

_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The process-wide session behind the legacy free functions.

    Created on first use with room for 16 cached contexts.  Long-running
    services should prefer an explicitly managed :class:`Session`.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session(max_contexts=16)
    return _DEFAULT_SESSION
