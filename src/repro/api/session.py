"""Build-once, serve-many session layer over the ranked enumerator.

The paper's implementation amortizes the expensive initialization step —
minimal separators, PMCs, full blocks (Section 7.1) — across all
``MinTriang`` calls for one graph.  :class:`Session` lifts that discipline
to the public surface: it keeps an LRU cache of
:class:`~repro.core.context.TriangulationContext` objects keyed by graph
*content fingerprint* (plus width bound), caches the unconstrained DP
table per cost spec, and answers every request — ranked, diverse, or tree
decompositions — through one typed request/response pair.

The serving primitives::

    from repro.api import Session

    session = Session()
    page = session.top(graph, "fill", k=10)          # ranks 0..9
    token = page.checkpoint.to_bytes()               # opaque resume token
    ...
    more = session.resume(token, k=10)               # ranks 10..19,
                                                     # bit-identical to an
                                                     # uninterrupted run

Sessions are cheap; create one per process (or per tenant) and reuse it.
Cache operations are lock-protected, so a session may serve concurrent
threads; per-stream engine strategies must not be shared across
overlapping runs (pass names or worker counts, not strategy instances,
as the session default).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from itertools import islice

from ..core.context import TriangulationContext
from ..core.diversity import _fill_set
from ..core.mintriang import min_triangulation_and_table
from ..core.proper import RankedDecomposition
from ..core.spanning import clique_trees
from ..costs.registry import resolve_cost
from ..engine import ExpansionStrategy
from ..graphs.graph import Graph
from ..graphs.kernels import KernelSpec
from ..preprocess.recompose import (
    ComposedCheckpoint,
    ComposedRankedStream,
    PreprocessPlan,
    composition_for,
)
from .checkpoint import StreamCheckpoint, load_checkpoint
from .fingerprint import graph_fingerprint
from .request import EnumerationRequest
from .response import EnumerationResponse, EnumerationStats
from .stream import RankedStream

__all__ = ["Session"]


def _diverse_selection(
    stream,
    k: int,
    min_distance: int,
    scan_limit: int | None = None,
    should_stop=None,
):
    """Greedy quality/diversity selection over a ranked stream.

    Scans (at most ``scan_limit``, default ``25 * k``) results in ranked
    order and yields the triangulations that are >= ``min_distance``
    fill edges away from every previously kept one, stopping after
    ``k`` keeps.  The one selection rule — including the scan-window
    default — behind :meth:`Session.diverse` and the service
    scheduler's sliceable diverse jobs; both surfaces stay identical by
    construction.  ``should_stop`` (if given) is polled once per scanned
    result so callers can impose time budgets.
    """
    if scan_limit is None:
        scan_limit = 25 * k
    kept_fills: list[frozenset] = []
    for result in islice(stream, scan_limit):
        fill = _fill_set(result.triangulation)
        if all(
            len(fill ^ other) >= min_distance for other in kept_fills
        ):
            kept_fills.append(fill)
            yield result.triangulation
            if len(kept_fills) >= k:
                return
        if should_stop is not None and should_stop():
            return


def _expand_decompositions(stream, per_triangulation: int | None):
    """Proposition 6.1: expand a ranked triangulation stream into its
    clique trees, preserving cost order (the one shared implementation
    behind ``decomposition_stream`` and ``decompositions``)."""
    rank = 0
    for result in stream:
        trees = clique_trees(result.triangulation.chordal_graph)
        if per_triangulation is not None:
            trees = islice(trees, per_triangulation)
        for td in trees:
            yield RankedDecomposition(
                decomposition=td,
                cost=result.cost,
                triangulation=result.triangulation,
                rank=rank,
            )
            rank += 1


class _CacheEntry:
    """One cached context plus its per-cost-spec prepared DP tables."""

    __slots__ = ("context", "prepared")

    def __init__(self, context: TriangulationContext) -> None:
        self.context = context
        # cost spec (registry name) -> (first, unconstrained table)
        self.prepared: dict[str, tuple] = {}


class Session:
    """A build-once context cache plus the typed enumeration entry points.

    Parameters
    ----------
    max_contexts:
        LRU capacity of the context cache (per ``(fingerprint,
        width_bound)`` key).
    engine:
        Default expansion backend for every request that does not name
        one: ``"serial"`` (default), ``"process-pool"``, or a worker
        count.  Avoid strategy *instances* here — one instance cannot
        serve overlapping streams.
    kernel:
        Graph kernel used when this session builds a context: a
        registered kernel name, a :class:`~repro.graphs.kernels
        .KernelSpec`, or the default ``"auto"`` policy (highest-priority
        available kernel — numpy when importable, else bitset).
        ``"auto"`` is resolved here at construction, so cache keys and
        reported stats always carry a concrete kernel name.  All kernels
        serve bit-identical enumeration sequences — see the README
        "Performance" section for how to choose or register one.
    preprocess:
        Default for requests that do not say: ``True`` (default) routes
        eligible requests through the preprocessing pipeline — safe
        reductions plus clique-separator atom decomposition with exact
        ranked recomposition (:mod:`repro.preprocess`).  It applies only
        to registry-name costs with a declared composition (``width``,
        ``fill``, ``sum-exp-bags``; notably *not* ``lex-width-fill``)
        on graphs that actually decompose, and falls back to the direct
        pipeline otherwise — both routes rank over the full graph and
        agree on every cost and every answer set.  ``False`` disables
        it session-wide.
    cache_dir:
        Directory of a persistent :class:`~repro.cache.store
        .ArtifactStore`.  When set (or when the ``REPRO_CACHE_DIR``
        environment variable is), every in-memory cache miss — context
        build, prepared DP table, preprocessing plan — first consults
        the store, and every fill publishes back, so the expensive
        initialization survives the process and is shared with every
        other session on the same directory.  Answers served from the
        store are byte-identical to cold builds (CI proves this
        differentially on the golden corpus).
    store:
        An already-open :class:`~repro.cache.store.ArtifactStore` to
        attach instead of opening one from ``cache_dir``; the caller
        keeps ownership (``close()`` will not close it).
    """

    def __init__(
        self,
        max_contexts: int = 8,
        engine: "object | None" = None,
        kernel: "str | KernelSpec" = "auto",
        preprocess: bool = True,
        cache_dir: "str | None" = None,
        store: "object | None" = None,
    ) -> None:
        from ..graphs.kernels import resolve_kernel

        if max_contexts < 1:
            raise ValueError(f"max_contexts must be >= 1, got {max_contexts}")
        self._max_contexts = max_contexts
        self._engine = engine
        self._kernel_spec = resolve_kernel(kernel)
        self._kernel = self._kernel_spec.name
        self._preprocess = bool(preprocess)
        if store is not None:
            self._store = store
            self._owns_store = False
        else:
            from ..cache.store import open_store

            self._store = open_store(cache_dir)
            self._owns_store = self._store is not None
        self._contexts: OrderedDict[tuple[str, int | None], _CacheEntry] = (
            OrderedDict()
        )
        self._plans: OrderedDict[tuple[str, bool], PreprocessPlan] = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._builds = 0

    # ------------------------------------------------------------------
    # Context cache
    # ------------------------------------------------------------------
    def context(
        self,
        graph: Graph,
        width_bound: int | None = None,
    ) -> TriangulationContext:
        """The shared initialization for ``graph``, built at most once.

        Identical-content graphs (same labels, same edges) share one
        context regardless of object identity; a mutated graph has a new
        fingerprint and misses the cache instead of serving stale state.
        """
        entry, _fp, _cached = self._entry_for(graph, width_bound)
        return entry.context

    def adopt_context(self, context: TriangulationContext) -> str:
        """Register a prebuilt context; returns its graph fingerprint.

        The context (including ``context.graph``) is cached as given —
        do not mutate the graph afterwards, or the cache entry will no
        longer match its fingerprint key.
        """
        _entry, fp, _cached = self._entry_for(
            context.graph, context.width_bound, prebuilt=context
        )
        return fp

    def _entry_for(
        self,
        graph: Graph,
        width_bound: int | None,
        prebuilt: TriangulationContext | None = None,
    ) -> tuple[_CacheEntry, str, bool]:
        if prebuilt is not None:
            width_bound = prebuilt.width_bound
        fp = graph_fingerprint(graph)
        key = (fp, width_bound)
        with self._lock:
            entry = self._contexts.get(key)
            if entry is not None:
                self._contexts.move_to_end(key)
                if prebuilt is not None and entry.context is not prebuilt:
                    entry = _CacheEntry(prebuilt)
                    self._contexts[key] = entry
                    return entry, fp, False
                self._hits += 1
                return entry, fp, True
            self._misses += 1
        if prebuilt is not None:
            context = prebuilt
        else:
            context = self._stored_context(fp, width_bound)
            if context is None:
                # Build outside the lock: initialization is the slow
                # part.  Snapshot the graph first — the cache key is
                # content-based, so a caller mutating their graph object
                # afterwards must not be able to poison the entry it was
                # fingerprinted under.
                context = TriangulationContext.build(
                    graph.copy(), width_bound=width_bound, kernel=self._kernel
                )
                with self._lock:
                    self._builds += 1
                self._publish_context(fp, context)
        entry = _CacheEntry(context)
        with self._lock:
            existing = self._contexts.get(key)
            if existing is not None and prebuilt is None:
                # Lost a benign build race; serve the incumbent.
                self._contexts.move_to_end(key)
                return existing, fp, True
            self._contexts[key] = entry
            self._contexts.move_to_end(key)
            while len(self._contexts) > self._max_contexts:
                self._contexts.popitem(last=False)
        return entry, fp, False

    def _stored_context(
        self, fp: str, width_bound: int | None
    ) -> TriangulationContext | None:
        """This session's kernel-keyed context from the disk store, if any."""
        if self._store is None:
            return None
        from ..cache.store import context_key

        obj = self._store.get(
            "context", context_key(fp, width_bound, self._kernel)
        )
        if (
            isinstance(obj, TriangulationContext)
            and obj.kernel == self._kernel
            and obj.width_bound == width_bound
        ):
            return obj
        return None

    def _publish_context(self, fp: str, context: TriangulationContext) -> None:
        if self._store is None:
            return
        from ..cache.store import context_key

        self._store.put(
            "context",
            context_key(fp, context.width_bound, context.kernel),
            context,
        )

    def _prepared(
        self,
        entry: _CacheEntry,
        spec: str | None,
        cost: object,
        fingerprint: str | None = None,
    ) -> tuple | None:
        """Cached ``(first, unconstrained table)`` for a registry cost.

        Lock-protected for concurrent callers (the service scheduler
        opens streams from several executor threads at once): the slow
        DP runs outside the lock, and when two threads race on the same
        spec the first insert wins, so every stream sees one canonical
        table.  With a disk store attached (and a fingerprint to key
        by), a memory miss consults the store before running the DP and
        publishes the pair it computed.
        """
        if spec is None:
            return None
        with self._lock:
            pair = entry.prepared.get(spec)
        if pair is not None:
            return pair
        key = None
        computed = None
        if self._store is not None and fingerprint is not None:
            from ..cache.store import prepared_key

            key = prepared_key(
                fingerprint,
                spec,
                entry.context.width_bound,
                entry.context.kernel,
            )
            obj = self._store.get("prepared", key)
            if isinstance(obj, tuple) and len(obj) == 2:
                computed = obj
        loaded = computed is not None
        if computed is None:
            computed = min_triangulation_and_table(entry.context, cost)
        with self._lock:
            pair = entry.prepared.setdefault(spec, computed)
        if key is not None and not loaded and pair is computed:
            self._store.put("prepared", key, computed)
        return pair

    @property
    def kernel(self) -> "KernelSpec":
        """The resolved :class:`~repro.graphs.kernels.KernelSpec` this
        session builds contexts with (``"auto"`` never survives
        construction, so this is always a concrete registered spec)."""
        return self._kernel_spec

    @property
    def kernel_name(self) -> str:
        """The resolved kernel's registry name (what cache keys carry)."""
        return self._kernel

    @property
    def preprocess(self) -> bool:
        """This session's default for the per-request ``preprocess`` flag."""
        return self._preprocess

    @property
    def store(self):
        """The attached :class:`~repro.cache.store.ArtifactStore`, or
        ``None`` when this session runs memory-only."""
        return self._store

    def cache_info(self) -> dict:
        """Context-cache counters (hits/misses/builds/current size).

        With a disk store attached, the ``"disk"`` key carries the
        store's :meth:`~repro.cache.store.ArtifactStore.stats` snapshot
        (per-kind hit/miss/eviction/byte counters).
        """
        with self._lock:
            info: dict = {
                "contexts": len(self._contexts),
                "max_contexts": self._max_contexts,
                "hits": self._hits,
                "misses": self._misses,
                "builds": self._builds,
                "plans": len(self._plans),
                "prepared_tables": sum(
                    len(entry.prepared) for entry in self._contexts.values()
                ),
            }
        if self._store is not None:
            info["disk"] = self._store.stats()
        return info

    def warm_fingerprints(self) -> list[str]:
        """Fingerprints of the contexts currently warm, coldest first.

        The observability hook behind the service's ``stats`` job kind:
        a worker whose warm set contains a request's fingerprint serves
        it without rebuilding the initialization (affinity routing aims
        requests at exactly that worker).
        """
        with self._lock:
            return [fp for fp, _width_bound in self._contexts]

    def close(self) -> None:
        """Drop every cached context, prepared table and preprocess plan.

        A store this session opened itself (via ``cache_dir`` or the
        environment) is closed too; a caller-supplied ``store=`` stays
        open — the caller owns it.
        """
        with self._lock:
            self._contexts.clear()
            self._plans.clear()
        if self._owns_store and self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def plan_for(
        self, graph: Graph, *, duplicate_sensitive: bool = False
    ) -> PreprocessPlan:
        """The (cached) preprocessing plan for ``graph``.

        Exposed for inspection and benchmarking; the enumeration entry
        points call this internally when preprocessing applies.  Plans
        are cached per ``(fingerprint, duplicate_sensitive)`` alongside
        the context LRU.
        """
        fp = graph_fingerprint(graph)
        key = (fp, duplicate_sensitive)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        # Build outside the lock; losing a race just wastes one build.
        plan = self._stored_plan(fp, duplicate_sensitive)
        if plan is None:
            plan = PreprocessPlan.build(
                graph, duplicate_sensitive=duplicate_sensitive
            )
            self._publish_plan(fp, duplicate_sensitive, plan)
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self._max_contexts:
                self._plans.popitem(last=False)
        return plan

    def _stored_plan(
        self, fp: str, duplicate_sensitive: bool
    ) -> PreprocessPlan | None:
        if self._store is None:
            return None
        from ..cache.store import plan_key

        obj = self._store.get("plan", plan_key(fp, duplicate_sensitive))
        return obj if isinstance(obj, PreprocessPlan) else None

    def _publish_plan(
        self, fp: str, duplicate_sensitive: bool, plan: PreprocessPlan
    ) -> None:
        if self._store is not None:
            from ..cache.store import plan_key

            self._store.put("plan", plan_key(fp, duplicate_sensitive), plan)

    def _engine_spec(self, engine: "object | None") -> "object | None":
        return engine if engine is not None else self._engine

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def stream(
        self,
        graph: Graph | str,
        cost: "str | object" = "width",
        *,
        width_bound: int | None = None,
        engine: "object | None" = None,
        context: TriangulationContext | None = None,
        preprocess: bool | None = None,
    ) -> "RankedStream | ComposedRankedStream":
        """Open a resumable cost-ranked stream over ``graph``.

        ``context`` overrides the cache with a prebuilt initialization
        (it is adopted into the cache; its own ``width_bound`` wins, and
        preprocessing is bypassed).  ``preprocess=None`` defers to the
        session default; when preprocessing applies, the returned stream
        is a :class:`~repro.preprocess.recompose.ComposedRankedStream`
        with the same iteration/checkpoint surface.
        """
        stream, _meta = self._open(
            graph, cost, width_bound=width_bound, engine=engine,
            context=context, preprocess=preprocess,
        )
        return stream

    def _preprocess_applies(
        self,
        graph: Graph,
        spec: str | None,
        engine: "object | None",
        context: TriangulationContext | None,
        preprocess: bool | None,
    ) -> bool:
        """Whether this request is eligible for the composed pipeline.

        Preprocessing needs a registry-name cost with a declared
        composition (per-atom values must combine exactly), no caller-
        supplied prebuilt context, and no shared strategy *instance*
        (one instance cannot serve several concurrent atom streams —
        names and worker counts resolve per atom instead).
        """
        effective = self._preprocess if preprocess is None else preprocess
        return (
            effective
            and context is None
            and spec is not None
            and composition_for(spec) is not None
            and not isinstance(self._engine_spec(engine), ExpansionStrategy)
        )

    def _open(
        self,
        graph: Graph | str,
        cost: "str | object",
        *,
        width_bound: int | None = None,
        engine: "object | None" = None,
        context: TriangulationContext | None = None,
        preprocess: bool | None = None,
    ) -> "tuple[RankedStream | ComposedRankedStream, dict]":
        if isinstance(graph, str):
            from ..graphs.io import read_graph

            graph = read_graph(graph)
        spec = cost if isinstance(cost, str) else None
        if graph.num_vertices() == 0:
            stream = RankedStream.start(
                None, None, cost_spec=spec, fingerprint=graph_fingerprint(graph)
            )
            return stream, {"context_cached": False, "init_seconds": 0.0}
        if self._preprocess_applies(graph, spec, engine, context, preprocess):
            assert spec is not None
            composition = composition_for(spec)
            assert composition is not None
            plan = self.plan_for(
                graph, duplicate_sensitive=composition.duplicate_sensitive
            )
            if not plan.trivial:
                return self._open_composed(
                    plan, spec, composition,
                    width_bound=width_bound, engine=engine,
                )
        if context is None and not graph.is_connected():
            raise ValueError(
                "ranked enumeration requires a connected graph; "
                "enumerate per component instead (or enable preprocess "
                "with a composable cost, which splits components "
                "automatically)"
            )
        entry, fp, cached = self._entry_for(graph, width_bound, prebuilt=context)
        cost_obj = resolve_cost(cost, entry.context.graph)
        prepared = self._prepared(entry, spec, cost_obj, fp)
        stream = RankedStream.start(
            entry.context,
            cost_obj,
            engine=self._engine_spec(engine),
            cost_spec=spec,
            fingerprint=fp,
            prepared=prepared,
        )
        meta = {
            "context_cached": cached,
            "init_seconds": entry.context.init_seconds,
        }
        return stream, meta

    def _open_composed(
        self,
        plan: PreprocessPlan,
        spec: str,
        composition,
        *,
        width_bound: int | None,
        engine: "object | None",
    ) -> tuple[ComposedRankedStream, dict]:
        """Start a composed stream, one cached context per variable atom."""
        engine_spec = self._engine_spec(engine)
        cached_flags: list[bool] = []
        init_seconds = [0.0]

        def open_piece(atom_graph: Graph):
            entry, fp, cached = self._entry_for(atom_graph, width_bound)
            cached_flags.append(cached)
            init_seconds[0] += entry.context.init_seconds
            cost_obj = resolve_cost(spec, entry.context.graph)
            prepared = self._prepared(entry, spec, cost_obj, fp)
            return RankedStream.start(
                entry.context,
                cost_obj,
                engine=engine_spec,
                cost_spec=spec,
                fingerprint=fp,
                prepared=prepared,
            )

        stream = ComposedRankedStream.start(
            plan,
            resolve_cost(spec, plan.graph),
            composition,
            cost_spec=spec,
            fingerprint=graph_fingerprint(plan.graph),
            width_bound=width_bound,
            open_piece=open_piece,
        )
        meta = {
            "context_cached": bool(cached_flags) and all(cached_flags),
            "init_seconds": init_seconds[0],
        }
        return stream, meta

    def decomposition_stream(
        self,
        graph: Graph | str,
        cost: "str | object" = "width",
        *,
        per_triangulation: int | None = None,
        width_bound: int | None = None,
        engine: "object | None" = None,
        context: TriangulationContext | None = None,
        preprocess: bool | None = None,
    ):
        """Proper tree decompositions by increasing cost (Proposition 6.1).

        Expands each enumerated triangulation into its clique trees,
        optionally capped at ``per_triangulation`` trees each
        (``1`` = bag-distinct results only).  Returns a generator;
        closing it releases the underlying engine.
        """
        stream = self.stream(
            graph, cost, width_bound=width_bound, engine=engine,
            context=context, preprocess=preprocess,
        )

        def _closing():
            try:
                yield from _expand_decompositions(stream, per_triangulation)
            finally:
                stream.close()

        return _closing()

    # ------------------------------------------------------------------
    # Typed request execution
    # ------------------------------------------------------------------
    def execute(
        self,
        request: EnumerationRequest,
        *,
        context: TriangulationContext | None = None,
    ) -> EnumerationResponse:
        """Serve one :class:`~repro.api.request.EnumerationRequest`."""
        started = time.perf_counter()
        graph = request.resolve_graph()
        if request.mode == "ranked":
            return self._execute_ranked(request, graph, started, context)
        if request.mode == "diverse":
            return self._execute_diverse(request, graph, started, context)
        return self._execute_decompositions(request, graph, started, context)

    def _empty_response(
        self,
        request: EnumerationRequest,
        graph: Graph,
        started: float,
    ) -> EnumerationResponse:
        """A zero-answer response that never touches the context cache."""
        stats = EnumerationStats(
            fingerprint=graph_fingerprint(graph),
            mode=request.mode,
            cost_spec=request.cost_spec,
            emitted=0,
            expansions=0,
            init_seconds=0.0,
            context_cached=False,
            elapsed_seconds=time.perf_counter() - started,
            engine="none",
            exhausted=False,
            timed_out=False,
            kernel=self._kernel,
        )
        return EnumerationResponse(results=(), stats=stats, checkpoint=None)

    def _execute_ranked(
        self,
        request: EnumerationRequest,
        graph: Graph,
        started: float,
        context: TriangulationContext | None,
    ) -> EnumerationResponse:
        limit = request.result_limit
        if limit == 0:
            return self._empty_response(request, graph, started)
        if (
            self._store is not None
            and context is None
            and isinstance(request.cost, str)
            and graph.num_vertices() > 0
        ):
            return self._ranked_with_answers(request, graph, started, limit)
        stream, meta = self._open(
            graph,
            request.cost,
            width_bound=request.width_bound,
            engine=request.engine,
            context=context,
            preprocess=request.preprocess,
        )
        return self._collect_ranked(
            stream, meta, limit, request.time_budget, started
        )

    # ------------------------------------------------------------------
    # The "answers" artifact kind: ranked prefixes served from disk
    # ------------------------------------------------------------------
    def _answers_probes(self, request: EnumerationRequest, fp: str):
        """Key probes for a fresh (non-token) ranked request."""
        from ..cache.answers import candidate_keys

        spec = request.cost
        effective = (
            self._preprocess
            if request.preprocess is None
            else request.preprocess
        )
        applies = (
            effective
            and composition_for(spec) is not None
            and not isinstance(
                self._engine_spec(request.engine), ExpansionStrategy
            )
        )
        return candidate_keys(
            fingerprint=fp,
            cost_spec=spec,
            width_bound=request.width_bound,
            kernel=self._kernel,
            applies=applies,
        )

    def _replay_answers(
        self,
        record,
        graph: Graph,
        started: float,
        start: int,
        limit: int | None,
    ) -> EnumerationResponse:
        """Serve a covered request straight from a cached prefix.

        Results are rebuilt from the cached (cost, bags, constraints)
        rows — the same pure inputs the protocol's ``answer_frame``
        renders — so served answers are identical to a live run's, with
        ``elapsed_seconds`` 0.0 and ``engine="cache"`` marking the path.
        """
        from ..cache.answers import result_from_cached

        served, _end, ckpt_bytes, exhausted_here = record.page(start, limit)
        results = tuple(
            result_from_cached(answer, graph, start + index)
            for index, answer in enumerate(served)
        )
        checkpoint = (
            load_checkpoint(ckpt_bytes) if ckpt_bytes is not None else None
        )
        stats = EnumerationStats(
            fingerprint=record.fingerprint,
            mode="ranked",
            cost_spec=record.cost_spec,
            emitted=len(results),
            expansions=0,
            init_seconds=0.0,
            context_cached=False,
            elapsed_seconds=time.perf_counter() - started,
            engine="cache",
            exhausted=exhausted_here,
            timed_out=False,
            preprocessed=record.preprocessed,
            kernel=self._kernel,
        )
        return EnumerationResponse(
            results=results, stats=stats, checkpoint=checkpoint
        )

    def _publish_answers(
        self, key: str, record, start: int, response: EnumerationResponse
    ) -> None:
        """Fold a live run's results into the prefix record under ``key``."""
        from ..cache.answers import cached_from_result, merge_prefix

        if response.checkpoint is None or self._store is None:
            return
        answers = tuple(
            cached_from_result(result) for result in response.results
        )
        if record is None and not answers:
            return  # an empty fresh record stores nothing servable
        merged = merge_prefix(
            record,
            fingerprint=response.stats.fingerprint,
            cost_spec=response.stats.cost_spec,
            preprocessed=response.stats.preprocessed,
            start=start,
            answers=answers,
            end_checkpoint=response.checkpoint.to_bytes(),
            exhausted=response.stats.exhausted,
        )
        if merged is not None:
            self._store.put("answers", key, merged)

    def _ranked_with_answers(
        self,
        request: EnumerationRequest,
        graph: Graph,
        started: float,
        limit: int | None,
    ) -> EnumerationResponse:
        """Ranked execution through the answer-prefix cache.

        Covered request → replay from disk.  Longer request over a
        non-exhausted record → resume from the stored frontier at the
        prefix tip, enumerate only the missing tail, write the longer
        prefix back.  Miss → live run, then publish the prefix.
        """
        from ..cache.answers import load_prefix

        fp = graph_fingerprint(graph)
        key, record = load_prefix(self._store, self._answers_probes(request, fp))
        if record is not None and record.covers(0, limit):
            return self._replay_answers(record, graph, started, 0, limit)
        n = len(record.answers) if record is not None else 0
        if (
            record is not None
            and not record.exhausted
            and n > 0
            and (limit is None or limit > n)
            and n in record.checkpoints
        ):
            tip = load_checkpoint(record.checkpoints[n])
            if not tip.exhausted:
                stream, meta = self._reopen(tip, engine=request.engine)
                remaining = None if limit is None else limit - n
                tail = self._collect_ranked(
                    stream, meta, remaining, request.time_budget, started
                )
                from ..cache.answers import result_from_cached

                head = tuple(
                    result_from_cached(answer, graph, index)
                    for index, answer in enumerate(record.answers)
                )
                self._publish_answers(key, record, n, tail)
                stats = replace(
                    tail.stats, emitted=n + tail.stats.emitted
                )
                return EnumerationResponse(
                    results=head + tail.results,
                    stats=stats,
                    checkpoint=tail.checkpoint,
                )
        stream, meta = self._open(
            graph,
            request.cost,
            width_bound=request.width_bound,
            engine=request.engine,
            context=None,
            preprocess=request.preprocess,
        )
        response = self._collect_ranked(
            stream, meta, limit, request.time_budget, started
        )
        self._publish_answers(key, record, 0, response)
        return response

    def _collect_ranked(
        self,
        stream: RankedStream,
        meta: dict,
        limit: int | None,
        time_budget: float | None,
        started: float,
    ) -> EnumerationResponse:
        results = []
        timed_out = False
        try:
            while limit is None or len(results) < limit:
                try:
                    results.append(next(stream))
                except StopIteration:
                    break
                if (
                    time_budget is not None
                    and time.perf_counter() - started > time_budget
                ):
                    timed_out = True
                    break
            checkpoint = stream.checkpoint()
            stats = EnumerationStats(
                fingerprint=stream.fingerprint,
                mode="ranked",
                cost_spec=stream.cost_spec,
                emitted=len(results),
                expansions=stream.expansions,
                init_seconds=meta["init_seconds"],
                context_cached=meta["context_cached"],
                elapsed_seconds=time.perf_counter() - started,
                engine=stream.engine_name,
                exhausted=stream.exhausted,
                timed_out=timed_out,
                preprocessed=isinstance(stream, ComposedRankedStream),
                kernel=self._kernel,
            )
        finally:
            stream.close()
        return EnumerationResponse(
            results=tuple(results), stats=stats, checkpoint=checkpoint
        )

    def _execute_diverse(
        self,
        request: EnumerationRequest,
        graph: Graph,
        started: float,
        context: TriangulationContext | None,
    ) -> EnumerationResponse:
        if request.k is None:
            raise ValueError("diverse mode requires k")
        limit = request.result_limit
        if limit == 0:
            return self._empty_response(request, graph, started)
        assert limit is not None
        stream, meta = self._open(
            graph,
            request.cost,
            width_bound=request.width_bound,
            engine=request.engine,
            context=context,
            preprocess=request.preprocess,
        )
        kept = []
        timed_out = False

        def over_budget() -> bool:
            nonlocal timed_out
            if (
                request.time_budget is not None
                and time.perf_counter() - started > request.time_budget
            ):
                timed_out = True
            return timed_out

        try:
            kept = list(
                _diverse_selection(
                    stream,
                    limit,
                    request.min_distance,
                    request.scan_limit,
                    should_stop=over_budget,
                )
            )
            stats = EnumerationStats(
                fingerprint=stream.fingerprint,
                mode="diverse",
                cost_spec=stream.cost_spec,
                emitted=len(kept),
                expansions=stream.expansions,
                init_seconds=meta["init_seconds"],
                context_cached=meta["context_cached"],
                elapsed_seconds=time.perf_counter() - started,
                engine=stream.engine_name,
                exhausted=stream.exhausted,
                timed_out=timed_out,
                preprocessed=isinstance(stream, ComposedRankedStream),
                kernel=self._kernel,
            )
        finally:
            stream.close()
        return EnumerationResponse(
            results=tuple(kept), stats=stats, checkpoint=None
        )

    def _execute_decompositions(
        self,
        request: EnumerationRequest,
        graph: Graph,
        started: float,
        context: TriangulationContext | None,
    ) -> EnumerationResponse:
        limit = request.result_limit
        if limit == 0:
            return self._empty_response(request, graph, started)
        stream, meta = self._open(
            graph,
            request.cost,
            width_bound=request.width_bound,
            engine=request.engine,
            context=context,
            preprocess=request.preprocess,
        )
        results: list[RankedDecomposition] = []
        timed_out = False
        truncated = False
        try:
            for ranked in _expand_decompositions(
                stream, request.per_triangulation
            ):
                results.append(ranked)
                if limit is not None and len(results) >= limit:
                    truncated = True
                    break
                if (
                    request.time_budget is not None
                    and time.perf_counter() - started > request.time_budget
                ):
                    timed_out = True
                    break
            stats = EnumerationStats(
                fingerprint=stream.fingerprint,
                mode="decompositions",
                cost_spec=stream.cost_spec,
                emitted=len(results),
                expansions=stream.expansions,
                init_seconds=meta["init_seconds"],
                context_cached=meta["context_cached"],
                elapsed_seconds=time.perf_counter() - started,
                engine=stream.engine_name,
                exhausted=stream.exhausted and not truncated and not timed_out,
                timed_out=timed_out,
                preprocessed=isinstance(stream, ComposedRankedStream),
                kernel=self._kernel,
            )
        finally:
            stream.close()
        return EnumerationResponse(
            results=tuple(results), stats=stats, checkpoint=None
        )

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def top(
        self,
        graph: Graph | str,
        cost: "str | object" = "width",
        k: int | None = 10,
        *,
        width_bound: int | None = None,
        engine: "object | None" = None,
        time_budget: float | None = None,
        answer_budget: int | None = None,
        context: TriangulationContext | None = None,
        preprocess: bool | None = None,
    ) -> EnumerationResponse:
        """The ``k`` cheapest minimal triangulations, with a resume token."""
        request = EnumerationRequest(
            graph=graph,
            cost=cost,
            k=k,
            mode="ranked",
            width_bound=width_bound,
            engine=engine,
            time_budget=time_budget,
            answer_budget=answer_budget,
            preprocess=preprocess,
        )
        return self.execute(request, context=context)

    def diverse(
        self,
        graph: Graph | str,
        cost: "str | object" = "width",
        k: int = 10,
        *,
        min_distance: int = 1,
        scan_limit: int | None = None,
        width_bound: int | None = None,
        engine: "object | None" = None,
        context: TriangulationContext | None = None,
        preprocess: bool | None = None,
    ) -> EnumerationResponse:
        """Up to ``k`` low-cost, pairwise-``min_distance``-separated results."""
        request = EnumerationRequest(
            graph=graph,
            cost=cost,
            k=k,
            mode="diverse",
            min_distance=min_distance,
            scan_limit=scan_limit,
            width_bound=width_bound,
            engine=engine,
            preprocess=preprocess,
        )
        return self.execute(request, context=context)

    def decompositions(
        self,
        graph: Graph | str,
        cost: "str | object" = "width",
        k: int | None = 10,
        *,
        per_triangulation: int | None = None,
        width_bound: int | None = None,
        engine: "object | None" = None,
        context: TriangulationContext | None = None,
        preprocess: bool | None = None,
    ) -> EnumerationResponse:
        """The ``k`` cheapest proper tree decompositions."""
        request = EnumerationRequest(
            graph=graph,
            cost=cost,
            k=k,
            mode="decompositions",
            per_triangulation=per_triangulation,
            width_bound=width_bound,
            engine=engine,
            preprocess=preprocess,
        )
        return self.execute(request, context=context)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def resume_stream(
        self,
        checkpoint: "StreamCheckpoint | ComposedCheckpoint | bytes",
        *,
        cost: "str | object | None" = None,
        engine: "object | None" = None,
    ) -> "RankedStream | ComposedRankedStream":
        """Reopen a paused stream; continues the exact emission sequence.

        Accepts either checkpoint kind: tokens from direct streams and
        from preprocessed (composed) streams both resume here, each with
        its own pipeline, each continuing bit-for-bit.
        """
        stream, _meta = self._reopen(checkpoint, cost=cost, engine=engine)
        return stream

    def _reopen_composed(
        self,
        checkpoint: ComposedCheckpoint,
        *,
        cost: "str | object | None" = None,
        engine: "object | None" = None,
    ) -> tuple[ComposedRankedStream, dict]:
        graph = checkpoint.restore_graph()
        if graph_fingerprint(graph) != checkpoint.fingerprint:
            raise ValueError(
                "checkpoint fingerprint does not match its embedded graph; "
                "the token is corrupted"
            )
        spec = checkpoint.cost_spec
        if (
            cost is not None
            and isinstance(cost, str)
            and cost != spec
        ):
            raise ValueError(
                f"checkpoint was taken under cost {spec!r} "
                f"but resume requested {cost!r}"
            )
        composition = composition_for(spec)
        if composition is None:
            raise ValueError(
                f"cost {spec!r} no longer declares a composition; "
                "cannot resume a preprocessed checkpoint"
            )
        engine_spec = self._engine_spec(engine)
        cached_flags: list[bool] = []
        init_seconds = [0.0]

        def resume_piece(atom_graph: Graph, piece_checkpoint):
            entry, fp, cached = self._entry_for(
                atom_graph, checkpoint.width_bound
            )
            cached_flags.append(cached)
            init_seconds[0] += entry.context.init_seconds
            cost_obj = resolve_cost(spec, entry.context.graph)
            prepared = self._prepared(entry, spec, cost_obj, fp)
            return RankedStream.from_checkpoint(
                entry.context,
                cost_obj,
                piece_checkpoint,
                engine=engine_spec,
                prepared=prepared,
            )

        stream = ComposedRankedStream.from_checkpoint(
            checkpoint,
            resolve_cost(spec, graph),
            composition,
            resume_piece=resume_piece,
        )
        meta = {
            "context_cached": bool(cached_flags) and all(cached_flags),
            "init_seconds": init_seconds[0],
        }
        return stream, meta

    def _reopen(
        self,
        checkpoint: "StreamCheckpoint | ComposedCheckpoint | bytes",
        *,
        cost: "str | object | None" = None,
        engine: "object | None" = None,
    ) -> "tuple[RankedStream | ComposedRankedStream, dict]":
        if isinstance(checkpoint, (bytes, bytearray)):
            checkpoint = load_checkpoint(bytes(checkpoint))
        if isinstance(checkpoint, ComposedCheckpoint):
            return self._reopen_composed(checkpoint, cost=cost, engine=engine)
        if checkpoint.exhausted:
            stream = RankedStream.from_checkpoint(None, None, checkpoint)
            return stream, {"context_cached": False, "init_seconds": 0.0}
        graph = checkpoint.restore_graph()
        if graph_fingerprint(graph) != checkpoint.fingerprint:
            raise ValueError(
                "checkpoint fingerprint does not match its embedded graph; "
                "the token is corrupted"
            )
        entry, fp, cached = self._entry_for(graph, checkpoint.width_bound)
        spec: str | None
        if cost is None:
            spec = checkpoint.cost_spec
            if spec is None:
                raise ValueError(
                    "checkpoint was created from a BagCost object and carries "
                    "no cost registry name; pass cost= to resume"
                )
            cost_obj = resolve_cost(spec, entry.context.graph)
        else:
            spec = cost if isinstance(cost, str) else None
            if (
                spec is not None
                and checkpoint.cost_spec is not None
                and spec != checkpoint.cost_spec
            ):
                raise ValueError(
                    f"checkpoint was taken under cost {checkpoint.cost_spec!r} "
                    f"but resume requested {spec!r}"
                )
            cost_obj = resolve_cost(cost, entry.context.graph)
        prepared = self._prepared(entry, spec, cost_obj, fp)
        stream = RankedStream.from_checkpoint(
            entry.context,
            cost_obj,
            checkpoint,
            engine=self._engine_spec(engine),
            prepared=prepared,
        )
        meta = {
            "context_cached": cached,
            "init_seconds": entry.context.init_seconds,
        }
        return stream, meta

    def resume(
        self,
        checkpoint: "StreamCheckpoint | ComposedCheckpoint | bytes",
        *,
        k: int | None = None,
        cost: "str | object | None" = None,
        engine: "object | None" = None,
        time_budget: float | None = None,
    ) -> EnumerationResponse:
        """Serve the next ``k`` answers after a checkpoint (all if ``None``).

        The concatenation of the emitting call's results and this call's
        results is bit-identical to one uninterrupted run; the response
        carries the next checkpoint, so pagination chains indefinitely.

        With a disk store attached, a checkpoint whose position is
        already covered by a cached answer prefix replays the cached
        frames (skipping the delivered ones) instead of re-running the
        enumeration; live continuations publish their stretch back.
        """
        started = time.perf_counter()
        if isinstance(checkpoint, (bytes, bytearray)):
            checkpoint = load_checkpoint(bytes(checkpoint))
        replayed = self._resume_from_answers(checkpoint, k, cost, started)
        if replayed is not None:
            return replayed
        stream, meta = self._reopen(checkpoint, cost=cost, engine=engine)
        response = self._collect_ranked(stream, meta, k, time_budget, started)
        self._publish_resumed(checkpoint, response)
        return response

    def _resume_probes(self, checkpoint):
        from ..cache.answers import candidate_keys

        return candidate_keys(
            fingerprint=checkpoint.fingerprint,
            cost_spec=checkpoint.cost_spec,
            width_bound=checkpoint.width_bound,
            kernel=self._kernel,
            applies=None,
            composed=isinstance(checkpoint, ComposedCheckpoint),
        )

    def _resume_from_answers(
        self,
        checkpoint: "StreamCheckpoint | ComposedCheckpoint",
        k: int | None,
        cost: "str | object | None",
        started: float,
    ) -> EnumerationResponse | None:
        """Replay a token resume from a cached prefix, or ``None``."""
        if (
            self._store is None
            or checkpoint.cost_spec is None
            or checkpoint.exhausted
        ):
            return None
        if isinstance(cost, str) and cost != checkpoint.cost_spec:
            return None  # the live path raises the proper mismatch error
        from ..cache.answers import load_prefix

        _key, record = load_prefix(
            self._store, self._resume_probes(checkpoint)
        )
        start = checkpoint.next_rank
        if record is None or not record.covers(start, k):
            return None
        graph = checkpoint.restore_graph()
        return self._replay_answers(record, graph, started, start, k)

    def _publish_resumed(
        self,
        checkpoint: "StreamCheckpoint | ComposedCheckpoint",
        response: EnumerationResponse,
    ) -> None:
        """Extend the cached prefix with a live continuation's stretch."""
        if self._store is None or checkpoint.cost_spec is None:
            return
        from ..cache.answers import load_prefix

        key, record = load_prefix(
            self._store, self._resume_probes(checkpoint)
        )
        self._publish_answers(key, record, checkpoint.next_rank, response)
