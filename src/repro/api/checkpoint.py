"""Serializable checkpoints of a ranked-enumeration stream.

The ranked enumerator is a priority queue over Lawler–Murty partitions:
each frontier entry is a constraint pair ``[I, X]`` over minimal
separators together with its minimum-cost representative (its bag set and
κ-value) and the FIFO tie-break counter that fixes the order among
equal-cost entries.  That frontier — plus the next rank and the next
counter value — is the *entire* mutable state of the enumeration: the
shared initialization (separators, PMCs, blocks) and the unconstrained DP
table are deterministic functions of the graph and cost, so they are
rebuilt (or fetched from the session cache) on resume rather than stored.

:class:`StreamCheckpoint` captures that state.  Resuming from it via
:meth:`repro.api.Session.resume` continues the exact emission sequence —
bit-for-bit the suffix of an uninterrupted run — which is the serving
primitive behind paginated top-k: answer a request for ranks ``0..k-1``,
hand the client an opaque checkpoint token, and serve ranks ``k..k+m-1``
later without redoing the expansion work.

Checkpoints embed the graph itself (vertex labels and edges), so a token
can be resumed by a fresh session or another process.  ``to_bytes`` /
``from_bytes`` use :mod:`pickle`; tokens are trusted server-side state,
not untrusted client input — never unpickle a checkpoint from an
untrusted source.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from ..graphs.graph import Graph, Vertex

Separator = frozenset[Vertex]
Bag = frozenset[Vertex]

__all__ = [
    "FrontierEntry",
    "StreamCheckpoint",
    "CHECKPOINT_VERSION",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class FrontierEntry:
    """One pending Lawler–Murty partition in the priority queue.

    Attributes
    ----------
    value:
        κ of the partition's representative (the heap priority).
    order:
        FIFO tie-break counter; unique per entry, so the heap order is a
        deterministic total order.
    bags:
        Bag set of the representative (its maximal cliques).
    include, exclude:
        The ``[I, X]`` constraint pair over minimal separators.
    """

    value: float
    order: int
    bags: frozenset[Bag]
    include: frozenset[Separator]
    exclude: frozenset[Separator]


@dataclass(frozen=True)
class StreamCheckpoint:
    """Full resumable state of a paused ranked stream."""

    fingerprint: str
    cost_spec: str | None
    width_bound: int | None
    next_rank: int
    next_order: int
    frontier: tuple[FrontierEntry, ...]
    vertices: tuple[Vertex, ...]
    edges: tuple[tuple[Vertex, Vertex], ...]
    version: int = CHECKPOINT_VERSION

    @property
    def exhausted(self) -> bool:
        """Whether the stream had no further answers when checkpointed."""
        return not self.frontier

    def restore_graph(self) -> Graph:
        """Rebuild the checkpointed graph (labels and edges preserved)."""
        return Graph(vertices=self.vertices, edges=self.edges)

    def to_bytes(self) -> bytes:
        """Serialize to an opaque token (pickle; trusted state only)."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(data: bytes) -> "StreamCheckpoint":
        """Deserialize a token produced by :meth:`to_bytes`.

        Raises
        ------
        ValueError
            If the payload is not a :class:`StreamCheckpoint` or carries
            an unknown version.
        """
        obj = pickle.loads(data)
        if not isinstance(obj, StreamCheckpoint):
            raise ValueError(
                f"checkpoint payload is {type(obj).__name__}, "
                "expected StreamCheckpoint"
            )
        if obj.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {obj.version} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        return obj


def load_checkpoint(data: bytes):
    """Deserialize a resume token of either checkpoint kind.

    Direct streams pause into a :class:`StreamCheckpoint`; preprocessed
    (composed) streams pause into a
    :class:`~repro.preprocess.recompose.ComposedCheckpoint`.  Callers
    that accept both — :meth:`repro.api.Session.resume`, the CLI
    ``--resume`` path — load through this helper, which dispatches on
    the payload type and applies the matching version check.

    Raises
    ------
    ValueError
        If the payload is neither checkpoint kind or carries an
        unsupported version.
    """
    from ..preprocess.recompose import (
        COMPOSED_CHECKPOINT_VERSION,
        ComposedCheckpoint,
    )

    obj = pickle.loads(data)
    if isinstance(obj, StreamCheckpoint):
        expected = CHECKPOINT_VERSION
    elif isinstance(obj, ComposedCheckpoint):
        expected = COMPOSED_CHECKPOINT_VERSION
    else:
        raise ValueError(
            f"checkpoint payload is {type(obj).__name__}, expected "
            "StreamCheckpoint or ComposedCheckpoint"
        )
    if obj.version != expected:
        raise ValueError(
            f"unsupported checkpoint version {obj.version} "
            f"(this build reads version {expected})"
        )
    return obj
