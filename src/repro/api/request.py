"""Typed request objects for the session layer.

One :class:`EnumerationRequest` describes everything a serving endpoint
needs to answer a ranked-enumeration call: the graph source, the cost
spec, how many answers, in which mode (plain ranked, diverse, or tree
decompositions), on which engine, and under what budgets.  Sessions
dispatch on :attr:`EnumerationRequest.mode` via
:meth:`repro.api.Session.execute`, and the convenience methods
(``top`` / ``diverse`` / ``decompositions``) are thin constructors over
this dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from ..costs.base import BagCost
from ..engine import ExpansionStrategy
from ..graphs.graph import Graph

__all__ = ["EnumerationRequest", "MODES"]

#: Valid request modes.
MODES = ("ranked", "diverse", "decompositions")

GraphSource = Union[Graph, str]
CostSpec = Union[str, BagCost]
EngineSpec = Union[ExpansionStrategy, str, int, None]


@dataclass(frozen=True)
class EnumerationRequest:
    """One ranked-enumeration request against a session.

    Attributes
    ----------
    graph:
        A :class:`~repro.graphs.graph.Graph`, or a path to a PACE ``.gr``
        / DIMACS ``.col`` file (loaded on execution).
    cost:
        A registry name (``"width"``, ``"fill"``, ...) or a
        :class:`~repro.costs.base.BagCost` instance.  Registry names
        additionally enable the session's prepared-table cache and are
        recorded in checkpoints, making them resumable without re-passing
        the cost object.
    k:
        Number of answers to return; ``None`` drains the stream (subject
        to the budgets below).
    mode:
        ``"ranked"`` — the cost-ranked stream; ``"diverse"`` — greedy
        quality/diversity selection over the ranked prefix;
        ``"decompositions"`` — proper tree decompositions (clique trees
        of the enumerated triangulations).
    width_bound:
        Restrict to triangulations of width ≤ bound (``MinTriangB``).
    min_distance, scan_limit:
        Diversity-mode knobs: minimum pairwise fill-set distance between
        kept results, and the ranked-prefix length scanned (default
        ``25 * k``).
    per_triangulation:
        Decompositions-mode cap on clique trees expanded per
        triangulation (``1`` = bag-distinct results only).
    engine:
        Expansion backend: a strategy instance, ``"serial"`` /
        ``"process-pool"``, or a worker count.  ``None`` uses the
        session default.
    preprocess:
        Whether to route through the preprocessing pipeline (safe
        reductions + clique-separator atoms with exact ranked
        recomposition, :mod:`repro.preprocess`).  ``None`` (default)
        defers to the session; ``True`` enables it where it applies —
        a registry-name cost with a declared composition on a graph
        that actually decomposes — and silently falls back to the
        direct pipeline otherwise; ``False`` forces the direct
        pipeline.  Both routes rank over the full graph and agree on
        every cost and every answer set.
    time_budget:
        Wall-clock seconds after which collection stops early (the
        response then carries a resumable checkpoint in ranked mode).
    answer_budget:
        Hard cap on emitted answers, applied on top of ``k``.
    """

    graph: GraphSource
    cost: CostSpec = "width"
    k: int | None = None
    mode: str = "ranked"
    width_bound: int | None = None
    min_distance: int = 1
    scan_limit: int | None = None
    per_triangulation: int | None = None
    engine: EngineSpec = field(default=None, compare=False)
    time_budget: float | None = None
    answer_budget: int | None = None
    preprocess: bool | None = None

    def __post_init__(self) -> None:
        if self.preprocess is not None and not isinstance(self.preprocess, bool):
            raise TypeError(
                f"preprocess must be True, False or None, got {self.preprocess!r}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {', '.join(MODES)}"
            )
        if not isinstance(self.cost, (str, BagCost)):
            raise TypeError(
                "cost must be a registry name or a BagCost instance, "
                f"got {type(self.cost).__name__}"
            )
        if self.k is not None and self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.min_distance < 1:
            raise ValueError(f"min_distance must be >= 1, got {self.min_distance}")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be > 0, got {self.time_budget}")
        if self.answer_budget is not None and self.answer_budget < 0:
            raise ValueError(
                f"answer_budget must be >= 0, got {self.answer_budget}"
            )

    # ------------------------------------------------------------------
    def resolve_graph(self) -> Graph:
        """The request's graph, loading it from disk when given a path."""
        if isinstance(self.graph, Graph):
            return self.graph
        from ..graphs.io import read_graph

        return read_graph(self.graph)

    @property
    def cost_spec(self) -> str | None:
        """The registry name of the cost, when it was given as one."""
        return self.cost if isinstance(self.cost, str) else None

    @property
    def result_limit(self) -> int | None:
        """Effective answer cap: the tighter of ``k`` and ``answer_budget``."""
        limits = [x for x in (self.k, self.answer_budget) if x is not None]
        return min(limits) if limits else None

    def with_(self, **changes: object) -> "EnumerationRequest":
        """A copy with the given fields replaced (functional update)."""
        return replace(self, **changes)
