"""Typed response objects for the session layer.

Every session call returns an :class:`EnumerationResponse`: the answers,
an :class:`EnumerationStats` block (timing, expansion counts, cache
provenance — the quantities behind the paper's ``init`` / ``delay``
columns), and, for ranked mode, the checkpoint from which the sequence
continues.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..core.mintriang import Triangulation
from .checkpoint import StreamCheckpoint

__all__ = ["EnumerationStats", "EnumerationResponse"]


@dataclass(frozen=True)
class EnumerationStats:
    """Measurements for one executed request.

    Attributes
    ----------
    fingerprint:
        Content fingerprint of the graph (the context cache key).
    mode:
        Request mode (``"ranked"`` / ``"diverse"`` / ``"decompositions"``).
    cost_spec:
        Cost registry name, or ``None`` when a cost object was passed.
    emitted:
        Answers returned in :attr:`EnumerationResponse.results`.
    expansions:
        Constrained ``MinTriang⟨κ[I,X]⟩`` DP runs executed — the
        Lawler–Murty expansion work this request paid for.
    init_seconds:
        Wall-clock cost of the shared initialization behind this request
        (0-ish when the context came from the session cache).
    context_cached:
        Whether the triangulation context was reused from the session's
        LRU cache rather than built for this request.
    elapsed_seconds:
        Wall-clock time spent collecting answers (excludes a cached
        context's original build time).
    engine:
        Name of the expansion backend that served the request.
    exhausted:
        Whether the enumeration space was fully emitted.
    timed_out:
        Whether collection stopped on the request's ``time_budget``.
    preprocessed:
        Whether the request was served by the preprocessing pipeline
        (safe reductions + clique-separator atoms with ranked
        recomposition) rather than the direct enumerator.  The answer
        stream is equivalent either way; this records which machinery
        produced it (``init_seconds`` then sums over the atom
        initializations).
    kernel:
        The resolved graph-kernel name the serving session builds
        contexts with (never ``"auto"``; empty only for stats objects
        minted by pre-registry code paths).
    """

    fingerprint: str
    mode: str
    cost_spec: str | None
    emitted: int
    expansions: int
    init_seconds: float
    context_cached: bool
    elapsed_seconds: float
    engine: str
    exhausted: bool
    timed_out: bool = False
    preprocessed: bool = False
    kernel: str = ""


@dataclass(frozen=True)
class EnumerationResponse:
    """Results plus stats plus (in ranked mode) a resume checkpoint.

    ``results`` holds :class:`~repro.core.ranked.RankedResult` objects in
    ranked mode, :class:`~repro.core.mintriang.Triangulation` objects in
    diverse mode, and :class:`~repro.core.proper.RankedDecomposition`
    objects in decompositions mode.
    """

    results: tuple
    stats: EnumerationStats
    checkpoint: StreamCheckpoint | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator:
        return iter(self.results)

    def __bool__(self) -> bool:
        return bool(self.results)

    @property
    def exhausted(self) -> bool:
        """Whether there is nothing left to resume."""
        return self.stats.exhausted

    @property
    def triangulations(self) -> tuple[Triangulation, ...]:
        """The results as plain triangulations, whatever the mode."""
        out = []
        for r in self.results:
            out.append(r if isinstance(r, Triangulation) else r.triangulation)
        return tuple(out)
