"""``RankedStream``: the resumable ranked-enumeration loop.

This is ``RankedTriang⟨κ⟩(G)`` (Figure 4 of the paper) as an explicit
state machine rather than a generator, so its priority-queue frontier can
be checkpointed between answers and resumed later — by the same session,
a fresh session, or another process.

Lawler–Murty partitioning over the space of minimal triangulations, each
identified with its maximal set of pairwise-parallel minimal separators
(Parra–Scheffler).  A partition is an inclusion/exclusion constraint pair
``[I, X]`` over minimal separators, represented in the priority queue by
its minimum-cost member, found by ``MinTriang⟨κ[I,X]⟩`` with the
constraints compiled into the cost (Section 6.1).

Popping the minimum-cost partition emits its representative ``H`` and
splits the remainder of the partition: with ``MinSep(H) \\ I = {S_1..S_k}``
the children are ``[I ∪ {S_1..S_{i-1}}, X ∪ {S_i}]`` for ``i = 1..k``.
(The paper's pseudocode writes the loop bound as ``k − 1``; the partition
argument in the text requires covering the branch that excludes ``S_k``
while including the rest, so we run the loop through ``k`` — with ``k-1``
the enumeration demonstrably misses answers on small graphs, see
``tests/core/test_ranked.py::test_partition_loop_covers_all_answers``.)

Children are expanded *eagerly* when their parent is emitted, so that
after ``next()`` returns the result of rank ``r`` the frontier is exactly
the state "``r+1`` answers pending" — the invariant that makes
:meth:`RankedStream.checkpoint` correct at every point.  *How* the ``k``
independent child optimizations of one pop execute is delegated to an
:class:`~repro.engine.strategy.ExpansionStrategy` (``engine=``): in
process (default) or fanned across a process pool, with the identical
emission sequence either way.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Iterator

from ..costs.base import BagCost
from ..core.context import TriangulationContext
from ..core.mintriang import Triangulation, min_triangulation_and_table
from ..core.ranked import RankedResult
from ..engine import ExpansionStrategy, resolve_engine
from ..graphs.graph import Vertex
from ..graphs.ordering import vertex_set_sort_key
from .checkpoint import FrontierEntry, StreamCheckpoint
from .fingerprint import canonical_edges, canonical_vertices

Separator = frozenset[Vertex]

#: Heap entry layout: ``(value, order, bags, include, exclude)``.  The
#: FIFO ``order`` is unique, so comparisons never reach the frozensets.
_HeapEntry = tuple

__all__ = ["RankedStream"]

#: ``(first, base_table)`` as produced by ``min_triangulation_and_table``;
#: sessions cache this per (context, cost spec) so repeated requests and
#: resumes skip the unconstrained DP.
Prepared = tuple


class RankedStream(Iterator[RankedResult]):
    """A cost-ranked stream of minimal triangulations, pausable at any rank.

    Build with :meth:`start` (rank 0) or :meth:`from_checkpoint` (resume);
    iterate to receive :class:`~repro.core.ranked.RankedResult` objects in
    non-decreasing cost order, :meth:`checkpoint` at any point to capture
    the frontier, and :meth:`close` to release engine resources (also done
    automatically on exhaustion; ``with`` blocks and
    ``contextlib.closing`` both work).
    """

    def __init__(
        self,
        *,
        context: TriangulationContext | None,
        cost: BagCost | None,
        cost_spec: str | None,
        fingerprint: str,
        heap: list[_HeapEntry],
        next_rank: int,
        next_order: int,
        strategy: ExpansionStrategy | None,
        started: float | None = None,
    ) -> None:
        self._context = context
        self._cost = cost
        self._cost_spec = cost_spec
        self._fingerprint = fingerprint
        self._heap = heap
        heapq.heapify(self._heap)
        self._rank = next_rank
        self._base_rank = next_rank
        self._order = next_order
        self._strategy = strategy
        self.engine_name = type(strategy).__name__ if strategy else "none"
        self._expansions = 0
        self._closed = False
        # The delay clock: covers the unconstrained DP when this stream
        # ran it (the constructors start the clock before preparing), so
        # rank-0 delay keeps the paper's "init included" accounting.
        self._started = time.perf_counter() if started is None else started

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def start(
        cls,
        context: TriangulationContext | None,
        cost: BagCost | None,
        *,
        engine: "ExpansionStrategy | str | int | None" = None,
        cost_spec: str | None = None,
        fingerprint: str = "",
        prepared: Prepared | None = None,
    ) -> "RankedStream":
        """Begin an enumeration at rank 0.

        ``context=None`` (the empty graph) yields an exhausted stream.
        ``prepared`` is an optional cached ``(first, base_table)`` pair;
        without it the unconstrained ``MinTriang`` DP runs here, inside
        the stream's delay clock.
        """
        started = time.perf_counter()
        if context is None or context.graph.num_vertices() == 0:
            return cls._exhausted(cost_spec=cost_spec, fingerprint=fingerprint)
        assert cost is not None
        if prepared is None:
            prepared = min_triangulation_and_table(context, cost)
        first, base_table = prepared
        if first is None:
            return cls._exhausted(
                context=context, cost_spec=cost_spec, fingerprint=fingerprint
            )
        heap = [(first.cost, 0, first.bags, frozenset(), frozenset())]
        strategy = resolve_engine(engine)
        strategy.bind(context, cost, base_table)
        return cls(
            context=context,
            cost=cost,
            cost_spec=cost_spec,
            fingerprint=fingerprint,
            heap=heap,
            next_rank=0,
            next_order=1,
            strategy=strategy,
            started=started,
        )

    @classmethod
    def from_checkpoint(
        cls,
        context: TriangulationContext | None,
        cost: BagCost | None,
        checkpoint: StreamCheckpoint,
        *,
        engine: "ExpansionStrategy | str | int | None" = None,
        prepared: Prepared | None = None,
    ) -> "RankedStream":
        """Resume the exact sequence a prior stream paused.

        The frontier (constraint pairs, representatives, tie-break
        counters) comes from the checkpoint; the unconstrained DP table —
        a deterministic function of (graph, cost) — is recomputed unless a
        cached ``prepared`` pair is supplied.
        """
        started = time.perf_counter()
        if not checkpoint.frontier:
            return cls._exhausted(
                context=context,
                cost_spec=checkpoint.cost_spec,
                fingerprint=checkpoint.fingerprint,
                next_rank=checkpoint.next_rank,
                next_order=checkpoint.next_order,
            )
        assert context is not None and cost is not None
        if prepared is None:
            prepared = min_triangulation_and_table(context, cost)
        _first, base_table = prepared
        heap = [
            (e.value, e.order, e.bags, e.include, e.exclude)
            for e in checkpoint.frontier
        ]
        strategy = resolve_engine(engine)
        strategy.bind(context, cost, base_table)
        return cls(
            context=context,
            cost=cost,
            cost_spec=checkpoint.cost_spec,
            fingerprint=checkpoint.fingerprint,
            heap=heap,
            next_rank=checkpoint.next_rank,
            next_order=checkpoint.next_order,
            strategy=strategy,
            started=started,
        )

    @classmethod
    def _exhausted(
        cls,
        context: TriangulationContext | None = None,
        cost_spec: str | None = None,
        fingerprint: str = "",
        next_rank: int = 0,
        next_order: int = 0,
    ) -> "RankedStream":
        return cls(
            context=context,
            cost=None,
            cost_spec=cost_spec,
            fingerprint=fingerprint,
            heap=[],
            next_rank=next_rank,
            next_order=next_order,
            strategy=None,
        )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> "RankedStream":
        return self

    def __next__(self) -> RankedResult:
        if self._closed or not self._heap:
            self.close()
            raise StopIteration
        value, _order, bags, include, exclude = heapq.heappop(self._heap)
        assert self._context is not None
        current = Triangulation(self._context.graph, bags, value)
        result = RankedResult(
            triangulation=current,
            rank=self._rank,
            elapsed_seconds=time.perf_counter() - self._started,
            include=include,
            exclude=exclude,
        )
        self._rank += 1

        free = sorted(
            current.minimal_separators - include, key=vertex_set_sort_key
        )
        jobs = []
        accumulated: list[Separator] = []
        for pivot in free:
            jobs.append((include | frozenset(accumulated), exclude | {pivot}))
            accumulated.append(pivot)
        if jobs:
            assert self._strategy is not None
            # Outcomes come back in job (pivot) order regardless of the
            # backend, so heap pushes — and hence the emitted sequence —
            # are identical under every strategy.
            outcomes = self._strategy.expand(jobs)
            self._expansions += len(jobs)
            for job, outcome in zip(jobs, outcomes):
                if outcome is None:
                    continue
                child_bags, base_value = outcome
                heapq.heappush(
                    self._heap,
                    (base_value, self._order, child_bags, job[0], job[1]),
                )
                self._order += 1
        if not self._heap:
            self.close()  # release pool workers at exhaustion, not at GC
        return result

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the enumerated graph."""
        return self._fingerprint

    @property
    def cost_spec(self) -> str | None:
        """Registry name of the cost, when it was given as one."""
        return self._cost_spec

    @property
    def next_rank(self) -> int:
        """Rank the next emitted result will carry."""
        return self._rank

    @property
    def emitted(self) -> int:
        """Number of results emitted by *this* stream object."""
        return self._rank - self._base_rank

    @property
    def expansions(self) -> int:
        """Constrained ``MinTriang⟨κ[I,X]⟩`` runs executed so far."""
        return self._expansions

    @property
    def exhausted(self) -> bool:
        """Whether the enumeration space is fully emitted."""
        return not self._heap

    def checkpoint(self) -> StreamCheckpoint:
        """Snapshot the frontier; the stream remains usable afterwards.

        The frontier is stored in sorted (pop) order — a canonical form;
        any heap layout of the same entries pops identically because the
        ``(value, order)`` prefix is a total order.
        """
        if self._context is not None:
            graph = self._context.graph
            vertices = canonical_vertices(graph)
            edges = canonical_edges(graph)
            width_bound = self._context.width_bound
        else:
            vertices = ()
            edges = ()
            width_bound = None
        return StreamCheckpoint(
            fingerprint=self._fingerprint,
            cost_spec=self._cost_spec,
            width_bound=width_bound,
            next_rank=self._rank,
            next_order=self._order,
            frontier=tuple(FrontierEntry(*e) for e in sorted(self._heap)),
            vertices=vertices,
            edges=edges,
        )

    def close(self) -> None:
        """Release engine resources.  Idempotent; iteration ends after."""
        self._closed = True
        if self._strategy is not None:
            self._strategy.close()
            self._strategy = None

    def __enter__(self) -> "RankedStream":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
