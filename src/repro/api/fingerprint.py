"""Content fingerprints for graphs — the session layer's cache key.

A :class:`~repro.api.session.Session` caches one
:class:`~repro.core.context.TriangulationContext` per *graph content*, not
per object: two :class:`~repro.graphs.graph.Graph` instances with the same
vertex labels and edges share one initialization, while mutating a graph
(which changes its content) naturally misses the cache instead of serving
stale separators.  The fingerprint is therefore a digest of the canonical
vertex/edge listing, ordered by :func:`~repro.graphs.ordering.vertex_sort_key`
so insertion order never leaks into the key.

Labels are folded in through ``repr``, which distinguishes the label types
the IO layer and generators produce (``repr(1) != repr("1")``).  Exotic
label types whose ``repr`` is not content-determined (e.g. defaults to an
object address) should not be used as vertices with the session layer.
"""

from __future__ import annotations

import hashlib

from ..graphs.graph import Graph, Vertex
from ..graphs.ordering import vertex_sort_key

__all__ = ["graph_fingerprint", "canonical_vertices", "canonical_edges"]


def canonical_vertices(graph: Graph) -> tuple[Vertex, ...]:
    """The vertex labels in deterministic (content) order."""
    return tuple(sorted(graph.vertices, key=vertex_sort_key))


def canonical_edges(graph: Graph) -> tuple[tuple[Vertex, Vertex], ...]:
    """The edges, each endpoint-sorted, in deterministic (content) order."""
    edges = []
    for u, v in graph.edges():
        if vertex_sort_key(v) < vertex_sort_key(u):
            u, v = v, u
        edges.append((u, v))
    edges.sort(key=lambda e: (vertex_sort_key(e[0]), vertex_sort_key(e[1])))
    return tuple(edges)


def _fold(h: "hashlib._Hash", label: Vertex) -> None:
    h.update(repr(label).encode("utf-8", "backslashreplace"))
    h.update(b"\x1f")  # unit separator: "ab","c" never collides with "a","bc"


def graph_fingerprint(graph: Graph) -> str:
    """A hex digest identifying ``graph`` by content (labels + edges)."""
    h = hashlib.sha256()
    vs = canonical_vertices(graph)
    h.update(f"V:{len(vs)};".encode())
    for v in vs:
        _fold(h, v)
    es = canonical_edges(graph)
    h.update(f"E:{len(es)};".encode())
    for u, v in es:
        _fold(h, u)
        _fold(h, v)
    return h.hexdigest()
