"""Enumeration of all minimal separators (Berry, Bordat and Cogis, 1999).

A vertex set ``S`` is a *minimal (u,v)-separator* if ``u`` and ``v`` lie in
different components of ``G \\ S`` and no proper subset of ``S`` separates
them; ``S`` is a *minimal separator* if it is a minimal (u,v)-separator for
some pair.  Equivalently (and this is the workhorse predicate): ``S`` is a
minimal separator iff ``G \\ S`` has at least two *full* components — ones
whose neighborhood is exactly ``S``.

The Berry–Bordat–Cogis (BBC) algorithm starts from the separators "close to"
each vertex ``v`` (neighborhoods of the components of ``G \\ N[v]``) and
closes the set under the expansion step: for ``S`` already found and
``x ∈ S``, the neighborhoods of the components of ``G \\ (S ∪ N(x))`` are
minimal separators too.  Total time is ``O(n^3)`` per separator; the paper
uses this as the initialization step of ``RankedTriang``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from ..graphs.bitgraph import BitGraph, iter_bits
from ..graphs.graph import Graph, Vertex
from ..graphs.kernels import KernelSpec, resolve_kernel

Separator = frozenset[Vertex]

__all__ = [
    "is_minimal_separator",
    "is_minimal_uv_separator",
    "minimal_separators",
    "iter_minimal_separators",
    "iter_minimal_separator_masks",
    "minimal_separator_masks",
    "is_minimal_separator_mask",
    "full_components",
]


def full_components(graph: Graph, separator: Separator) -> list[set[Vertex]]:
    """The components of ``G \\ S`` whose neighborhood is all of ``S``."""
    full = []
    for comp in graph.components_without(separator):
        if graph.neighborhood_of_set(comp) == separator:
            full.append(comp)
    return full


def is_minimal_separator(graph: Graph, candidate: frozenset[Vertex]) -> bool:
    """Whether ``candidate`` is a minimal separator of ``graph``.

    Uses the full-component characterization: ``S`` is a minimal separator
    iff at least two components of ``G \\ S`` see all of ``S``.  The empty
    set is not considered a minimal separator (the library operates on
    connected graphs; disconnected inputs are decomposed upstream).
    """
    if not candidate:
        return False
    count = 0
    for comp in graph.components_without(candidate):
        if graph.neighborhood_of_set(comp) == candidate:
            count += 1
            if count >= 2:
                return True
    return False


def is_minimal_uv_separator(
    graph: Graph, candidate: frozenset[Vertex], u: Vertex, v: Vertex
) -> bool:
    """Whether ``candidate`` is a minimal (u,v)-separator.

    True iff ``u`` and ``v`` lie in different components of ``G \\ S`` and
    both of their components are full.
    """
    if u in candidate or v in candidate:
        return False
    comp_u = graph.component_of(u, removed=candidate)
    if v in comp_u:
        return False
    comp_v = graph.component_of(v, removed=candidate)
    return (
        graph.neighborhood_of_set(comp_u) == candidate
        and graph.neighborhood_of_set(comp_v) == candidate
    )


def _close_separators(graph: Graph, removed: set[Vertex]) -> Iterator[Separator]:
    """Neighborhoods of the components of ``G \\ removed``.

    Every such neighborhood that is non-empty and yields a full component on
    the *other* side is a minimal separator; BBC shows that filtering with
    :func:`is_minimal_separator` keeps exactly the right ones.
    """
    for comp in graph.components_without(removed):
        yield frozenset(graph.neighborhood_of_set(comp))


def iter_minimal_separators(
    graph: Graph, kernel: str | KernelSpec = "auto"
) -> Iterator[Separator]:
    """Yield every minimal separator of ``graph`` exactly once (BBC).

    The graph need not be connected: separators are found per component
    (the empty set is never yielded).  Yields in no particular order.
    ``kernel`` selects the execution substrate (a registered kernel name
    or spec; see :mod:`repro.graphs.kernels`): mask-level kernels run
    the loop over dense bitmasks — batched whole-array rounds under the
    numpy kernel — and convert each separator to a label frozenset on
    emission; ``"sets"`` is the original label-level path.  All kernels
    emit exactly the same set of separators.
    """
    spec = resolve_kernel(kernel)
    if spec.uses_masks and graph.num_vertices():
        bitgraph = spec.build_graph(graph)
        labels_of = bitgraph.indexer.labels_of
        for mask in iter_minimal_separator_masks(bitgraph):
            yield labels_of(mask)
        return

    seen: set[Separator] = set()
    queue: deque[Separator] = deque()

    def admit(candidate: Separator) -> Iterator[Separator]:
        if candidate and candidate not in seen and is_minimal_separator(graph, candidate):
            seen.add(candidate)
            queue.append(candidate)
            yield candidate

    # Initialization: separators close to each vertex.
    for v in graph.vertices:
        for candidate in _close_separators(graph, graph.closed_neighborhood(v)):
            yield from admit(candidate)

    # Closure under the BBC expansion step.
    while queue:
        separator = queue.popleft()
        # Hoisted out of the ``x`` loop: one base set per separator, not
        # one conversion chain per member (and ``Graph.adj`` already is a
        # set, so the union below copies nothing extra).
        base = set(separator)
        for x in separator:
            removed = base | graph.adj(x)
            removed.add(x)
            for candidate in _close_separators(graph, removed):
                yield from admit(candidate)


# ---------------------------------------------------------------------------
# Bitset (mask-level) kernel
# ---------------------------------------------------------------------------
def is_minimal_separator_mask(bitgraph: BitGraph, candidate: int) -> bool:
    """Mask-level :func:`is_minimal_separator` (≥ 2 full components)."""
    if not candidate:
        return False
    count = 0
    for _comp, nbh in bitgraph.components_with_neighborhoods(
        bitgraph.full_mask & ~candidate
    ):
        if nbh == candidate:
            count += 1
            if count >= 2:
                return True
    return False


def iter_minimal_separator_masks(bitgraph: BitGraph) -> Iterator[int]:
    """Mask-level BBC enumeration: every minimal separator, once each.

    The logic is line-for-line the set-kernel loop with vertex sets
    replaced by int masks; the ``seen`` set hashes machine ints instead
    of frozensets, and components/neighborhoods are word-parallel.
    Batched kernels take :func:`_iter_minimal_separator_masks_batched`
    instead — the same closure computed round by round over whole-array
    operations.
    """
    if getattr(bitgraph, "BATCHED", False):
        yield from _iter_minimal_separator_masks_batched(bitgraph)
        return
    adj = bitgraph.adj
    full = bitgraph.full_mask
    seen: set[int] = set()
    queue: deque[int] = deque()

    def admit(candidate: int) -> Iterator[int]:
        if (
            candidate
            and candidate not in seen
            and is_minimal_separator_mask(bitgraph, candidate)
        ):
            seen.add(candidate)
            queue.append(candidate)
            yield candidate

    for v in iter_bits(full):
        closed = adj[v] | (1 << v)
        for _comp, nbh in bitgraph.components_with_neighborhoods(full & ~closed):
            yield from admit(nbh)

    while queue:
        separator = queue.popleft()
        for x in iter_bits(separator):
            removed = separator | adj[x] | (1 << x)
            for _comp, nbh in bitgraph.components_with_neighborhoods(
                full & ~removed
            ):
                yield from admit(nbh)


def _iter_minimal_separator_masks_batched(bitgraph: BitGraph) -> Iterator[int]:
    """Round-based BBC closure over a batched (numpy) kernel.

    The BBC closure is confluent — the final separator set does not
    depend on the order expansion steps are applied — so instead of a
    work queue this variant expands the whole frontier of newly admitted
    separators at once: one batched component sweep generates every
    candidate neighborhood of the round, one batched minimality filter
    admits the survivors.  Yield order is rounds of ascending masks
    (deterministic), and the yielded *set* is identical to the scalar
    queue's.
    """
    adj = bitgraph.adj
    full = bitgraph.full_mask
    seen: set[int] = set()
    rejected: set[int] = set()
    regions = [
        full & ~(adj[v] | (1 << v)) for v in iter_bits(full)
    ]
    while regions:
        admitted: list[int] = []
        candidates = bitgraph.separator_candidates_batch(regions)
        novel = [c for c in candidates if c not in seen and c not in rejected]
        if novel:
            flags = bitgraph.is_minimal_separator_batch(novel)
            for cand, ok in zip(novel, flags):
                if ok:
                    admitted.append(cand)
                else:
                    rejected.add(cand)
        for sep in admitted:
            seen.add(sep)
            yield sep
        regions = [
            full & ~(sep | adj[x] | (1 << x))
            for sep in admitted
            for x in iter_bits(sep)
        ]


def minimal_separator_masks(
    bitgraph: BitGraph,
    limit: int | None = None,
    deadline: float | None = None,
) -> set[int]:
    """Mask-level :func:`minimal_separators` (same budget semantics).

    On a tripped budget the raised :class:`SeparatorLimitExceeded`
    carries the partial result converted to label frozensets, so callers
    see the same exception payload under either kernel.
    """
    import time

    out: set[int] = set()
    labels_of = bitgraph.indexer.labels_of
    for sep in iter_minimal_separator_masks(bitgraph):
        out.add(sep)
        if limit is not None and len(out) > limit:
            raise SeparatorLimitExceeded(
                f"more than {limit} minimal separators",
                partial={labels_of(m) for m in out},
            )
        if deadline is not None and time.perf_counter() > deadline:
            raise SeparatorLimitExceeded(
                "minimal separator enumeration hit its time budget",
                partial={labels_of(m) for m in out},
            )
    return out


def minimal_separators(
    graph: Graph,
    limit: int | None = None,
    deadline: float | None = None,
    kernel: str | KernelSpec = "auto",
) -> set[Separator]:
    """All minimal separators of ``graph`` (``MinSep(G)``).

    Parameters
    ----------
    graph:
        Input graph.
    kernel:
        A registered kernel name or spec; the ``"auto"`` default picks
        the fastest available kernel.  Mask-level kernels enumerate over
        dense bitmasks and convert to label frozensets once per
        separator; ``"sets"`` is the original label-level path.
        Identical output under every kernel.
    limit:
        If given, raise :class:`SeparatorLimitExceeded` as soon as more than
        ``limit`` separators have been produced.  This implements the
        "poly-MS gate" the experiments use (Section 7.2): datasets where
        minimal-separator generation blows up are reported as intractable
        rather than looping forever.
    deadline:
        Optional :func:`time.perf_counter` value; exceeding it raises
        :class:`SeparatorLimitExceeded` too (the wall-clock budget of the
        Figure 5 tractability study).
    """
    import time

    out: set[Separator] = set()
    for sep in iter_minimal_separators(graph, kernel=kernel):
        out.add(sep)
        if limit is not None and len(out) > limit:
            raise SeparatorLimitExceeded(
                f"more than {limit} minimal separators", partial=out
            )
        if deadline is not None and time.perf_counter() > deadline:
            raise SeparatorLimitExceeded(
                "minimal separator enumeration hit its time budget", partial=out
            )
    return out


class SeparatorLimitExceeded(RuntimeError):
    """Raised when a separator/PMC budget is exceeded.

    Attributes
    ----------
    partial:
        The (incomplete) set generated before the budget tripped.
    """

    def __init__(self, message: str, partial: set[Separator] | None = None) -> None:
        super().__init__(message)
        self.partial = partial if partial is not None else set()
