"""Enumeration of all minimal separators (Berry, Bordat and Cogis, 1999).

A vertex set ``S`` is a *minimal (u,v)-separator* if ``u`` and ``v`` lie in
different components of ``G \\ S`` and no proper subset of ``S`` separates
them; ``S`` is a *minimal separator* if it is a minimal (u,v)-separator for
some pair.  Equivalently (and this is the workhorse predicate): ``S`` is a
minimal separator iff ``G \\ S`` has at least two *full* components — ones
whose neighborhood is exactly ``S``.

The Berry–Bordat–Cogis (BBC) algorithm starts from the separators "close to"
each vertex ``v`` (neighborhoods of the components of ``G \\ N[v]``) and
closes the set under the expansion step: for ``S`` already found and
``x ∈ S``, the neighborhoods of the components of ``G \\ (S ∪ N(x))`` are
minimal separators too.  Total time is ``O(n^3)`` per separator; the paper
uses this as the initialization step of ``RankedTriang``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from ..graphs.graph import Graph, Vertex

Separator = frozenset[Vertex]

__all__ = [
    "is_minimal_separator",
    "is_minimal_uv_separator",
    "minimal_separators",
    "iter_minimal_separators",
    "full_components",
]


def full_components(graph: Graph, separator: Separator) -> list[set[Vertex]]:
    """The components of ``G \\ S`` whose neighborhood is all of ``S``."""
    full = []
    for comp in graph.components_without(separator):
        if graph.neighborhood_of_set(comp) == separator:
            full.append(comp)
    return full


def is_minimal_separator(graph: Graph, candidate: frozenset[Vertex]) -> bool:
    """Whether ``candidate`` is a minimal separator of ``graph``.

    Uses the full-component characterization: ``S`` is a minimal separator
    iff at least two components of ``G \\ S`` see all of ``S``.  The empty
    set is not considered a minimal separator (the library operates on
    connected graphs; disconnected inputs are decomposed upstream).
    """
    if not candidate:
        return False
    count = 0
    for comp in graph.components_without(candidate):
        if graph.neighborhood_of_set(comp) == candidate:
            count += 1
            if count >= 2:
                return True
    return False


def is_minimal_uv_separator(
    graph: Graph, candidate: frozenset[Vertex], u: Vertex, v: Vertex
) -> bool:
    """Whether ``candidate`` is a minimal (u,v)-separator.

    True iff ``u`` and ``v`` lie in different components of ``G \\ S`` and
    both of their components are full.
    """
    if u in candidate or v in candidate:
        return False
    comp_u = graph.component_of(u, removed=candidate)
    if v in comp_u:
        return False
    comp_v = graph.component_of(v, removed=candidate)
    return (
        graph.neighborhood_of_set(comp_u) == candidate
        and graph.neighborhood_of_set(comp_v) == candidate
    )


def _close_separators(graph: Graph, removed: set[Vertex]) -> Iterator[Separator]:
    """Neighborhoods of the components of ``G \\ removed``.

    Every such neighborhood that is non-empty and yields a full component on
    the *other* side is a minimal separator; BBC shows that filtering with
    :func:`is_minimal_separator` keeps exactly the right ones.
    """
    for comp in graph.components_without(removed):
        yield frozenset(graph.neighborhood_of_set(comp))


def iter_minimal_separators(graph: Graph) -> Iterator[Separator]:
    """Yield every minimal separator of ``graph`` exactly once (BBC).

    The graph need not be connected: separators are found per component
    (the empty set is never yielded).  Yields in no particular order.
    """
    seen: set[Separator] = set()
    queue: deque[Separator] = deque()

    def admit(candidate: Separator) -> Iterator[Separator]:
        if candidate and candidate not in seen and is_minimal_separator(graph, candidate):
            seen.add(candidate)
            queue.append(candidate)
            yield candidate

    # Initialization: separators close to each vertex.
    for v in graph.vertices:
        for candidate in _close_separators(graph, graph.closed_neighborhood(v)):
            yield from admit(candidate)

    # Closure under the BBC expansion step.
    while queue:
        separator = queue.popleft()
        for x in separator:
            removed = set(separator) | set(graph.adj(x)) | {x}
            for candidate in _close_separators(graph, removed):
                yield from admit(candidate)


def minimal_separators(
    graph: Graph,
    limit: int | None = None,
    deadline: float | None = None,
) -> set[Separator]:
    """All minimal separators of ``graph`` (``MinSep(G)``).

    Parameters
    ----------
    graph:
        Input graph.
    limit:
        If given, raise :class:`SeparatorLimitExceeded` as soon as more than
        ``limit`` separators have been produced.  This implements the
        "poly-MS gate" the experiments use (Section 7.2): datasets where
        minimal-separator generation blows up are reported as intractable
        rather than looping forever.
    deadline:
        Optional :func:`time.perf_counter` value; exceeding it raises
        :class:`SeparatorLimitExceeded` too (the wall-clock budget of the
        Figure 5 tractability study).
    """
    import time

    out: set[Separator] = set()
    for sep in iter_minimal_separators(graph):
        out.add(sep)
        if limit is not None and len(out) > limit:
            raise SeparatorLimitExceeded(
                f"more than {limit} minimal separators", partial=out
            )
        if deadline is not None and time.perf_counter() > deadline:
            raise SeparatorLimitExceeded(
                "minimal separator enumeration hit its time budget", partial=out
            )
    return out


class SeparatorLimitExceeded(RuntimeError):
    """Raised when a separator/PMC budget is exceeded.

    Attributes
    ----------
    partial:
        The (incomplete) set generated before the budget tripped.
    """

    def __init__(self, message: str, partial: set[Separator] | None = None) -> None:
        super().__init__(message)
        self.partial = partial if partial is not None else set()
