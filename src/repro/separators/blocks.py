"""Blocks ``(S, C)`` and their realizations (Section 5.1 of the paper).

A *block* of ``G`` is a pair ``(S, C)`` where ``S`` is a minimal separator
and ``C`` is one connected component of ``G \\ S``.  The block is *full*
when every vertex of ``S`` has a neighbor in ``C``.  The *realization*
``R(S, C)`` is the induced graph ``G[S ∪ C]`` with ``S`` saturated into a
clique; the Bouchitté–Todinca dynamic programming recurses on realizations
of full blocks ordered by ``|S ∪ C|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from ..graphs.bitgraph import BitGraph
from ..graphs.graph import Graph, Vertex

Separator = frozenset[Vertex]

__all__ = [
    "Block",
    "blocks_of_separator",
    "full_blocks_of_separator",
    "full_component_masks",
    "all_full_blocks",
]


@dataclass(frozen=True, eq=False)
class Block:
    """A block ``(S, C)`` of a graph.

    Identified (hashable, comparable) by the pair of frozensets; the paper
    often identifies the block with the vertex set ``S ∪ C``, available as
    :attr:`vertices`.  Blocks are dictionary keys on the hottest paths of
    the DP, so the hash is computed once and equality short-circuits on
    identity and hash.
    """

    separator: Separator
    component: frozenset[Vertex]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.separator, self.component)))
        object.__setattr__(self, "_vertices", self.separator | self.component)

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __reduce__(self):
        # Rebuild through __init__ on unpickling: the cached hash is
        # PYTHONHASHSEED-dependent (frozensets of labels), so a value
        # pickled in one process is wrong in every other — it must be
        # recomputed under the reading interpreter's seed, or the block
        # silently misses as a dict key (persistent artifact cache,
        # cross-process checkpoints).
        return (Block, (self.separator, self.component))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Block):
            return NotImplemented
        return (
            self._hash == other._hash  # type: ignore[attr-defined]
            and self.component == other.component
            and self.separator == other.separator
        )

    @property
    def vertices(self) -> frozenset[Vertex]:
        """The vertex set ``S ∪ C`` of the block."""
        return self._vertices  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return len(self.separator) + len(self.component)

    def realization(self, graph: Graph) -> Graph:
        """The realization ``R(S, C) = G[S ∪ C] ∪ K_S``."""
        realized = graph.subgraph(self.vertices)
        realized.saturate(self.separator)
        return realized

    def is_full(self, graph: Graph) -> bool:
        """Whether every vertex of ``S`` has a neighbor in ``C``."""
        return graph.neighborhood_of_set(self.component) == self.separator

    def __repr__(self) -> str:
        sep = "{" + ",".join(sorted(map(str, self.separator))) + "}"
        comp = "{" + ",".join(sorted(map(str, self.component))) + "}"
        return f"Block(S={sep}, C={comp})"


def blocks_of_separator(graph: Graph, separator: Separator) -> Iterator[Block]:
    """All blocks ``(S, C)`` for the given separator ``S``."""
    for comp in graph.components_without(separator):
        yield Block(separator, frozenset(comp))


def full_blocks_of_separator(graph: Graph, separator: Separator) -> Iterator[Block]:
    """The full blocks of ``S`` (a minimal separator always has ≥ 2)."""
    for comp in graph.components_without(separator):
        if graph.neighborhood_of_set(comp) == separator:
            yield Block(separator, frozenset(comp))


def full_component_masks(bitgraph: BitGraph, separator: int) -> Iterator[int]:
    """Mask-level :func:`full_blocks_of_separator`: the full components.

    Yields the component masks ``C`` of ``G \\ S`` with ``N(C) = S``;
    the caller pairs them with ``separator`` to form blocks.
    """
    for comp, nbh in bitgraph.components_with_neighborhoods(
        bitgraph.full_mask & ~separator
    ):
        if nbh == separator:
            yield comp


def all_full_blocks(graph: Graph, separators: Iterable[Separator]) -> list[Block]:
    """Every full block over the given separators, sorted by ``|S ∪ C|``.

    This is the processing order of the main loop of ``MinTriang``
    (Figure 3, line 3): ascending block cardinality so each block can reuse
    the optimal triangulations of its strictly smaller sub-blocks.
    """
    out: list[Block] = []
    for s in separators:
        out.extend(full_blocks_of_separator(graph, s))
    out.sort(key=len)
    return out
