"""Minimal separators: enumeration, crossing relation, blocks."""

from .berry import (
    Separator,
    SeparatorLimitExceeded,
    full_components,
    is_minimal_separator,
    is_minimal_uv_separator,
    iter_minimal_separators,
    minimal_separators,
)
from .crossing import SeparatorFamily, are_parallel, crosses
from .blocks import Block, all_full_blocks, blocks_of_separator, full_blocks_of_separator

__all__ = [
    "Separator",
    "SeparatorLimitExceeded",
    "full_components",
    "is_minimal_separator",
    "is_minimal_uv_separator",
    "iter_minimal_separators",
    "minimal_separators",
    "SeparatorFamily",
    "are_parallel",
    "crosses",
    "Block",
    "all_full_blocks",
    "blocks_of_separator",
    "full_blocks_of_separator",
]
