"""The crossing / parallel relation between minimal separators.

Two minimal separators ``S`` and ``T`` *cross* if ``S`` separates some pair
of vertices of ``T`` (equivalently, ``T`` meets at least two components of
``G \\ S``).  Crossing is symmetric (Kloks–Kratsch–Spinrad; Parra–Scheffler),
and its complement — *parallel* — is what Parra–Scheffler use to
characterize minimal triangulations: the maximal sets of pairwise-parallel
minimal separators of ``G`` are in bijection with the minimal triangulations
of ``G`` (Theorem 2.5 of the paper).

:class:`SeparatorFamily` caches one component labelling per separator so a
crossing query costs ``O(|T|)`` dictionary lookups after the first query
involving ``S``.  Both the ranked enumerator and the CKK baseline issue many
thousands of these queries.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..graphs.bitgraph import BitGraph
from ..graphs.graph import Graph, Vertex

Separator = frozenset[Vertex]

__all__ = ["crosses", "are_parallel", "SeparatorFamily"]


def crosses(graph: Graph, s: Separator, t: Separator) -> bool:
    """Whether minimal separators ``s`` and ``t`` cross in ``graph``."""
    if s == t:
        return False
    count = 0
    for comp in graph.components_without(s):
        if comp & t:
            count += 1
            if count >= 2:
                return True
    return False


def are_parallel(graph: Graph, s: Separator, t: Separator) -> bool:
    """Whether ``s`` and ``t`` are parallel (non-crossing)."""
    return not crosses(graph, s, t)


class SeparatorFamily:
    """A set of minimal separators of one graph with cached crossing queries.

    Parameters
    ----------
    graph:
        The underlying graph.
    separators:
        The separators of interest (typically ``MinSep(G)``).

    bitgraph:
        Optional :class:`~repro.graphs.bitgraph.BitGraph` encoding of
        ``graph``.  When given, the per-separator component labelling is
        stored as a list of bitmasks and a crossing query is a handful
        of word-parallel ``&`` tests instead of per-vertex dictionary
        lookups.  Queries still take (and answers stay identical for)
        label-level frozensets.

    Notes
    -----
    The cache stores, per separator ``S``, a map ``vertex -> component id``
    of ``G \\ S``.  ``crosses(S, T)`` then counts the distinct component ids
    met by ``T \\ S``; two or more means crossing.
    """

    def __init__(
        self,
        graph: Graph,
        separators: Iterable[Separator] = (),
        bitgraph: BitGraph | None = None,
    ) -> None:
        self._graph = graph
        self._bitgraph = bitgraph
        self._separators: list[Separator] = []
        self._masks: list[int] = []
        self._index: dict[Separator, int] = {}
        self._component_maps: dict[Separator, dict[Vertex, int]] = {}
        self._component_masks: dict[int, list[int]] = {}
        self._pair_cache: dict[tuple[int, int], bool] = {}
        for s in separators:
            self.add(s)

    @property
    def graph(self) -> Graph:
        return self._graph

    def __len__(self) -> int:
        return len(self._separators)

    def __iter__(self) -> Iterator[Separator]:
        return iter(self._separators)

    def __contains__(self, s: Separator) -> bool:
        return s in self._index

    def add(self, s: Separator) -> int:
        """Register ``s`` and return its integer id (idempotent)."""
        sep = frozenset(s)
        existing = self._index.get(sep)
        if existing is not None:
            return existing
        idx = len(self._separators)
        self._index[sep] = idx
        self._separators.append(sep)
        if self._bitgraph is not None:
            self._masks.append(self._bitgraph.indexer.mask_of(sep))
        return idx

    def id_of(self, s: Separator) -> int:
        """The integer id of a registered separator."""
        return self._index[frozenset(s)]

    def separator(self, idx: int) -> Separator:
        """The separator with integer id ``idx``."""
        return self._separators[idx]

    def _component_map(self, s: Separator) -> dict[Vertex, int]:
        cached = self._component_maps.get(s)
        if cached is None:
            cached = {}
            for i, comp in enumerate(self._graph.components_without(s)):
                for v in comp:
                    cached[v] = i
            self._component_maps[s] = cached
        return cached

    def crosses(self, s: Separator, t: Separator) -> bool:
        """Whether ``s`` and ``t`` cross (cached, symmetric)."""
        if s == t:
            return False
        i, j = self.add(s), self.add(t)
        key = (i, j) if i < j else (j, i)
        cached = self._pair_cache.get(key)
        if cached is None:
            if self._bitgraph is not None:
                cached = self._crosses_masks(key[0], key[1])
            else:
                comp_map = self._component_map(self._separators[key[0]])
                other = self._separators[key[1]]
                seen_comp: set[int] = set()
                cached = False
                for v in other:
                    cid = comp_map.get(v)
                    if cid is not None:
                        seen_comp.add(cid)
                        if len(seen_comp) >= 2:
                            cached = True
                            break
            self._pair_cache[key] = cached
        return cached

    def _crosses_masks(self, sep_id: int, other_id: int) -> bool:
        """Bitset crossing check: ``other`` meets ≥ 2 components of
        ``G \\ sep`` iff its mask intersects ≥ 2 component masks."""
        assert self._bitgraph is not None
        comps = self._component_masks.get(sep_id)
        if comps is None:
            comps = self._bitgraph.components_without(self._masks[sep_id])
            self._component_masks[sep_id] = comps
        other = self._masks[other_id]
        count = 0
        for comp in comps:
            if comp & other:
                count += 1
                if count >= 2:
                    return True
        return False

    def parallel(self, s: Separator, t: Separator) -> bool:
        """Whether ``s`` and ``t`` are parallel."""
        return not self.crosses(s, t)

    def parallel_to_all(self, s: Separator, others: Iterable[Separator]) -> bool:
        """Whether ``s`` is parallel to every separator in ``others``."""
        return all(not self.crosses(s, t) for t in others)

    def is_pairwise_parallel(self, seps: Iterable[Separator]) -> bool:
        """Whether ``seps`` is a set of pairwise-parallel separators."""
        seps = list(seps)
        for i, s in enumerate(seps):
            for t in seps[i + 1 :]:
                if self.crosses(s, t):
                    return False
        return True

    def extend_to_maximal(
        self, base: Iterable[Separator], order: Iterable[Separator] | None = None
    ) -> set[Separator]:
        """Greedily extend a pairwise-parallel set to a maximal one.

        Separators are attempted in ``order`` (default: registration order);
        each is added when parallel to everything accumulated so far.  The
        result saturates to a minimal triangulation (Parra–Scheffler).
        """
        chosen = list(base)
        candidates = list(order) if order is not None else list(self._separators)
        for t in candidates:
            if all(not self.crosses(t, s) for s in chosen):
                if t not in chosen:
                    chosen.append(t)
        return set(chosen)
