"""repro — Ranked Enumeration of Minimal Triangulations (PODS 2019).

A from-scratch reproduction of Ravid, Medini and Kimelfeld's system for
enumerating the minimal triangulations (equivalently, the proper tree
decompositions) of a graph by increasing cost, for any split-monotone bag
cost function, with polynomial delay under the poly-MS assumption or a
constant width bound.

Quick start::

    from repro import Graph, WidthCost, ranked_triangulations

    g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)])
    for result in ranked_triangulations(g, WidthCost()):
        print(result.cost, sorted(map(sorted, result.triangulation.bags)))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced evaluation.
"""

from .graphs import Graph
from .costs import (
    BagCost,
    ConstrainedCost,
    FillInCost,
    FractionalHypertreeWidthCost,
    Hypergraph,
    HypertreeWidthCost,
    LexWidthFillCost,
    SumExpBagCost,
    WeightedFillCost,
    WeightedWidthCost,
    WidthCost,
    make_cost,
)
from .core import (
    RankedDecomposition,
    RankedResult,
    Triangulation,
    TreeDecomposition,
    TriangulationContext,
    clique_trees,
    diverse_top_k,
    min_triangulation,
    minimum_fill_in,
    ranked_tree_decompositions,
    ranked_triangulations,
    top_k_tree_decompositions,
    top_k_triangulations,
    treewidth,
    triangulation_distance,
)
from .engine import (
    ExpansionStrategy,
    ProcessPoolStrategy,
    SerialStrategy,
    resolve_engine,
)
from .hypertree import (
    GeneralizedHypertreeDecomposition,
    ghd_from_tree_decomposition,
    minimum_ghd,
    ranked_ghds,
)
from .baselines import ckk_enumeration
from .separators import minimal_separators, SeparatorLimitExceeded
from .pmc import potential_maximal_cliques
from .triangulation import lb_triang, mcs_m

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "BagCost",
    "WidthCost",
    "FillInCost",
    "LexWidthFillCost",
    "SumExpBagCost",
    "WeightedWidthCost",
    "WeightedFillCost",
    "Hypergraph",
    "HypertreeWidthCost",
    "FractionalHypertreeWidthCost",
    "ConstrainedCost",
    "make_cost",
    "TriangulationContext",
    "Triangulation",
    "TreeDecomposition",
    "RankedResult",
    "RankedDecomposition",
    "min_triangulation",
    "ranked_triangulations",
    "top_k_triangulations",
    "ranked_tree_decompositions",
    "top_k_tree_decompositions",
    "clique_trees",
    "treewidth",
    "minimum_fill_in",
    "diverse_top_k",
    "triangulation_distance",
    "ExpansionStrategy",
    "SerialStrategy",
    "ProcessPoolStrategy",
    "resolve_engine",
    "GeneralizedHypertreeDecomposition",
    "ghd_from_tree_decomposition",
    "minimum_ghd",
    "ranked_ghds",
    "ckk_enumeration",
    "minimal_separators",
    "SeparatorLimitExceeded",
    "potential_maximal_cliques",
    "lb_triang",
    "mcs_m",
    "__version__",
]
