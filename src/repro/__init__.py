"""repro — Ranked Enumeration of Minimal Triangulations (PODS 2019).

A from-scratch reproduction of Ravid, Medini and Kimelfeld's system for
enumerating the minimal triangulations (equivalently, the proper tree
decompositions) of a graph by increasing cost, for any split-monotone bag
cost function, with polynomial delay under the poly-MS assumption or a
constant width bound.

Quick start (the session layer is the public entry point)::

    from repro import Graph
    from repro.api import Session

    g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)])
    session = Session()
    for result in session.stream(g, "width"):
        print(result.cost, sorted(map(sorted, result.triangulation.bags)))
    page = session.top(g, "fill", k=3)        # typed response + checkpoint
    more = session.resume(page.checkpoint)    # continues the exact sequence

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduced evaluation.
"""

from .graphs import Graph
from .costs import (
    BagCost,
    ConstrainedCost,
    FillInCost,
    FractionalHypertreeWidthCost,
    Hypergraph,
    HypertreeWidthCost,
    LexWidthFillCost,
    SumExpBagCost,
    WeightedFillCost,
    WeightedWidthCost,
    WidthCost,
    make_cost,
    resolve_cost,
)
from .core import (
    RankedDecomposition,
    RankedResult,
    Triangulation,
    TreeDecomposition,
    TriangulationContext,
    clique_trees,
    diverse_top_k,
    min_triangulation,
    minimum_fill_in,
    ranked_tree_decompositions,
    ranked_triangulations,
    top_k_tree_decompositions,
    top_k_triangulations,
    treewidth,
    triangulation_distance,
)
from .engine import (
    ExpansionStrategy,
    ProcessPoolStrategy,
    SerialStrategy,
    resolve_engine,
)
from .api import (
    EnumerationRequest,
    EnumerationResponse,
    EnumerationStats,
    RankedStream,
    Session,
    StreamCheckpoint,
    default_session,
    graph_fingerprint,
)
from .hypertree import (
    GeneralizedHypertreeDecomposition,
    ghd_from_tree_decomposition,
    minimum_ghd,
    ranked_ghds,
)
from .baselines import ckk_enumeration
from .separators import minimal_separators, SeparatorLimitExceeded
from .pmc import potential_maximal_cliques
from .triangulation import lb_triang, mcs_m

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "BagCost",
    "WidthCost",
    "FillInCost",
    "LexWidthFillCost",
    "SumExpBagCost",
    "WeightedWidthCost",
    "WeightedFillCost",
    "Hypergraph",
    "HypertreeWidthCost",
    "FractionalHypertreeWidthCost",
    "ConstrainedCost",
    "make_cost",
    "resolve_cost",
    "Session",
    "EnumerationRequest",
    "EnumerationResponse",
    "EnumerationStats",
    "RankedStream",
    "StreamCheckpoint",
    "default_session",
    "graph_fingerprint",
    "TriangulationContext",
    "Triangulation",
    "TreeDecomposition",
    "RankedResult",
    "RankedDecomposition",
    "min_triangulation",
    "ranked_triangulations",
    "top_k_triangulations",
    "ranked_tree_decompositions",
    "top_k_tree_decompositions",
    "clique_trees",
    "treewidth",
    "minimum_fill_in",
    "diverse_top_k",
    "triangulation_distance",
    "ExpansionStrategy",
    "SerialStrategy",
    "ProcessPoolStrategy",
    "resolve_engine",
    "GeneralizedHypertreeDecomposition",
    "ghd_from_tree_decomposition",
    "minimum_ghd",
    "ranked_ghds",
    "ckk_enumeration",
    "minimal_separators",
    "SeparatorLimitExceeded",
    "potential_maximal_cliques",
    "lb_triang",
    "mcs_m",
    "__version__",
]
