"""Process-pool worker side of the ranked-enumeration engine.

One Lawler–Murty *expansion job* is a constraint pair ``(I, X)`` over
minimal separators; its answer is the minimum-cost minimal triangulation
under ``κ[I,X]``, found by a constrained ``MinTriang`` DP that reuses the
unconstrained table for every block no constraint separator fits into.

:class:`~repro.engine.strategy.ProcessPoolStrategy` runs these jobs in
forked worker processes.  The heavyweight shared state — the
:class:`~repro.core.context.TriangulationContext` (separators, PMCs,
blocks, PMC index) and the unconstrained DP table — is handed to each
worker through the pool *initializer*.  Under the ``fork`` start method
the initializer arguments are inherited copy-on-write from the parent, so
nothing of the shared state is ever pickled; only the per-job constraint
pairs and per-result bag sets cross the process boundary.

The same :func:`expand_job` function also backs the serial strategy, so
both execution modes share one code path for the child optimization and
cannot drift apart semantically.
"""

from __future__ import annotations

from ..costs.base import INFEASIBLE, Bag, BagCost
from ..costs.constrained import ConstrainedCost
from ..core.context import TriangulationContext
from ..core.mintriang import min_triangulation_and_table
from ..graphs.graph import Vertex

Separator = frozenset[Vertex]

__all__ = [
    "expand_job",
    "pool_initializer",
    "pool_expand_job",
    "pool_expand_batch",
]


def expand_job(
    context: TriangulationContext,
    cost: BagCost,
    base_table: dict,
    include: frozenset[Separator],
    exclude: frozenset[Separator],
) -> tuple[frozenset[Bag], float] | None:
    """Solve ``MinTriang⟨κ[I,X]⟩`` for one Lawler–Murty child partition.

    Returns ``(bags, base_cost)`` of the partition's representative — the
    cost reported is ``κ``, with the constraint wrapper stripped — or
    ``None`` when the partition contains no triangulation (the constrained
    DP came back infeasible).
    """
    constrained = ConstrainedCost(cost, include=include, exclude=exclude)
    candidate, _table = min_triangulation_and_table(
        context,
        constrained,
        reusable_table=base_table,
        constraint_separators=include | exclude,
    )
    if candidate is None or candidate.cost >= INFEASIBLE:
        return None
    base_value = cost.evaluate(candidate.graph, candidate.bags)
    return candidate.bags, base_value


# ---------------------------------------------------------------------------
# Worker-process state (set once per worker by the pool initializer)
# ---------------------------------------------------------------------------
_WORKER_STATE: tuple[TriangulationContext, BagCost, dict] | None = None


def pool_initializer(
    context: TriangulationContext, cost: BagCost, base_table: dict
) -> None:
    """Install the shared enumeration state in a forked worker process."""
    global _WORKER_STATE
    _WORKER_STATE = (context, cost, base_table)


def pool_expand_job(
    include: frozenset[Separator], exclude: frozenset[Separator]
) -> tuple[frozenset[Bag], float] | None:
    """:func:`expand_job` against the worker's installed shared state."""
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise RuntimeError("worker used before pool_initializer ran")
    context, cost, base_table = _WORKER_STATE
    return expand_job(context, cost, base_table, include, exclude)


def pool_expand_batch(
    jobs: "list[tuple[frozenset[Separator], frozenset[Separator]]]",
) -> "list[tuple[frozenset[Bag], float] | None]":
    """A contiguous batch of jobs in one pickled round trip, in order.

    The dispatch unit of the batched strategy: one future per *chunk*
    instead of one per job amortizes the submit/pickle/wakeup overhead
    that made single-job dispatch slower than serial execution.
    """
    if _WORKER_STATE is None:  # pragma: no cover - defensive
        raise RuntimeError("worker used before pool_initializer ran")
    context, cost, base_table = _WORKER_STATE
    return [
        expand_job(context, cost, base_table, include, exclude)
        for include, exclude in jobs
    ]
