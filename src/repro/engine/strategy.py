"""Pluggable expansion strategies for the ranked-enumeration engine.

After each pop, ``RankedTriang⟨κ⟩`` expands the popped partition into up
to ``k = |MinSep(H) \\ I|`` child partitions, each requiring an
independent constrained ``MinTriang⟨κ[I,X]⟩`` DP run.  Those runs share
read-only state (the triangulation context and the unconstrained DP
table) and never communicate — the textbook shape for data parallelism,
and the dominant share of the per-answer delay (Table 2 of the paper).

An :class:`ExpansionStrategy` owns how one pop's batch of jobs executes:

* :class:`SerialStrategy` — in-process loop; the paper's behavior.
* :class:`ProcessPoolStrategy` — fans the batch across a
  ``concurrent.futures`` process pool in contiguous *chunks* (at most
  one per worker), so the per-future submit/pickle overhead is paid per
  chunk, not per job.  Workers are forked after the shared state
  exists, so context and table are inherited copy-on-write (never
  pickled); results are collected **in submission order**, which keeps
  the heap insertion order — and therefore the emitted ranked sequence
  — bit-identical to the serial strategy.

Strategies are bound to one enumeration run via :meth:`bind` and released
with :meth:`close`; :func:`~repro.core.ranked.ranked_triangulations`
drives that lifecycle, including on early abandonment of the generator.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import warnings
from abc import ABC, abstractmethod
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from ..costs.base import Bag, BagCost
from ..core.context import TriangulationContext
from ..graphs.graph import Vertex
from .worker import expand_job, pool_expand_batch, pool_initializer

Separator = frozenset[Vertex]
#: One Lawler–Murty child partition: ``(include, exclude)``.
ExpansionJob = tuple[frozenset[Separator], frozenset[Separator]]

__all__ = ["ExpansionStrategy", "SerialStrategy", "ProcessPoolStrategy"]


class ExpansionStrategy(ABC):
    """How the enumerator executes one pop's batch of child optimizations.

    Lifecycle: :meth:`bind` once per enumeration run (receiving the shared
    read-only state), then any number of :meth:`expand` calls, then
    :meth:`close`.  A strategy instance may be re-bound for a later run
    after it has been closed.
    """

    _context: TriangulationContext | None = None
    _cost: BagCost | None = None
    _base_table: dict | None = None

    def bind(
        self,
        context: TriangulationContext,
        cost: BagCost,
        base_table: dict,
    ) -> None:
        """Attach the run's shared state (context, κ, unconstrained table).

        Raises
        ------
        RuntimeError
            If the strategy is already bound to a running enumeration —
            sharing one instance across *overlapping* runs would make the
            first run expand against the second run's graph.  Sequential
            reuse (after :meth:`close`) is fine.
        """
        if self._context is not None:
            raise RuntimeError(
                "strategy is already bound to a running enumeration; "
                "use one strategy instance per concurrent run"
            )
        self._context = context
        self._cost = cost
        self._base_table = base_table

    @abstractmethod
    def expand(
        self, jobs: Sequence[ExpansionJob]
    ) -> list[tuple[frozenset[Bag], float] | None]:
        """Solve every job, returning outcomes **in job order**.

        Job order is the enumerator's deterministic pivot order; keeping
        it in the result list is what preserves the exact serial emission
        sequence under any execution backend.
        """

    def close(self) -> None:
        """Release resources held for the current run."""
        self._context = None
        self._cost = None
        self._base_table = None

    def _expand_serially(
        self, jobs: Sequence[ExpansionJob]
    ) -> list[tuple[frozenset[Bag], float] | None]:
        assert self._context is not None and self._cost is not None
        return [
            expand_job(self._context, self._cost, self._base_table, inc, exc)
            for inc, exc in jobs
        ]


class SerialStrategy(ExpansionStrategy):
    """Run the child optimizations in-process, one after the other.

    This is the reference behavior (and the fastest option for small
    instances, where per-job process overhead dwarfs the DP itself).
    """

    def expand(
        self, jobs: Sequence[ExpansionJob]
    ) -> list[tuple[frozenset[Bag], float] | None]:
        return self._expand_serially(jobs)


class ProcessPoolStrategy(ExpansionStrategy):
    """Fan each pop's ``k`` sibling DP runs across a process pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    fallback_to_serial:
        On platforms without the ``fork`` start method the copy-on-write
        sharing scheme is unavailable; with this flag (the default) the
        strategy degrades to serial execution instead of raising.

    Notes
    -----
    The pool is created lazily inside :meth:`bind` — after the shared
    state exists — because forked workers receive the context and base
    table through the pool initializer's arguments, which the ``fork``
    start method inherits by memory copy rather than pickling.  Only the
    small per-job constraint pairs and per-result bag sets are pickled.

    Dispatch is **batched**: each pop's ``k`` jobs are split into at
    most ``workers`` contiguous chunks, one future (one pickle round
    trip) per chunk.  Single-job futures paid the submit/pickle/wakeup
    tax ``k`` times per pop and ran *slower* than serial on real
    instances; chunking pays it at most ``workers`` times while keeping
    every core busy.

    Emission order is preserved exactly: chunks are contiguous and their
    futures are awaited in submission (pivot) order, so heap pushes
    happen in the same order with the same tie-break counters as under
    :class:`SerialStrategy`.
    """

    def __init__(
        self, workers: int | None = None, fallback_to_serial: bool = True
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.fallback_to_serial = fallback_to_serial
        self._executor: ProcessPoolExecutor | None = None

    def bind(
        self,
        context: TriangulationContext,
        cost: BagCost,
        base_table: dict,
    ) -> None:
        # Check platform support before taking the bound state, so a
        # failed bind leaves the instance reusable.  macOS lists 'fork'
        # but CPython documents forking as unsafe there (system-framework
        # state can crash forked children), so treat it as unavailable.
        have_fork = (
            "fork" in multiprocessing.get_all_start_methods()
            and sys.platform != "darwin"
        )
        if not have_fork and not self.fallback_to_serial:
            raise RuntimeError(
                "ProcessPoolStrategy requires the 'fork' start method; "
                "pass fallback_to_serial=True or use SerialStrategy"
            )
        super().bind(context, cost, base_table)
        if not have_fork:
            warnings.warn(
                "'fork' start method unavailable on this platform; "
                "ProcessPoolStrategy is running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            self._executor = None
            return
        try:
            # Build the vertex → block index in the parent so forked
            # workers inherit it copy-on-write instead of each rebuilding
            # it.  Per-separator containment sets stay lazy — only the
            # separators of popped triangulations are ever queried.
            context.ensure_block_index()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers or os.cpu_count() or 1,
                mp_context=multiprocessing.get_context("fork"),
                initializer=pool_initializer,
                initargs=(context, cost, base_table),
            )
        except BaseException:
            ExpansionStrategy.close(self)  # failed bind must not stay bound
            raise

    def expand(
        self, jobs: Sequence[ExpansionJob]
    ) -> list[tuple[frozenset[Bag], float] | None]:
        if self._executor is None or len(jobs) <= 1:
            # Fork unavailable, or a single job: IPC would only add latency.
            return self._expand_serially(jobs)
        pool_size = self._executor._max_workers
        chunks = self._chunk(list(jobs), pool_size)
        futures = [
            self._executor.submit(pool_expand_batch, chunk)
            for chunk in chunks
        ]
        results: list[tuple[frozenset[Bag], float] | None] = []
        for future in futures:
            results.extend(future.result())
        return results

    @staticmethod
    def _chunk(
        jobs: list[ExpansionJob], pool_size: int
    ) -> list[list[ExpansionJob]]:
        """Split into at most ``pool_size`` contiguous, near-equal chunks."""
        n_chunks = min(pool_size, len(jobs))
        base, extra = divmod(len(jobs), n_chunks)
        chunks = []
        start = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            chunks.append(jobs[start : start + size])
            start += size
        return chunks

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        super().close()
