"""Execution engine for ranked enumeration.

``RankedTriang⟨κ⟩`` spends almost all of its per-answer delay expanding
Lawler–Murty child partitions — ``k`` mutually independent constrained
``MinTriang⟨κ[I,X]⟩`` DP runs per emitted result.  This package makes
that hot path pluggable:

* :class:`~repro.engine.strategy.SerialStrategy` — the paper's serial
  expansion (default).
* :class:`~repro.engine.strategy.ProcessPoolStrategy` — the same batch
  fanned across a process pool with the shared initialization inherited
  via fork, emitting the **identical** ranked sequence.

Select an engine through the public API::

    from repro import ranked_triangulations
    from repro.engine import ProcessPoolStrategy

    for r in ranked_triangulations(g, cost, engine=ProcessPoolStrategy(4)):
        ...

or by name: ``engine="serial"`` / ``engine="process-pool"`` / an integer
worker count (``1`` means serial).  The CLI exposes the same choice as
``repro enumerate --workers N``.
"""

from __future__ import annotations

from .strategy import ExpansionStrategy, ProcessPoolStrategy, SerialStrategy

__all__ = [
    "ExpansionStrategy",
    "SerialStrategy",
    "ProcessPoolStrategy",
    "resolve_engine",
]

#: Accepted string spellings for the two built-in strategies.
_NAMED = {
    "serial": SerialStrategy,
    "process": ProcessPoolStrategy,
    "process-pool": ProcessPoolStrategy,
    "processpool": ProcessPoolStrategy,
}


def resolve_engine(
    engine: "ExpansionStrategy | str | int | None",
) -> ExpansionStrategy:
    """Normalize an engine spec into an :class:`ExpansionStrategy`.

    ``None`` → serial; a string → the named strategy; an integer ``n`` →
    serial for ``n <= 1`` else a process pool of ``n`` workers; a
    strategy instance passes through unchanged.
    """
    if engine is None:
        return SerialStrategy()
    if isinstance(engine, ExpansionStrategy):
        return engine
    if isinstance(engine, bool):
        raise TypeError("engine must be a strategy, name, or worker count")
    if isinstance(engine, int):
        return SerialStrategy() if engine <= 1 else ProcessPoolStrategy(engine)
    if isinstance(engine, str):
        try:
            factory = _NAMED[engine.lower()]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; known: {', '.join(sorted(_NAMED))}"
            ) from None
        return factory()
    raise TypeError(f"cannot interpret {engine!r} as an expansion strategy")
