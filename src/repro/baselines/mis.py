"""Maximal independent set enumeration (Johnson–Papadimitriou–Yannakakis).

Generic incremental-polynomial enumeration of all maximal independent sets
of a graph given by a vertex list and an adjacency predicate.  This is the
engine behind the Theorem 4.2 route: with vertices = minimal separators
and adjacency = crossing, the maximal independent sets are exactly the
minimal triangulations (Parra–Scheffler).

The algorithm maintains a dictionary of discovered sets and a queue; for
each popped set ``M`` and each vertex ``v ∉ M`` it forms the "seed"
``(M \\ N(v)) ∪ {v}``, greedily extends it to a maximal set along the
fixed vertex order, and enqueues unseen results.  Johnson et al. prove
every maximal independent set is reachable this way from the
lexicographically-first one.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = ["maximal_independent_sets"]


def maximal_independent_sets(
    vertices: Sequence[T],
    adjacent: Callable[[T, T], bool],
) -> Iterator[frozenset[T]]:
    """Yield every maximal independent set exactly once.

    Parameters
    ----------
    vertices:
        The vertex universe, in a fixed order (used for greedy extension).
    adjacent:
        Symmetric irreflexive adjacency predicate.
    """
    items = list(vertices)
    if not items:
        yield frozenset()
        return

    def extend(seed: set[T]) -> frozenset[T]:
        chosen = list(seed)
        for v in items:
            if v in seed:
                continue
            if all(not adjacent(v, u) for u in chosen):
                chosen.append(v)
        return frozenset(chosen)

    first = extend(set())
    seen: set[frozenset[T]] = {first}
    queue: deque[frozenset[T]] = deque((first,))
    while queue:
        current = queue.popleft()
        yield current
        for v in items:
            if v in current:
                continue
            seed = {u for u in current if not adjacent(u, v)}
            seed.add(v)
            candidate = extend(seed)
            if candidate not in seen:
                seen.add(candidate)
                queue.append(candidate)
