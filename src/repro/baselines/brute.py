"""Exhaustive enumeration oracles for small graphs.

Two independent routes to "all minimal triangulations", used to validate
the ranked enumerator and the CKK baseline:

* :func:`minimal_triangulations_bruteforce` — try every subset of
  non-edges as a fill set, keep the chordal supergraphs whose fill set is
  inclusion-minimal.  Exponential in the number of non-edges; the ground
  truth of last resort.
* :func:`minimal_triangulations_via_mis` — Parra–Scheffler: maximal
  independent sets of the separator crossing graph, found with
  Bron–Kerbosch (networkx) on the complement.  Polynomial in the output
  but needs all minimal separators; independent of our own MIS code.
"""

from __future__ import annotations

from itertools import combinations

from ..graphs.graph import Graph, Vertex
from ..graphs.chordal import is_chordal
from ..graphs.ordering import vertex_set_sort_key
from ..separators.berry import minimal_separators
from ..separators.crossing import SeparatorFamily
from ..triangulation.saturate import saturate_separators

__all__ = ["minimal_triangulations_bruteforce", "minimal_triangulations_via_mis"]


def _fill_key(graph: Graph, candidate: Graph) -> frozenset[frozenset[Vertex]]:
    return frozenset(
        frozenset((u, v)) for u, v in candidate.edges() if not graph.has_edge(u, v)
    )


def minimal_triangulations_bruteforce(graph: Graph, max_missing: int = 22) -> list[Graph]:
    """All minimal triangulations by exhaustive fill-set search.

    Raises
    ------
    ValueError
        If the graph has more than ``max_missing`` non-edges (the search
        is exponential in that number).
    """
    vertices = list(graph.vertices)
    missing = [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1 :]
        if not graph.has_edge(u, v)
    ]
    if len(missing) > max_missing:
        raise ValueError(
            f"{len(missing)} non-edges exceed the brute-force limit {max_missing}"
        )
    chordal_fills: list[frozenset[frozenset[Vertex]]] = []
    for r in range(len(missing) + 1):
        for fill in combinations(missing, r):
            candidate = graph.copy()
            candidate.add_edges(fill)
            if is_chordal(candidate):
                chordal_fills.append(
                    frozenset(frozenset(e) for e in fill)
                )
    minimal = [
        f
        for f in chordal_fills
        if not any(other < f for other in chordal_fills)
    ]
    out: list[Graph] = []
    for f in minimal:
        candidate = graph.copy()
        candidate.add_edges(tuple(e) for e in f)
        out.append(candidate)
    return out


def minimal_triangulations_via_mis(graph: Graph) -> list[Graph]:
    """All minimal triangulations via maximal independent sets of the
    crossing graph (independent implementation path using networkx)."""
    import networkx as nx

    separators = sorted(minimal_separators(graph), key=vertex_set_sort_key)
    if not separators:
        return [graph.copy()]  # already chordal (or too small to separate)
    family = SeparatorFamily(graph, separators)
    complement = nx.Graph()
    complement.add_nodes_from(range(len(separators)))
    for i in range(len(separators)):
        for j in range(i + 1, len(separators)):
            if not family.crosses(separators[i], separators[j]):
                complement.add_edge(i, j)
    # Maximal cliques of the parallel graph = maximal independent sets of
    # the crossing graph = minimal triangulations (Parra–Scheffler).
    out: list[Graph] = []
    for clique in nx.find_cliques(complement):
        out.append(saturate_separators(graph, (separators[i] for i in clique)))
    return out
