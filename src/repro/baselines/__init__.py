"""Baselines and test oracles: brute force, MIS enumeration, CKK."""

from .brute import minimal_triangulations_bruteforce, minimal_triangulations_via_mis
from .mis import maximal_independent_sets
from .ckk import CKKResult, ckk_enumeration

__all__ = [
    "minimal_triangulations_bruteforce",
    "minimal_triangulations_via_mis",
    "maximal_independent_sets",
    "CKKResult",
    "ckk_enumeration",
]
