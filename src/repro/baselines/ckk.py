"""The CKK baseline: unranked complete enumeration of minimal triangulations.

Reimplementation of the observable contract of Carmeli, Kenig and Kimelfeld
(PODS 2017), the comparison baseline of the paper's Table 2 and Figures
8–9:

* **complete** — every minimal triangulation is eventually produced;
* **incremental polynomial time** — per-result work grows with the number
  of results, with *no up-front initialization*: the first result is one
  black-box ``LB_TRIANG`` call away;
* **order-oblivious** — no cost guarantee on the output order.

Mechanism (the succinct-MIS view the paper itself uses to state
Theorem 4.2): minimal triangulations correspond to maximal sets of
pairwise-parallel minimal separators (Parra–Scheffler).  The enumerator
runs Johnson–Papadimitriou–Yannakakis-style expansion over that
correspondence, with the separator universe produced **lazily** by the
Berry–Bordat–Cogis stream instead of being precomputed (this is the
succinctness that gives CKK its instant start):

* *maximalization*: a pairwise-parallel seed ``A`` is completed to a
  maximal set by saturating ``A`` in ``G`` and running the black-box
  minimal triangulator on the result — by CKK's lemma, a minimal
  triangulation of ``G_A`` is a minimal triangulation of ``G`` whose
  separator set contains ``A``;
* *expansion*: for an emitted set ``M`` and any known separator ``S ∉ M``,
  the seed ``{T ∈ M : T ∥ S} ∪ {S}`` is maximalized.  For any target set
  ``J``, expanding the emitted set maximizing ``|M ∩ J|`` with any
  ``S ∈ J \\ M`` strictly increases that overlap, so every maximal set is
  eventually reached once every (emitted, separator) pair is tried — the
  completeness argument is insensitive to which maximal extension the
  black box picks.

Total work per emitted result grows with the number of results and
separators seen so far (incremental polynomial), and no work happens
before the first result.

What we deliberately do **not** reproduce: CKK's succinct data structures
for the beyond-poly-MS regime — neither competitor is benchmarked there
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from itertools import islice

from ..graphs.graph import Graph, Vertex
from ..separators.berry import iter_minimal_separators
from ..separators.crossing import SeparatorFamily
from ..triangulation.lb_triang import lb_triang
from ..triangulation.saturate import (
    minimal_separators_of_triangulation,
    saturate_separators,
)

Separator = frozenset[Vertex]
Triangulator = Callable[[Graph], Graph]

__all__ = ["CKKResult", "ckk_enumeration"]


@dataclass(frozen=True)
class CKKResult:
    """One triangulation emitted by the CKK baseline."""

    triangulation: Graph
    separators: frozenset[Separator]
    rank: int
    elapsed_seconds: float


def ckk_enumeration(
    graph: Graph,
    triangulator: Triangulator | None = None,
    chunk: int | None = None,
) -> Iterator[CKKResult]:
    """Enumerate all minimal triangulations of ``graph``, unranked.

    Parameters
    ----------
    graph:
        A connected graph.
    triangulator:
        Black-box minimal triangulator (default: LB_TRIANG with the
        min-degree order, the paper's choice for CKK).
    chunk:
        How many separators to pull from the lazy Berry–Bordat–Cogis
        stream per expansion round (default ``max(4, |V|)``); only a
        pacing knob, not a correctness one.

    Yields
    ------
    :class:`CKKResult` in discovery (FIFO) order.
    """
    started = time.perf_counter()
    if graph.num_vertices() == 0:
        return
    if not graph.is_connected():
        raise ValueError("CKK enumeration requires a connected graph")
    if triangulator is None:
        triangulator = lb_triang
    if chunk is None:
        chunk = max(4, graph.num_vertices())

    family = SeparatorFamily(graph)
    separator_stream = iter_minimal_separators(graph)
    pool: list[Separator] = []
    pool_set: set[Separator] = set()

    def pull_separators(count: int) -> bool:
        pulled = False
        for s in islice(separator_stream, count):
            if s not in pool_set:
                pool_set.add(s)
                pool.append(s)
                family.add(s)
            pulled = True
        return pulled

    def admit_to_pool(separators: frozenset[Separator]) -> None:
        # Separators of emitted triangulations enter the pool immediately;
        # the BBC stream will eventually produce them too (set-deduped).
        for s in separators:
            if s not in pool_set:
                pool_set.add(s)
                pool.append(s)
                family.add(s)

    first = triangulator(graph)
    first_key = frozenset(minimal_separators_of_triangulation(first))
    seen: set[frozenset[Separator]] = {first_key}
    results: list[tuple[Graph, frozenset[Separator]]] = [(first, first_key)]
    admit_to_pool(first_key)
    # next_pivot[i]: index into `pool` of the next expansion to try for
    # results[i].  The pool is append-only, so cursors never miss a pair.
    next_pivot: list[int] = [0]

    emitted = 0
    stream_done = False
    while True:
        if emitted < len(results):
            current, key = results[emitted]
            yield CKKResult(
                triangulation=current,
                separators=key,
                rank=emitted,
                elapsed_seconds=time.perf_counter() - started,
            )
            emitted += 1
            continue

        # Try pending (result, separator) expansions.
        progressed = False
        for i in range(len(results)):
            start_at = next_pivot[i]
            if start_at >= len(pool):
                continue
            next_pivot[i] = len(pool)
            _graph_i, key_i = results[i]
            for pivot in pool[start_at:]:
                if pivot in key_i:
                    continue
                seed = {s for s in key_i if not family.crosses(s, pivot)}
                seed.add(pivot)
                saturated = saturate_separators(graph, seed)
                candidate = triangulator(saturated)
                candidate_key = frozenset(
                    minimal_separators_of_triangulation(candidate)
                )
                if candidate_key not in seen:
                    seen.add(candidate_key)
                    admit_to_pool(candidate_key)
                    results.append((candidate, candidate_key))
                    next_pivot.append(0)
            progressed = True
            break  # re-enter the loop so fresh results are yielded promptly
        if progressed:
            continue

        if not stream_done:
            if pull_separators(chunk):
                continue
            stream_done = True
            continue
        break
