"""Clique trees of chordal graphs.

A *clique tree* of a chordal graph ``H`` is a tree decomposition whose bags
are exactly ``MaxClq(H)``, each appearing once (Section 2 of the paper).  By
the classic result surveyed by Blair and Peyton (1993), the clique trees of
``H`` are exactly the **maximum-weight spanning trees** of the *clique
graph*: the complete graph over ``MaxClq(H)`` where the weight of an edge is
the size of the intersection of its endpoints (only edges with non-empty
intersection matter for connected graphs).

The *adhesions* of any clique tree — the intersections of adjacent bags —
are precisely the minimal separators of ``H``; this is how the ranked
enumerator recovers ``MinSep(H)`` from a triangulation ``H``
(Parra–Scheffler, Theorem 2.5).
"""

from __future__ import annotations

from .graph import Graph, Vertex
from .chordal import maximal_cliques_chordal
from .ordering import vertex_set_sort_key

Bag = frozenset[Vertex]

__all__ = ["clique_tree", "clique_tree_from_cliques", "minimal_separators_chordal"]


class _DisjointSet:
    """Union-find over arbitrary hashables, used by the Kruskal pass."""

    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, x):
        parent = self._parent
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, x, y) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        self._parent[rx] = ry
        return True


def clique_tree_from_cliques(
    cliques: set[Bag],
) -> list[tuple[Bag, Bag]]:
    """A clique tree over the given maximal cliques, as a list of tree edges.

    Kruskal on the clique graph with weights ``|K1 ∩ K2|`` taken in
    non-increasing order.  For the cliques of a connected chordal graph this
    yields a spanning tree satisfying the junction-tree property.  If the
    underlying graph is disconnected the result is a spanning forest; callers
    that need a tree should connect component roots (zero-weight adhesions),
    which is what :func:`clique_tree` does.
    """
    clique_list = sorted(cliques, key=lambda c: (len(c), vertex_set_sort_key(c)))
    weighted: list[tuple[int, int, int]] = []
    for i, ci in enumerate(clique_list):
        for j in range(i + 1, len(clique_list)):
            w = len(ci & clique_list[j])
            if w > 0:
                weighted.append((w, i, j))
    weighted.sort(key=lambda t: -t[0])
    ds = _DisjointSet()
    edges: list[tuple[Bag, Bag]] = []
    for _w, i, j in weighted:
        if ds.union(i, j):
            edges.append((clique_list[i], clique_list[j]))
    return edges


def clique_tree(graph: Graph) -> tuple[set[Bag], list[tuple[Bag, Bag]]]:
    """A clique tree of chordal ``graph``: ``(bags, tree_edges)``.

    The bags are ``MaxClq(graph)``.  On a disconnected graph the forest is
    completed to a tree by adding arbitrary (empty-adhesion) edges between
    components, so the result is always a valid tree decomposition.

    Raises
    ------
    ValueError
        If ``graph`` is not chordal.
    """
    cliques = maximal_cliques_chordal(graph)
    edges = clique_tree_from_cliques(cliques)
    if len(edges) < len(cliques) - 1:
        # Disconnected graph: stitch the forest into a tree.
        ds = _DisjointSet()
        for a, b in edges:
            ds.union(a, b)
        roots: dict = {}
        for c in sorted(cliques, key=vertex_set_sort_key):
            root = ds.find(c)
            if root in roots and roots[root] != c:
                continue
            roots[root] = c
        rep_list = list(roots.values())
        for other in rep_list[1:]:
            edges.append((rep_list[0], other))
            ds.union(rep_list[0], other)
    return cliques, edges


def minimal_separators_chordal(graph: Graph) -> set[frozenset[Vertex]]:
    """The minimal separators of a chordal graph.

    These are exactly the adhesions (pairwise intersections of adjacent
    bags) of any clique tree; empty adhesions between components are not
    separators of interest here and are excluded.

    Raises
    ------
    ValueError
        If ``graph`` is not chordal.
    """
    _bags, edges = clique_tree(graph)
    seps = {frozenset(a & b) for a, b in edges}
    seps.discard(frozenset())
    return seps
