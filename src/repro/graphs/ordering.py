"""Deterministic total order over arbitrary vertex labels.

Several algorithms need a *stable* iteration order over vertices,
separators or bags to make their output deterministic: the Lawler–Murty
pivot order of the ranked enumerator, clique-tree construction, the
brute-force oracles.  Sorting by ``repr`` — the historical approach —
is wrong for mixed label types (``repr(10) < repr(2)`` lexicographically)
and wastes time stringifying every vertex in hot loops.

:func:`vertex_sort_key` defines a total order over any mix of the label
types the IO layer and generators produce (numbers, strings) plus a
``repr`` fallback for everything else.  Numbers order numerically and
before strings; unrelated types never reach a cross-type comparison
because the key leads with a type rank.
"""

from __future__ import annotations

from collections.abc import Iterable

from .graph import Vertex

__all__ = ["vertex_sort_key", "vertex_set_sort_key"]


def vertex_sort_key(v: Vertex) -> tuple:
    """A sort key defining a deterministic total order over vertex labels.

    Numbers (including ``bool``) sort numerically and come first, strings
    sort lexicographically after them, and any other hashable label falls
    back to ``repr``.  The leading rank keeps the comparison within one
    type class, so mixed-label graphs sort without ``TypeError``.
    """
    if isinstance(v, (int, float)):
        return (0, "", v)
    if isinstance(v, str):
        return (1, v, 0)
    return (2, repr(v), 0)


def vertex_set_sort_key(vertices: Iterable[Vertex]) -> tuple:
    """A sort key for vertex *sets* (separators, bags, cliques).

    The key is the tuple of member keys in sorted order, so sets compare
    lexicographically by their smallest differing member — deterministic
    for any mix of label types, and cheaper than the old
    ``tuple(sorted(map(repr, s)))`` idiom.
    """
    return tuple(sorted(map(vertex_sort_key, vertices)))
