"""Reading and writing graphs in the PACE ``.gr`` and DIMACS formats.

The PACE treewidth challenges exchange graphs in the ``.gr`` format::

    c a comment
    p tw <n> <m>
    1 2
    2 3

and DIMACS coloring instances use ``p edge <n> <m>`` with ``e u v`` lines.
Both use 1-based vertex numbering; we keep the integer labels as-is.
"""

from __future__ import annotations

from pathlib import Path

from .graph import Graph

__all__ = ["parse_gr", "to_gr", "parse_dimacs", "to_dimacs", "read_graph", "write_graph"]


def parse_gr(text: str) -> Graph:
    """Parse a PACE ``.gr`` document into a :class:`Graph`."""
    graph = Graph()
    declared = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "tw":
                raise ValueError(f"line {lineno}: malformed problem line {line!r}")
            declared = int(parts[2])
            for v in range(1, declared + 1):
                graph.add_vertex(v)
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: malformed edge line {line!r}")
        u, v = int(parts[0]), int(parts[1])
        if u != v:
            graph.add_edge(u, v)
    if declared is not None and graph.num_vertices() != declared:
        raise ValueError(
            f"problem line declared {declared} vertices, found {graph.num_vertices()}"
        )
    return graph


def to_gr(graph: Graph) -> str:
    """Serialize ``graph`` to the PACE ``.gr`` format.

    Vertices are renumbered to ``1..n`` in iteration order.
    """
    mapping = {v: i for i, v in enumerate(graph.vertices, start=1)}
    lines = [f"p tw {graph.num_vertices()} {graph.num_edges()}"]
    for u, v in sorted((mapping[a], mapping[b]) for a, b in graph.edges()):
        if u > v:
            u, v = v, u
        lines.append(f"{u} {v}")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> Graph:
    """Parse a DIMACS ``p edge`` coloring document into a :class:`Graph`."""
    graph = Graph()
    declared = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) < 3 or parts[1] not in {"edge", "edges", "col"}:
                raise ValueError(f"line {lineno}: malformed problem line {line!r}")
            declared = int(parts[2])
            for v in range(1, declared + 1):
                graph.add_vertex(v)
        elif parts[0] == "e":
            u, v = int(parts[1]), int(parts[2])
            if u != v:
                graph.add_edge(u, v)
        elif parts[0] in {"n", "x"}:  # node weights / extensions: ignored
            continue
        else:
            raise ValueError(f"line {lineno}: unrecognized line {line!r}")
    return graph


def to_dimacs(graph: Graph) -> str:
    """Serialize ``graph`` to the DIMACS ``p edge`` format (1-based)."""
    mapping = {v: i for i, v in enumerate(graph.vertices, start=1)}
    lines = [f"p edge {graph.num_vertices()} {graph.num_edges()}"]
    for u, v in sorted((mapping[a], mapping[b]) for a, b in graph.edges()):
        if u > v:
            u, v = v, u
        lines.append(f"e {u} {v}")
    return "\n".join(lines) + "\n"


def read_graph(path: str | Path) -> Graph:
    """Read a graph file, dispatching on extension (``.gr`` or ``.col``)."""
    p = Path(path)
    text = p.read_text()
    if p.suffix == ".col" or "p edge" in text[:2000]:
        return parse_dimacs(text)
    return parse_gr(text)


def write_graph(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` in a format chosen by the file extension."""
    p = Path(path)
    if p.suffix == ".col":
        p.write_text(to_dimacs(graph))
    else:
        p.write_text(to_gr(graph))
