"""Core undirected-graph data structure used throughout the library.

The algorithms in this package (minimal-separator enumeration, potential
maximal clique listing, block dynamic programming) spend almost all of their
time computing neighborhoods and connected components of vertex-deleted
subgraphs.  ``Graph`` is therefore a thin adjacency-set structure tuned for
exactly those operations, rather than a general-purpose graph library.
Conversion helpers to and from :mod:`networkx` are provided for
interoperability.

Vertices may be any hashable objects.  Edges are unordered pairs of distinct
vertices; self loops and parallel edges are not representable.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from itertools import combinations
from typing import Any

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

__all__ = ["Graph", "Vertex", "Edge"]


class Graph:
    """An undirected graph backed by adjacency sets.

    Parameters
    ----------
    vertices:
        Initial vertices.  Vertices mentioned in ``edges`` are added
        implicitly, so this is only needed for isolated vertices.
    edges:
        Initial edges, given as 2-item iterables of distinct vertices.

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3)])
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.has_edge(3, 2)
    True
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Iterable[Vertex]] = (),
    ) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        for v in vertices:
            self.add_vertex(v)
        for e in edges:
            u, v = e
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v`` (a no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge ``{u, v}``, adding endpoints as needed.

        Raises
        ------
        ValueError
            If ``u == v`` (self loops are not supported).
        """
        if u == v:
            raise ValueError(f"self loops are not supported (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges(self, edges: Iterable[Iterable[Vertex]]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        KeyError
            If the edge is not present.
        """
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError:
            raise KeyError(f"edge {{{u!r}, {v!r}}} not in graph") from None

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident edges.

        Raises
        ------
        KeyError
            If the vertex is not present.
        """
        neighbors = self._adj.pop(v)
        for u in neighbors:
            self._adj[u].discard(v)

    def saturate(self, vertices: Iterable[Vertex]) -> None:
        """Make ``vertices`` a clique by adding all missing edges.

        This is the *saturation* operation of the paper (Section 2): replace
        ``G`` with ``G ∪ K_U``.  All vertices must already be in the graph.

        Raises
        ------
        ValueError
            If some member of ``vertices`` is not a vertex of the graph.
            (Silently half-saturating around a typo'd label used to leave
            the graph in a corrupted state.)
        """
        vs = list(vertices)
        self._require_vertices(vs, "saturate")
        for u, v in combinations(vs, 2):
            self._adj[u].add(v)
            self._adj[v].add(u)

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        g = Graph.__new__(Graph)
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Iterable[Vertex]:
        """View of the vertex set (iteration order is insertion order)."""
        return self._adj.keys()

    def vertex_set(self) -> frozenset[Vertex]:
        """The vertex set as a frozenset."""
        return frozenset(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            seen.add(u)
            for v in nbrs:
                if v not in seen:
                    yield (u, v)

    def edge_set(self) -> frozenset[frozenset[Vertex]]:
        """The edge set as a frozenset of 2-element frozensets."""
        return frozenset(frozenset(e) for e in self.edges())

    def num_vertices(self) -> int:
        """Number of vertices, ``|V(G)|``."""
        return len(self._adj)

    def num_edges(self) -> int:
        """Number of edges, ``|E(G)|``."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, v: Vertex) -> frozenset[Vertex]:
        """The open neighborhood ``N(v)``."""
        return frozenset(self._adj[v])

    def adj(self, v: Vertex) -> set[Vertex]:
        """Direct (mutable!) view of the adjacency set of ``v``.

        Internal fast path; callers must not mutate the returned set.
        """
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        """The degree of ``v``."""
        return len(self._adj[v])

    def closed_neighborhood(self, v: Vertex) -> set[Vertex]:
        """The closed neighborhood ``N[v] = N(v) ∪ {v}``."""
        closed = set(self._adj[v])
        closed.add(v)
        return closed

    def neighborhood_of_set(self, vertices: Iterable[Vertex]) -> set[Vertex]:
        """``N(U)``: vertices outside ``U`` adjacent to at least one of ``U``."""
        vs = set(vertices)
        out: set[Vertex] = set()
        for v in vs:
            out |= self._adj[v]
        return out - vs

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Whether ``vertices`` induce a complete subgraph."""
        vs = list(vertices)
        # Checking against the smallest adjacency sets first is not worth the
        # bookkeeping; the quadratic loop with early exit is fast in practice.
        for i, u in enumerate(vs):
            adj_u = self._adj[u]
            for v in vs[i + 1 :]:
                if v not in adj_u:
                    return False
        return True

    def missing_edges(self, vertices: Iterable[Vertex]) -> Iterator[Edge]:
        """Pairs of ``vertices`` that are *not* adjacent (the fill of a bag)."""
        vs = list(vertices)
        for i, u in enumerate(vs):
            adj_u = self._adj[u]
            for v in vs[i + 1 :]:
                if v not in adj_u:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Subgraphs and combinations
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The induced subgraph ``G[U]``."""
        vs = set(vertices)
        g = Graph.__new__(Graph)
        g._adj = {v: self._adj[v] & vs for v in vs}
        return g

    def without(self, vertices: Iterable[Vertex]) -> "Graph":
        """The graph ``G \\ U`` (remove ``U`` and incident edges)."""
        removed = set(vertices)
        return self.subgraph(set(self._adj) - removed)

    def union(self, other: "Graph") -> "Graph":
        """The graph union ``G1 ∪ G2`` (union of vertices and edges)."""
        g = self.copy()
        for v in other._adj:
            g.add_vertex(v)
        for u, v in other.edges():
            g.add_edge(u, v)
        return g

    def complement(self) -> "Graph":
        """The complement graph on the same vertex set."""
        vs = list(self._adj)
        g = Graph(vertices=vs)
        for i, u in enumerate(vs):
            adj_u = self._adj[u]
            for v in vs[i + 1 :]:
                if v not in adj_u:
                    g.add_edge(u, v)
        return g

    @staticmethod
    def complete(vertices: Iterable[Vertex]) -> "Graph":
        """The complete graph ``K_U`` over ``vertices``."""
        vs = list(vertices)
        g = Graph(vertices=vs)
        g.saturate(vs)
        return g

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[Vertex]]:
        """All connected components, as a list of vertex sets."""
        seen: set[Vertex] = set()
        components: list[set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = self._component_from(start, excluded=())
            seen |= comp
            components.append(comp)
        return components

    def _require_vertices(self, vertices: Iterable[Vertex], op: str) -> None:
        """Raise :class:`ValueError` if any of ``vertices`` is absent.

        The membership scan is O(|vertices|) against the adjacency dict —
        negligible next to the BFS/saturation the callers are about to do,
        and it turns a silently-wrong answer (a typo'd label used to be
        ignored) into an immediate error.
        """
        adj = self._adj
        missing = [v for v in vertices if v not in adj]
        if missing:
            raise ValueError(
                f"{op}: vertices not in graph: "
                + ", ".join(sorted(map(repr, missing)))
            )

    def components_without(self, removed: Iterable[Vertex]) -> list[set[Vertex]]:
        """Connected components of ``G \\ removed`` without materializing it.

        This is the hottest operation in the library (it is called once per
        candidate separator per crossing check), so it runs BFS directly on
        the parent adjacency structure.

        Raises
        ------
        ValueError
            If some member of ``removed`` is not a vertex of the graph
            (an absent label used to be silently ignored, returning the
            components of the wrong deletion).
        """
        removed_set = (
            removed if isinstance(removed, (set, frozenset)) else set(removed)
        )
        if not removed_set <= self._adj.keys():
            self._require_vertices(removed_set, "components_without")
        seen: set[Vertex] = set(removed_set)
        components: list[set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = self._component_from(start, excluded=removed_set)
            seen |= comp
            components.append(comp)
        return components

    def component_of(
        self, start: Vertex, removed: Iterable[Vertex] = ()
    ) -> set[Vertex]:
        """The connected component of ``G \\ removed`` containing ``start``.

        Raises
        ------
        ValueError
            If ``start`` is in ``removed``, or if ``start`` or any member
            of ``removed`` is not a vertex of the graph.
        """
        removed_set = (
            removed if isinstance(removed, (set, frozenset)) else set(removed)
        )
        if start not in self._adj:
            raise ValueError(f"component_of: vertices not in graph: {start!r}")
        if not removed_set <= self._adj.keys():
            self._require_vertices(removed_set, "component_of")
        if start in removed_set:
            raise ValueError(f"start vertex {start!r} is in the removed set")
        return self._component_from(start, excluded=removed_set)

    def _component_from(self, start: Vertex, excluded: Iterable[Vertex]) -> set[Vertex]:
        # Hot path: callers hand in a set they already built; copying it
        # once per component dominated the Berry loop before the hoist
        # (see tests/separators/test_berry.py call-count regression).
        excluded_set = (
            excluded if isinstance(excluded, (set, frozenset)) else set(excluded)
        )
        comp = {start}
        queue = deque((start,))
        adj = self._adj
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if w not in comp and w not in excluded_set:
                    comp.add(w)
                    queue.append(w)
        return comp

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        if not self._adj:
            return True
        start = next(iter(self._adj))
        return len(self._component_from(start, excluded=())) == len(self._adj)

    def bfs_order(self, start: Vertex | None = None) -> list[Vertex]:
        """Vertices in BFS order from ``start`` (component by component).

        Every prefix of the returned order induces a subgraph with at most as
        many components as the full graph; on a connected graph every prefix
        is connected.  The potential-maximal-clique enumerator relies on this.
        """
        order: list[Vertex] = []
        seen: set[Vertex] = set()
        starts: list[Vertex] = []
        if start is not None:
            starts.append(start)
        starts.extend(self._adj)
        for s in starts:
            if s in seen:
                continue
            seen.add(s)
            queue = deque((s,))
            while queue:
                u = queue.popleft()
                order.append(u)
                for w in self._adj[u]:
                    if w not in seen:
                        seen.add(w)
                        queue.append(w)
        return order

    # ------------------------------------------------------------------
    # Interop and dunder plumbing
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Convert to a :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    @staticmethod
    def from_networkx(nx_graph: Any) -> "Graph":
        """Build a :class:`Graph` from a :class:`networkx.Graph`."""
        g = Graph(vertices=nx_graph.nodes())
        for u, v in nx_graph.edges():
            if u != v:  # drop self loops silently
                g.add_edge(u, v)
        return g

    def relabeled(self) -> tuple["Graph", dict[Vertex, int]]:
        """Return an isomorphic copy on ``0..n-1`` plus the vertex mapping."""
        mapping = {v: i for i, v in enumerate(self._adj)}
        g = Graph(vertices=mapping.values())
        for u, v in self.edges():
            g.add_edge(mapping[u], mapping[v])
        return g, mapping

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._adj.keys() != other._adj.keys():
            return False
        return all(self._adj[v] == other._adj[v] for v in self._adj)

    def __hash__(self) -> int:  # pragma: no cover - mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices()}, |E|={self.num_edges()})"
