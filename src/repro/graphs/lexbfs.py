"""Lexicographic breadth-first search (Rose–Tarjan–Lueker, 1976).

Lex-BFS is the second classic linear-time route to perfect elimination
orders, predating MCS.  Vertices are visited in order of lexicographically
largest *label*, where a vertex's label collects the visit times of its
already-visited neighbors.  On a chordal graph the reverse visit order is
a PEO.

Provided alongside MCS (`graphs/chordal.py`) for algorithmic breadth: the
two produce different (both perfect) orders, which diversifies the
elimination-order-driven triangulators, and cross-checking them gives the
test suite two independent chordality deciders.

The implementation uses the standard partition-refinement formulation:
maintain an ordered list of vertex blocks; visiting ``v`` splits every
block into (neighbors of ``v``, non-neighbors), keeping neighbors first —
``O(n + m)`` overall with linked blocks; this compact version is
``O(n + m)`` amortized with Python-list constants, which is plenty here.
"""

from __future__ import annotations

from .graph import Graph, Vertex
from .chordal import is_perfect_elimination_order

__all__ = ["lex_bfs", "is_chordal_lexbfs", "peo_via_lexbfs"]


def lex_bfs(graph: Graph, start: Vertex | None = None) -> list[Vertex]:
    """The Lex-BFS visit order of ``graph`` (first visited first).

    Deterministic given the graph's vertex insertion order; ``start``
    forces the first vertex.  Handles disconnected graphs (continues with
    the next unvisited block).
    """
    # Partition refinement over a list of blocks (lists preserve the
    # lexicographic priority order; index 0 = highest priority).
    vertices = list(graph.vertices)
    if not vertices:
        return []
    if start is not None:
        if start not in graph:
            raise KeyError(f"start vertex {start!r} not in graph")
        vertices.remove(start)
        vertices.insert(0, start)
    blocks: list[list[Vertex]] = [vertices]
    order: list[Vertex] = []
    while blocks:
        head = blocks[0]
        v = head.pop(0)
        if not head:
            blocks.pop(0)
        order.append(v)
        adj = graph.adj(v)
        refined: list[list[Vertex]] = []
        for block in blocks:
            neighbors = [u for u in block if u in adj]
            others = [u for u in block if u not in adj]
            if neighbors:
                refined.append(neighbors)
            if others:
                refined.append(others)
        blocks = refined
    return order


def peo_via_lexbfs(graph: Graph) -> list[Vertex] | None:
    """A perfect elimination order from Lex-BFS, or ``None`` if not chordal.

    Returned first-eliminated-first (the reverse of the visit order).
    """
    order = lex_bfs(graph)
    order.reverse()
    if is_perfect_elimination_order(graph, order):
        return order
    return None


def is_chordal_lexbfs(graph: Graph) -> bool:
    """Chordality via Lex-BFS — independent of the MCS-based test."""
    return peo_via_lexbfs(graph) is not None
