"""Graph substrate: the data structure, chordal machinery, generators, IO."""

from .graph import Graph, Vertex, Edge
from .bitgraph import BitGraph, VertexIndexer, iter_bits
from .kernels import (
    KernelSpec,
    available_kernels,
    register_kernel,
    registered_kernels,
    resolve_kernel,
    unregister_kernel,
    validate_kernel,
)
from .chordal import (
    maximum_cardinality_search,
    is_perfect_elimination_order,
    perfect_elimination_order,
    is_chordal,
    maximal_cliques_chordal,
    treewidth_chordal,
    fill_in,
)
from .cliquetree import clique_tree, clique_tree_from_cliques, minimal_separators_chordal
from .lexbfs import lex_bfs, is_chordal_lexbfs, peo_via_lexbfs
from .ordering import vertex_sort_key, vertex_set_sort_key
from .lowerbounds import (
    clique_lower_bound,
    degeneracy,
    mmd_plus_lower_bound,
    treewidth_lower_bound,
)
from . import generators, io

__all__ = [
    "Graph",
    "Vertex",
    "Edge",
    "BitGraph",
    "VertexIndexer",
    "iter_bits",
    "KernelSpec",
    "available_kernels",
    "register_kernel",
    "registered_kernels",
    "resolve_kernel",
    "unregister_kernel",
    "validate_kernel",
    "maximum_cardinality_search",
    "is_perfect_elimination_order",
    "perfect_elimination_order",
    "is_chordal",
    "maximal_cliques_chordal",
    "treewidth_chordal",
    "fill_in",
    "clique_tree",
    "clique_tree_from_cliques",
    "minimal_separators_chordal",
    "lex_bfs",
    "is_chordal_lexbfs",
    "peo_via_lexbfs",
    "vertex_sort_key",
    "vertex_set_sort_key",
    "degeneracy",
    "mmd_plus_lower_bound",
    "clique_lower_bound",
    "treewidth_lower_bound",
    "generators",
    "io",
]
