"""The PACE ``.td`` tree-decomposition exchange format.

PACE challenges exchange computed decompositions as::

    c an optional comment
    s td <num_bags> <max_bag_size> <num_vertices>
    b 1 1 2 3
    b 2 2 3 4
    1 2

(``b <bag-id> <vertices...>`` lines, then tree edges between bag ids; all
ids 1-based).  Writing our :class:`~repro.core.decomposition.TreeDecomposition`
in this format makes the library's output consumable by PACE validators
and downstream solvers, and reading lets us validate third-party
decompositions against a graph (the CLI's ``validate`` command).
"""

from __future__ import annotations

from pathlib import Path

from ..core.decomposition import TreeDecomposition
from .graph import Graph

__all__ = ["parse_td", "to_td", "read_td", "write_td"]


def parse_td(text: str) -> TreeDecomposition:
    """Parse a PACE ``.td`` document.

    Vertex labels are kept as the integers in the file.  Bag ids are
    renumbered to 0-based node ids.

    Raises
    ------
    ValueError
        On malformed documents (missing/duplicate solution line, unknown
        bag references, bag-count mismatch).
    """
    declared_bags: int | None = None
    bags: dict[int, frozenset[int]] = {}
    edges: list[tuple[int, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "s":
            if declared_bags is not None:
                raise ValueError(f"line {lineno}: duplicate solution line")
            if len(parts) != 5 or parts[1] != "td":
                raise ValueError(f"line {lineno}: malformed solution line {line!r}")
            declared_bags = int(parts[2])
        elif parts[0] == "b":
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: malformed bag line {line!r}")
            bag_id = int(parts[1])
            if bag_id in bags:
                raise ValueError(f"line {lineno}: duplicate bag {bag_id}")
            bags[bag_id] = frozenset(int(v) for v in parts[2:])
        else:
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed edge line {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
    if declared_bags is None:
        raise ValueError("missing solution line (s td ...)")
    if len(bags) != declared_bags:
        raise ValueError(
            f"solution line declared {declared_bags} bags, found {len(bags)}"
        )
    mapping = {bag_id: i for i, bag_id in enumerate(sorted(bags))}
    for a, b in edges:
        if a not in mapping or b not in mapping:
            raise ValueError(f"tree edge ({a}, {b}) references unknown bag")
    return TreeDecomposition(
        {mapping[bid]: members for bid, members in bags.items()},
        [(mapping[a], mapping[b]) for a, b in edges],
    )


def to_td(decomposition: TreeDecomposition, graph: Graph | None = None) -> str:
    """Serialize a decomposition to the PACE ``.td`` format.

    Vertices must be integers (PACE graphs are 1-based integers); pass the
    ``graph`` to record the true vertex count in the solution line (else
    the union of the bags is used).
    """
    all_vertices: set = set()
    for bag in decomposition.bags.values():
        all_vertices |= bag
    if not all(isinstance(v, int) for v in all_vertices):
        raise ValueError(".td serialization requires integer vertex labels")
    num_vertices = (
        graph.num_vertices() if graph is not None else len(all_vertices)
    )
    max_bag = max((len(b) for b in decomposition.bags.values()), default=0)
    node_ids = {node: i for i, node in enumerate(sorted(decomposition.bags), start=1)}
    lines = [f"s td {len(decomposition.bags)} {max_bag} {num_vertices}"]
    for node in sorted(decomposition.bags):
        members = " ".join(map(str, sorted(decomposition.bags[node])))
        lines.append(f"b {node_ids[node]} {members}".rstrip())
    for a, b in sorted(
        (min(node_ids[x], node_ids[y]), max(node_ids[x], node_ids[y]))
        for x, y in decomposition.edges
    ):
        lines.append(f"{a} {b}")
    return "\n".join(lines) + "\n"


def read_td(path: str | Path) -> TreeDecomposition:
    """Read a ``.td`` file."""
    return parse_td(Path(path).read_text())


def write_td(
    decomposition: TreeDecomposition,
    path: str | Path,
    graph: Graph | None = None,
) -> None:
    """Write a ``.td`` file."""
    Path(path).write_text(to_td(decomposition, graph))
