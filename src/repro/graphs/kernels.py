"""First-class kernel registry: name → capability spec → builder.

Kernel selection used to be a hardcoded ``KERNELS = ("bitset", "sets")``
tuple string-threaded through every layer of the stack.  This module
replaces the tuple with a registry of :class:`KernelSpec` entries so a
new kernel (the numpy one in :mod:`repro.graphs.npgraph`, or a caller's
own) plugs in at exactly one point and is immediately visible to the
``Session`` API, the context builder, the service wire protocol, the
gateway, the CLI ``--kernel`` choices, and the differential test
harness.

Concepts:

* A **kernel name** is a short string (``"sets"``, ``"bitset"``,
  ``"numpy"``).  ``"auto"`` is not a kernel: it is a *policy* resolved
  by :func:`resolve_kernel` to the highest-priority available spec, so
  that everything downstream of resolution — cache keys most of all —
  only ever sees concrete names.
* A :class:`KernelSpec` carries the builder (label graph → mask-level
  graph), a capability set, an availability probe, and an ``"auto"``
  priority.  Mask-level specs build :class:`~repro.graphs.bitgraph.BitGraph`
  instances (or subclasses); the ``"sets"`` oracle has no builder and
  runs the original label-level code paths.
* Availability is probed lazily and may change (e.g. the numpy spec
  honours ``REPRO_DISABLE_NUMPY`` for the no-numpy CI leg), so probes
  are consulted per call rather than cached at import.

The old entry points stay importable: :func:`validate_kernel` is now a
registry lookup that also resolves ``"auto"``, and
``repro.graphs.bitgraph.KERNELS`` remains as a deprecated alias of the
built-in names.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field

from .bitgraph import BitGraph, VertexIndexer
from .graph import Graph

__all__ = [
    "AUTO_KERNEL",
    "KernelSpec",
    "available_kernels",
    "register_kernel",
    "registered_kernels",
    "resolve_kernel",
    "unregister_kernel",
    "validate_kernel",
]

#: The resolution policy name accepted everywhere a kernel name is:
#: pick the highest-priority available registered kernel.
AUTO_KERNEL = "auto"

#: Environment switch forcing the numpy spec to report unavailable, so
#: the ``"auto"`` → ``"bitset"`` degradation path is testable without
#: uninstalling numpy.
DISABLE_NUMPY_ENV = "REPRO_DISABLE_NUMPY"


@dataclass(frozen=True)
class KernelSpec:
    """One registered graph kernel.

    Parameters
    ----------
    name:
        Registry key; what ``Session(kernel=...)``, the wire protocol,
        and cache keys carry.
    description:
        One line for ``--help`` output and the service ``stats`` op.
    build:
        ``(graph, indexer=None) -> BitGraph`` for mask-level kernels;
        ``None`` for the label-level ``"sets"`` oracle.
    capabilities:
        Free-form capability tags.  The stack dispatches on two:
        ``"masks"`` (the kernel builds a :class:`BitGraph`-compatible
        object and takes the mask-level hot paths) and ``"batched"``
        (the built object additionally exposes the batched whole-array
        operations of :class:`~repro.graphs.npgraph.NumpyBitGraph`).
    available:
        Zero-argument probe; a spec whose probe returns ``False`` is
        skipped by ``"auto"`` and rejected when named explicitly.
    priority:
        ``"auto"`` resolution order — highest available priority wins.
    """

    name: str
    description: str = ""
    build: Callable[..., BitGraph] | None = None
    capabilities: frozenset[str] = frozenset()
    available: Callable[[], bool] = field(default=lambda: True)
    priority: int = 0

    @property
    def uses_masks(self) -> bool:
        """Whether this kernel runs the mask-level (bitset) hot paths."""
        return "masks" in self.capabilities

    def build_graph(
        self, graph: Graph, indexer: VertexIndexer | None = None
    ) -> BitGraph:
        """Encode ``graph`` for this kernel (mask-level kernels only)."""
        if self.build is None:
            raise ValueError(
                f"kernel {self.name!r} is label-level and has no builder"
            )
        return self.build(graph, indexer)

    def is_available(self) -> bool:
        """Probe availability (never raises)."""
        try:
            return bool(self.available())
        except Exception:  # pragma: no cover - defensive probe guard
            return False


_REGISTRY: dict[str, KernelSpec] = {}


def register_kernel(spec: KernelSpec, *, replace: bool = False) -> KernelSpec:
    """Add ``spec`` to the registry and return it.

    Registration is immediately visible everywhere kernel names are
    consumed (``available_kernels`` drives the wire protocol, gateway,
    and CLI).  Re-registering a taken name requires ``replace=True``.
    """
    if spec.name == AUTO_KERNEL:
        raise ValueError(f"{AUTO_KERNEL!r} is the resolution policy, not a kernel name")
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"kernel {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_kernel(name: str) -> None:
    """Remove a registered kernel (primarily for tests)."""
    if name in ("sets", "bitset"):
        raise ValueError(f"the built-in kernel {name!r} cannot be unregistered")
    _REGISTRY.pop(name, None)


def registered_kernels() -> tuple[KernelSpec, ...]:
    """All registered specs, highest ``"auto"`` priority first."""
    return tuple(
        sorted(_REGISTRY.values(), key=lambda s: (-s.priority, s.name))
    )


def available_kernels() -> tuple[str, ...]:
    """Names of the registered kernels whose availability probe passes.

    This is the single source of truth for what a kernel name may be:
    the wire protocol, the gateway handlers, and the CLI ``--kernel``
    choices all validate against it (plus the ``"auto"`` policy).
    """
    return tuple(s.name for s in registered_kernels() if s.is_available())


def resolve_kernel(kernel: str | KernelSpec = AUTO_KERNEL) -> KernelSpec:
    """Resolve a kernel name, spec, or the ``"auto"`` policy to a spec.

    ``"auto"`` picks the highest-priority spec whose availability probe
    passes (numpy when importable, else bitset).  Naming an unknown or
    unavailable kernel raises ``ValueError`` — graceful degradation is
    the policy's job, never a silent substitution under an explicit
    name.
    """
    if isinstance(kernel, KernelSpec):
        registered = _REGISTRY.get(kernel.name)
        if registered is not kernel:
            raise ValueError(
                f"kernel spec {kernel.name!r} is not the registered spec; "
                "register it with register_kernel() first"
            )
        kernel = kernel.name
    if kernel == AUTO_KERNEL:
        for spec in registered_kernels():
            if spec.is_available():
                return spec
        raise ValueError("no registered kernel is available")
    spec = _REGISTRY.get(kernel)
    if spec is None:
        known = (AUTO_KERNEL, *(s.name for s in registered_kernels()))
        raise ValueError(
            f"unknown graph kernel {kernel!r}; expected one of {known}"
        )
    if not spec.is_available():
        raise ValueError(
            f"graph kernel {kernel!r} is registered but unavailable "
            f"(available: {available_kernels()})"
        )
    return spec


def validate_kernel(kernel: str | KernelSpec) -> str:
    """Resolve ``kernel`` and return the concrete kernel *name*.

    The historical entry point, now a registry lookup.  Note that
    ``validate_kernel("auto")`` returns the resolved concrete name —
    callers that persist or key on the result (cache keys, wire frames)
    therefore never see ``"auto"``.
    """
    return resolve_kernel(kernel).name


# ----------------------------------------------------------------------
# Built-in kernels
# ----------------------------------------------------------------------
def _build_bitset(graph: Graph, indexer: VertexIndexer | None = None) -> BitGraph:
    return BitGraph.from_graph(graph, indexer)


def _numpy_available() -> bool:
    if os.environ.get(DISABLE_NUMPY_ENV):
        return False
    try:
        from . import npgraph  # noqa: F401
    except Exception:
        return False
    return True


def _build_numpy(graph: Graph, indexer: VertexIndexer | None = None) -> BitGraph:
    from .npgraph import NumpyBitGraph

    return NumpyBitGraph.from_graph(graph, indexer)


register_kernel(
    KernelSpec(
        name="sets",
        description="label-level frozenset oracle (slow, obviously correct)",
        build=None,
        capabilities=frozenset({"oracle"}),
        priority=0,
    )
)

register_kernel(
    KernelSpec(
        name="bitset",
        description="pure-python int-mask kernel (word-parallel, no deps)",
        build=_build_bitset,
        capabilities=frozenset({"masks"}),
        priority=10,
    )
)

register_kernel(
    KernelSpec(
        name="numpy",
        description="numpy uint64-array kernel (batched whole-array ops)",
        build=_build_numpy,
        capabilities=frozenset({"masks", "batched"}),
        available=_numpy_available,
        priority=20,
    )
)
