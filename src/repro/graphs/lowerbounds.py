"""Treewidth lower bounds.

Cheap certified lower bounds used to sanity-check the exact
Bouchitté–Todinca computation and to prune hopeless width bounds before
building a bounded context:

* :func:`degeneracy` — the classic MMD⁻ bound: repeatedly remove a
  minimum-degree vertex; the maximum degree seen is the degeneracy, a
  lower bound on treewidth.
* :func:`mmd_plus_lower_bound` — MMD+ (Bodlaender–Koster style): like
  degeneracy, but instead of deleting the minimum-degree vertex,
  *contract* it into a least-degree neighbor, which can only increase the
  bound.
* :func:`clique_lower_bound` — ω(G) − 1 for a greedily found clique
  (not maximum; still a valid bound).
"""

from __future__ import annotations

from .graph import Graph

__all__ = [
    "degeneracy",
    "mmd_plus_lower_bound",
    "clique_lower_bound",
    "treewidth_lower_bound",
]


def degeneracy(graph: Graph) -> int:
    """The degeneracy of ``graph`` (MMD⁻ treewidth lower bound).

    Returns −1 for the empty graph (matching the treewidth convention).
    """
    work = graph.copy()
    best = -1 if work.num_vertices() == 0 else 0
    while work.num_vertices():
        v = min(work.vertices, key=work.degree)
        best = max(best, work.degree(v))
        work.remove_vertex(v)
    return best


def mmd_plus_lower_bound(graph: Graph) -> int:
    """The MMD+ (contraction) treewidth lower bound.

    Each step contracts a minimum-degree vertex into its least-degree
    neighbor; the maximum of the encountered minimum degrees lower-bounds
    treewidth (contractions never decrease it).
    """
    work = graph.copy()
    best = -1 if work.num_vertices() == 0 else 0
    while work.num_vertices() > 1:
        v = min(work.vertices, key=work.degree)
        degree = work.degree(v)
        best = max(best, degree)
        if degree == 0:
            work.remove_vertex(v)
            continue
        target = min(work.adj(v), key=work.degree)
        # contract v into target
        for u in list(work.adj(v)):
            if u != target:
                work.add_edge(target, u)
        work.remove_vertex(v)
    return best


def clique_lower_bound(graph: Graph) -> int:
    """ω' − 1 for a greedy clique ω' (valid, not necessarily tight)."""
    best = 0 if graph.num_vertices() else -1
    for v in graph.vertices:
        clique = {v}
        # grow greedily among v's neighbors by descending degree
        for u in sorted(graph.adj(v), key=graph.degree, reverse=True):
            if all(u in graph.adj(w) for w in clique):
                clique.add(u)
        best = max(best, len(clique) - 1)
    return best


def treewidth_lower_bound(graph: Graph) -> int:
    """The best of the implemented lower bounds."""
    if graph.num_vertices() == 0:
        return -1
    return max(
        degeneracy(graph),
        mmd_plus_lower_bound(graph),
        clique_lower_bound(graph),
    )
