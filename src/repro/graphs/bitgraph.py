"""Dense bitset graph kernel for the enumeration hot path.

Every stage of the pipeline — Berry–Bordat–Cogis minimal-separator
enumeration, Bouchitté–Todinca PMC listing, and the block DP behind
ranked enumeration — bottoms out in neighborhoods and connected
components of vertex-deleted subgraphs.  :class:`Graph` computes those
over Python ``set`` objects of arbitrary hashable labels, which is
flexible but allocation-heavy.  :class:`BitGraph` is the dense
alternative: vertices become bit positions, vertex sets become Python
ints, and the hot subroutines become word-parallel ``&``/``|``/``^``
operations on those ints (one machine word for graphs up to 63 vertices,
gracefully widening beyond).

The kernel is internal.  :class:`Graph` stays the public, label-level
API; :class:`VertexIndexer` translates between the two worlds exactly
once, at the :class:`~repro.core.context.TriangulationContext` boundary
(``kernel="bitset"``), and the differential test suite
(``tests/property/test_kernel_equivalence.py``) proves that both kernels
produce identical minimal-separator sets, PMC sets, and bit-identical
ranked-enumeration output order.

Conventions used throughout:

* a *vertex* is an ``int`` index in ``0..n-1``;
* a *vertex set* is an ``int`` mask with bit ``i`` set for vertex ``i``;
* iteration over a mask's bits uses the lowest-set-bit idiom
  ``low = m & -m; i = low.bit_length() - 1; m ^= low``, ascending — so
  every mask-level loop is deterministic in index order.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from .graph import Graph, Vertex

__all__ = ["VertexIndexer", "BitGraph", "iter_bits", "KERNELS", "validate_kernel"]

#: Deprecated alias of the original built-in kernel names.  The source
#: of truth is now the registry in :mod:`repro.graphs.kernels`
#: (``available_kernels()``), which third-party kernels extend.
KERNELS = ("bitset", "sets")


def validate_kernel(kernel) -> str:
    """Resolve a kernel name/spec to a concrete kernel name.

    Deprecated shim over :func:`repro.graphs.kernels.validate_kernel`
    (kept because historical call sites import it from here).  Note the
    registry semantics: ``"auto"`` resolves to the best available
    kernel, so the returned name is always concrete.
    """
    from .kernels import validate_kernel as _validate

    return _validate(kernel)


def iter_bits(mask: int) -> Iterator[int]:
    """The set bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class VertexIndexer:
    """A bijection between hashable vertex labels and dense ``0..n-1`` ints.

    Labels keep their insertion order (matching :class:`Graph`'s vertex
    iteration order), so index ``i`` is the ``i``-th inserted vertex and
    mask-level iteration order mirrors label-level iteration order.
    """

    __slots__ = ("_labels", "_index")

    def __init__(self, labels: Iterable[Vertex]) -> None:
        self._labels: tuple[Vertex, ...] = tuple(labels)
        self._index: dict[Vertex, int] = {
            v: i for i, v in enumerate(self._labels)
        }
        if len(self._index) != len(self._labels):
            raise ValueError("duplicate vertex labels")

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    @property
    def labels(self) -> tuple[Vertex, ...]:
        """All labels, in index order."""
        return self._labels

    def index_of(self, label: Vertex) -> int:
        """The dense index of ``label``."""
        return self._index[label]

    def label_of(self, index: int) -> Vertex:
        """The label at dense ``index``."""
        return self._labels[index]

    def mask_of(self, labels: Iterable[Vertex]) -> int:
        """The bitmask of a label set."""
        index = self._index
        mask = 0
        for v in labels:
            mask |= 1 << index[v]
        return mask

    def labels_of(self, mask: int) -> frozenset[Vertex]:
        """The label set of a bitmask."""
        labels = self._labels
        return frozenset(labels[i] for i in iter_bits(mask))

    def sorted_labels_of(self, mask: int) -> list[Vertex]:
        """The labels of a bitmask, in index (insertion) order."""
        labels = self._labels
        return [labels[i] for i in iter_bits(mask)]


class BitGraph:
    """An undirected graph stored as one adjacency bitmask per vertex.

    Vertices are dense indices ``0..n-1`` under :attr:`indexer`;
    :attr:`full_mask` is the mask of vertices actually present (an
    induced view may cover only part of the index range).  All query
    methods are read-only except :meth:`saturate`, which is only ever
    called on copies (:meth:`copy`) or throwaway instances.
    """

    #: Capability flag: whether this kernel provides the batched
    #: whole-array operations (see :class:`repro.graphs.npgraph.NumpyBitGraph`).
    #: The algorithm layers dispatch their batched inner loops on it.
    BATCHED = False

    __slots__ = ("indexer", "adj", "full_mask")

    def __init__(
        self, indexer: VertexIndexer, adj: list[int], full_mask: int
    ) -> None:
        self.indexer = indexer
        self.adj = adj
        self.full_mask = full_mask

    @classmethod
    def from_graph(
        cls, graph: Graph, indexer: VertexIndexer | None = None
    ) -> "BitGraph":
        """Encode a label-level :class:`Graph` (the one-time translation).

        With an explicit ``indexer`` the graph's vertices must all be
        registered in it; vertices of the indexer missing from the graph
        simply stay outside :attr:`full_mask`.
        """
        if indexer is None:
            indexer = VertexIndexer(graph.vertices)
        index = indexer._index
        adj = [0] * len(indexer)
        full = 0
        for v in graph.vertices:
            full |= 1 << index[v]
        for u, w in graph.edges():
            i, j = index[u], index[w]
            adj[i] |= 1 << j
            adj[j] |= 1 << i
        return cls(indexer, adj, full)

    def to_graph(self) -> Graph:
        """Decode back to a label-level :class:`Graph`."""
        labels = self.indexer.labels
        g = Graph(vertices=(labels[i] for i in iter_bits(self.full_mask)))
        adj = self.adj
        for i in iter_bits(self.full_mask):
            u = labels[i]
            higher = adj[i] >> (i + 1)
            for off in iter_bits(higher):
                g.add_edge(u, labels[i + 1 + off])
        return g

    def copy(self) -> "BitGraph":
        """An independent copy sharing the (immutable) indexer."""
        return BitGraph(self.indexer, list(self.adj), self.full_mask)

    def induced(self, mask: int) -> "BitGraph":
        """The induced subgraph view on ``mask`` (same indexer)."""
        return BitGraph(
            self.indexer,
            [a & mask if mask >> i & 1 else 0 for i, a in enumerate(self.adj)],
            mask & self.full_mask,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        return self.full_mask.bit_count()

    def closed_neighborhood(self, i: int) -> int:
        """``N[i]`` as a mask."""
        return self.adj[i] | (1 << i)

    def neighborhood_of_set(self, mask: int) -> int:
        """``N(U)``: vertices outside ``mask`` adjacent to some member."""
        adj = self.adj
        out = 0
        m = mask
        while m:
            low = m & -m
            out |= adj[low.bit_length() - 1]
            m ^= low
        return out & ~mask

    def is_clique(self, mask: int) -> bool:
        """Whether ``mask`` induces a complete subgraph."""
        adj = self.adj
        m = mask
        while m:
            low = m & -m
            if mask & ~(adj[low.bit_length() - 1] | low):
                return False
            m ^= low
        return True

    def missing_pair_count(self, mask: int) -> int:
        """Number of non-adjacent pairs inside ``mask`` (the bag fill)."""
        adj = self.adj
        missing = 0
        m = mask
        while m:
            low = m & -m
            i = low.bit_length() - 1
            missing += (mask & ~(adj[i] | low) & ~(low - 1)).bit_count()
            m ^= low
        return missing

    def saturate(self, mask: int) -> None:
        """Make ``mask`` a clique (mutates; use on copies only)."""
        adj = self.adj
        m = mask
        while m:
            low = m & -m
            adj[low.bit_length() - 1] |= mask & ~low
            m ^= low

    # ------------------------------------------------------------------
    # Connectivity (word-parallel BFS)
    # ------------------------------------------------------------------
    def _spread(self, seed: int, region: int) -> int:
        """The component of ``region`` (a mask) reachable from ``seed``."""
        adj = self.adj
        comp = seed
        frontier = seed
        while frontier:
            grow = 0
            m = frontier
            while m:
                low = m & -m
                grow |= adj[low.bit_length() - 1]
                m ^= low
            frontier = grow & region & ~comp
            comp |= frontier
        return comp

    def components_within(self, region: int) -> list[int]:
        """Connected components of the induced subgraph on ``region``.

        Returned ascending by lowest member index — the bitset analogue
        of :meth:`Graph.components_without`'s insertion-order scan.
        """
        todo = region & self.full_mask
        components = []
        while todo:
            comp = self._spread(todo & -todo, todo)
            todo &= ~comp
            components.append(comp)
        return components

    def components_without(self, removed: int) -> list[int]:
        """Connected components of ``G \\ removed`` (both masks)."""
        return self.components_within(self.full_mask & ~removed)

    def components_with_neighborhoods(
        self, region: int
    ) -> list[tuple[int, int]]:
        """``(C, N(C))`` pairs for the components of ``G[region]``.

        The enumeration hot paths almost always need a component *and*
        its neighborhood; the spread loop already ORs every member's
        adjacency word, so the neighborhood falls out of the same pass
        for free instead of a second sweep over the component's bits.
        ``N(C)`` is taken in the whole (view) graph, exactly like
        calling :meth:`neighborhood_of_set` on the component.
        """
        adj = self.adj
        todo = region & self.full_mask
        out: list[tuple[int, int]] = []
        while todo:
            seed = todo & -todo
            comp = seed
            reach = 0
            frontier = seed
            while frontier:
                grow = 0
                m = frontier
                while m:
                    low = m & -m
                    grow |= adj[low.bit_length() - 1]
                    m ^= low
                reach |= grow
                frontier = grow & todo & ~comp
                comp |= frontier
            out.append((comp, reach & ~comp))
            todo &= ~comp
        return out

    def component_of(self, start: int, removed: int = 0) -> int:
        """The component of ``G \\ removed`` containing vertex ``start``."""
        seed = 1 << start
        if removed & seed:
            raise ValueError(f"start vertex {start} is in the removed set")
        return self._spread(seed, self.full_mask & ~removed)

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts)."""
        full = self.full_mask
        if not full:
            return True
        return self._spread(full & -full, full) == full

    def bfs_order(self, start: int | None = None) -> list[int]:
        """Vertex indices in BFS order (component by component).

        Level-parallel BFS: each level is gathered as one mask and
        emitted in ascending index order, so every prefix of the order
        induces a subgraph with at most as many components as the whole
        graph — the property the PMC enumerator needs.
        """
        adj = self.adj
        order: list[int] = []
        remaining = self.full_mask
        first = start
        while remaining:
            if first is not None:
                seed = 1 << first
                if not remaining & seed:
                    raise ValueError(f"start vertex {first} not in graph")
                first = None
            else:
                seed = remaining & -remaining
            remaining &= ~seed
            frontier = seed
            while frontier:
                m = frontier
                while m:
                    low = m & -m
                    order.append(low.bit_length() - 1)
                    m ^= low
                grow = 0
                m = frontier
                while m:
                    low = m & -m
                    grow |= adj[low.bit_length() - 1]
                    m ^= low
                frontier = grow & remaining
                remaining &= ~frontier
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(a.bit_count() for a in self.adj) // 2
        return f"BitGraph(|V|={self.num_vertices()}, |E|={edges})"
