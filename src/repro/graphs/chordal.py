"""Chordal-graph machinery: MCS, perfect elimination orders, chordality.

Implements the classic linear-time tools the triangulation algorithms build
on:

* :func:`maximum_cardinality_search` — the MCS vertex ordering of Tarjan and
  Yannakakis (1984).
* :func:`is_perfect_elimination_order` — the Tarjan–Yannakakis test that an
  ordering is a perfect elimination order (PEO).
* :func:`is_chordal` — chordality via MCS + PEO test.
* :func:`maximal_cliques_chordal` — the maximal cliques of a chordal graph
  from a PEO (Fulkerson–Gross style); a chordal graph on ``n`` vertices has
  at most ``n`` maximal cliques (Theorem 2.2(2) of the paper).
* :func:`treewidth_chordal` / :func:`fill_in` — convenience measures.
"""

from __future__ import annotations

from .graph import Graph, Vertex

__all__ = [
    "maximum_cardinality_search",
    "is_perfect_elimination_order",
    "perfect_elimination_order",
    "is_chordal",
    "maximal_cliques_chordal",
    "treewidth_chordal",
    "fill_in",
]


def maximum_cardinality_search(
    graph: Graph, start: Vertex | None = None
) -> list[Vertex]:
    """Return an MCS ordering of ``graph`` (first-visited first).

    Maximum cardinality search repeatedly visits an unvisited vertex with the
    largest number of visited neighbors.  On a chordal graph the *reverse* of
    the returned order is a perfect elimination order.

    Parameters
    ----------
    graph:
        The graph to order.
    start:
        Optional first vertex; defaults to an arbitrary vertex.

    Returns
    -------
    list of vertices in visit order (length ``|V|``; works on disconnected
    graphs too).
    """
    n = graph.num_vertices()
    if n == 0:
        return []
    weights: dict[Vertex, int] = {v: 0 for v in graph.vertices}
    # Bucket queue over weights: buckets[w] is a set of unvisited vertices
    # with exactly w visited neighbors.
    buckets: list[set[Vertex]] = [set(weights)]
    if start is not None:
        # Force `start` to be picked first by giving it its own top bucket.
        buckets[0].discard(start)
        buckets.append({start})
        weights[start] = 1
    max_weight = len(buckets) - 1
    order: list[Vertex] = []
    visited: set[Vertex] = set()
    while len(order) < n:
        while not buckets[max_weight]:
            max_weight -= 1
        v = buckets[max_weight].pop()
        order.append(v)
        visited.add(v)
        for u in graph.adj(v):
            if u in visited:
                continue
            w = weights[u]
            buckets[w].discard(u)
            weights[u] = w + 1
            if w + 1 >= len(buckets):
                buckets.append(set())
            buckets[w + 1].add(u)
            if w + 1 > max_weight:
                max_weight = w + 1
    return order


def is_perfect_elimination_order(graph: Graph, order: list[Vertex]) -> bool:
    """Test whether ``order`` is a perfect elimination order of ``graph``.

    ``order`` lists vertices in elimination order: ``order[0]`` is eliminated
    first.  The order is perfect iff for every vertex ``v`` the neighbors of
    ``v`` that come *later* in the order form a clique.  Uses the standard
    Tarjan–Yannakakis "parent check": it suffices that the later neighbors of
    ``v`` minus the first of them are all adjacent to that first one,
    checked transitively.
    """
    position = {v: i for i, v in enumerate(order)}
    if len(position) != graph.num_vertices():
        raise ValueError("order must list every vertex exactly once")
    for v in order:
        later = [u for u in graph.adj(v) if position[u] > position[v]]
        if not later:
            continue
        parent = min(later, key=position.__getitem__)
        parent_adj = graph.adj(parent)
        for u in later:
            if u is not parent and u not in parent_adj:
                return False
    return True


def perfect_elimination_order(graph: Graph) -> list[Vertex] | None:
    """A perfect elimination order of ``graph``, or ``None`` if not chordal.

    Returned in elimination order (first eliminated first); this is the
    reverse of the MCS visit order.
    """
    order = maximum_cardinality_search(graph)
    order.reverse()
    if is_perfect_elimination_order(graph, order):
        return order
    return None


def is_chordal(graph: Graph) -> bool:
    """Whether ``graph`` is chordal (every cycle of length > 3 has a chord)."""
    return perfect_elimination_order(graph) is not None


def maximal_cliques_chordal(graph: Graph) -> set[frozenset[Vertex]]:
    """The maximal cliques ``MaxClq(G)`` of a chordal graph.

    Uses a PEO: the candidate cliques are ``{v} ∪ later-neighbors(v)``; a
    candidate is maximal unless it is strictly contained in the candidate of
    an earlier-eliminated neighbor (checked by cardinality along the parent
    pointers, the Fulkerson–Gross criterion).

    Raises
    ------
    ValueError
        If ``graph`` is not chordal.
    """
    order = perfect_elimination_order(graph)
    if order is None:
        raise ValueError("graph is not chordal")
    position = {v: i for i, v in enumerate(order)}
    cliques: set[frozenset[Vertex]] = set()
    for v in order:
        pos_v = position[v]
        later = {u for u in graph.adj(v) if position[u] > pos_v}
        candidate = later | {v}
        # candidate is a clique (PEO property).  It fails to be maximal iff
        # some vertex u outside it is adjacent to all of it; such a u must be
        # eliminated before v (a later u would itself belong to candidate),
        # and being adjacent to v it is an earlier neighbor of v.
        maximal = True
        for u in graph.adj(v):
            if position[u] < pos_v and candidate <= graph.adj(u):
                maximal = False
                break
        if maximal:
            cliques.add(frozenset(candidate))
    return cliques


def treewidth_chordal(graph: Graph) -> int:
    """Width of a chordal graph: max clique size minus one (−1 if empty)."""
    if graph.num_vertices() == 0:
        return -1
    return max(len(c) for c in maximal_cliques_chordal(graph)) - 1


def fill_in(graph: Graph, triangulation: Graph) -> int:
    """Number of fill edges of ``triangulation`` relative to ``graph``."""
    return triangulation.num_edges() - graph.num_edges()
