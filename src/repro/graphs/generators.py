"""Deterministic graph constructors used by tests, examples and workloads.

All random constructions take an explicit ``seed`` so every experiment in
the benchmark suite is reproducible.
"""

from __future__ import annotations

import random
from itertools import combinations

from .graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "star_graph",
    "grid_graph",
    "tree_graph",
    "bowtie_graph",
    "tree_of_cliques",
    "ring_of_cycles",
    "erdos_renyi",
    "connected_erdos_renyi",
    "gnm_random",
    "petersen_graph",
    "mycielski",
    "mycielski_graph",
    "queen_graph",
    "hypercube_graph",
    "paper_example_graph",
]


def path_graph(n: int) -> Graph:
    """Path on vertices ``0..n-1``."""
    return Graph(vertices=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on vertices ``0..n-1`` (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n`` on vertices ``0..n-1``."""
    return Graph.complete(range(n))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with sides ``0..a-1`` and ``a..a+b-1``."""
    g = Graph(vertices=range(a + b))
    for i in range(a):
        for j in range(a, a + b):
            g.add_edge(i, j)
    return g


def star_graph(n: int) -> Graph:
    """Star with center ``0`` and leaves ``1..n``."""
    return Graph(vertices=range(n + 1), edges=[(0, i) for i in range(1, n + 1)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid; vertices are ``(r, c)`` pairs."""
    g = Graph(vertices=((r, c) for r in range(rows) for c in range(cols)))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def tree_graph(n: int, seed: int = 0) -> Graph:
    """A uniform random labelled tree on ``0..n-1`` (random Prüfer-like)."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def bowtie_graph(k: int = 4) -> Graph:
    """Two ``k``-cliques sharing the single cut vertex ``0``.

    The canonical decomposable graph: its atoms are the two cliques, so
    the preprocessing pipeline reduces it to two constant pieces.  It is
    chordal (one minimal triangulation: itself).
    """
    if k < 2:
        raise ValueError("a bowtie needs cliques of at least 2 vertices")
    g = Graph(vertices=range(2 * k - 1))
    g.saturate(range(k))
    g.saturate([0, *range(k, 2 * k - 1)])
    return g


def tree_of_cliques(cliques: int = 5, size: int = 4) -> Graph:
    """A binary tree of ``cliques`` ``size``-cliques, adjacent cliques
    sharing one vertex.

    Clique ``i`` attaches to clique ``(i - 1) // 2`` by identifying its
    first vertex with a vertex of the parent (round-robin over the
    parent's members, so siblings attach at different cut vertices).
    Chordal and fully decomposable: the atoms are exactly the cliques.
    """
    if cliques < 1:
        raise ValueError("need at least one clique")
    if size < 2:
        raise ValueError("cliques need at least 2 vertices")
    g = Graph()
    members: list[list[int]] = []
    next_label = 0
    for i in range(cliques):
        if i == 0:
            mine = list(range(next_label, next_label + size))
            next_label += size
        else:
            parent = members[(i - 1) // 2]
            shared = parent[(i - 1) % size]
            mine = [shared, *range(next_label, next_label + size - 1)]
            next_label += size - 1
        for v in mine:
            g.add_vertex(v)
        g.saturate(mine)
        members.append(mine)
    return g


def ring_of_cycles(rings: int = 3, length: int = 5) -> Graph:
    """``rings`` cycles of ``length`` vertices chained at cut vertices.

    The non-chordal decomposable stress graph: each cycle is one atom
    with ``Catalan(length - 2)`` minimal triangulations, the cut
    vertices are clique minimal separators, and the full graph has the
    product count — exponentially many answers from polynomially small
    pieces, which is exactly the case ranked recomposition is for.
    """
    if rings < 1 or length < 3:
        raise ValueError("need rings >= 1 cycles of length >= 3")
    g = Graph()
    next_label = 0
    previous_last: int | None = None
    for _r in range(rings):
        if previous_last is None:
            labels = list(range(next_label, next_label + length))
            next_label += length
        else:
            labels = [
                previous_last,
                *range(next_label, next_label + length - 1),
            ]
            next_label += length - 1
        for a, b in zip(labels, labels[1:] + labels[:1]):
            g.add_edge(a, b)
        previous_last = labels[-1]
    return g


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """``G(n, p)``: each pair independently an edge with probability ``p``."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n))
    for u, v in combinations(range(n), 2):
        if rng.random() < p:
            g.add_edge(u, v)
    return g


def connected_erdos_renyi(
    n: int, p: float, seed: int = 0, attempts: int = 50
) -> Graph:
    """The first *connected* ``G(n, p)`` sample at or after ``seed``.

    Deterministic: seeds ``seed, seed + 1, …`` are tried in order, so the
    benchmarks and the golden test corpus name the same instance by the
    same ``(n, p, seed)`` triple.
    """
    for s in range(seed, seed + attempts):
        g = erdos_renyi(n, p, seed=s)
        if g.num_vertices() and g.is_connected():
            return g
    raise RuntimeError(
        f"no connected G({n}, {p}) sample within {attempts} seeds of {seed}"
    )


def gnm_random(n: int, m: int, seed: int = 0) -> Graph:
    """``G(n, m)``: exactly ``m`` edges drawn uniformly without replacement."""
    all_pairs = list(combinations(range(n), 2))
    if m > len(all_pairs):
        raise ValueError(f"m={m} exceeds the {len(all_pairs)} possible edges")
    rng = random.Random(seed)
    return Graph(vertices=range(n), edges=rng.sample(all_pairs, m))


def petersen_graph() -> Graph:
    """The Petersen graph (generalized Petersen GP(5, 2))."""
    g = Graph(vertices=range(10))
    for i in range(5):
        g.add_edge(i, (i + 1) % 5)  # outer cycle
        g.add_edge(i, i + 5)  # spokes
        g.add_edge(5 + i, 5 + (i + 2) % 5)  # inner pentagram
    return g


def mycielski(graph: Graph) -> Graph:
    """The Mycielski construction over ``graph``.

    Vertices are relabelled to ``0..2n``: the originals ``0..n-1``, their
    shadows ``n..2n-1`` and the apex ``2n``.
    """
    base, mapping = graph.relabeled()
    n = base.num_vertices()
    g = Graph(vertices=range(2 * n + 1))
    for u, v in base.edges():
        g.add_edge(u, v)
        g.add_edge(u, v + n)
        g.add_edge(v, u + n)
    for i in range(n):
        g.add_edge(i + n, 2 * n)
    return g


def mycielski_graph(k: int) -> Graph:
    """``M_k`` in the DIMACS "myciel" family: M_2 = K_2, M_3 = C_5, ...

    ``mycielski_graph(5)`` is (isomorphic to) the DIMACS ``myciel5`` coloring
    instance used in the PACE 2016 dataset and in the paper's CSP case study.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    g = Graph(vertices=[0, 1], edges=[(0, 1)])
    for _ in range(k - 2):
        g = mycielski(g)
    return g


def queen_graph(rows: int, cols: int) -> Graph:
    """The queen graph: squares of a board, adjacent iff a queen move apart.

    ``queen_graph(5, 5)`` et al. appear in the DIMACS coloring benchmarks
    that PACE 2016 sampled.
    """
    g = Graph(vertices=((r, c) for r in range(rows) for c in range(cols)))
    squares = list(g.vertices)
    for (r1, c1), (r2, c2) in combinations(squares, 2):
        if r1 == r2 or c1 == c2 or abs(r1 - r2) == abs(c1 - c2):
            g.add_edge((r1, c1), (r2, c2))
    return g


def hypercube_graph(d: int) -> Graph:
    """The ``d``-dimensional hypercube on ``2**d`` vertices."""
    n = 1 << d
    g = Graph(vertices=range(n))
    for v in range(n):
        for bit in range(d):
            u = v ^ (1 << bit)
            if u > v:
                g.add_edge(v, u)
    return g


def paper_example_graph() -> Graph:
    """The running-example graph of the paper (Figure 1(a)).

    Vertices ``u, v, v', w1, w2, w3``; it has exactly three minimal
    separators ``{w1,w2,w3}``, ``{u,v}`` and ``{v}`` (Example 2.4) and two
    minimal triangulations (Figure 1(b)).
    """
    return Graph(
        edges=[
            ("u", "w1"),
            ("u", "w2"),
            ("u", "w3"),
            ("v", "w1"),
            ("v", "w2"),
            ("v", "w3"),
            ("v", "v'"),
        ]
    )
