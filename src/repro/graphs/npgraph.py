"""Numpy uint64-array bitset kernel: batched whole-array hot operations.

:class:`NumpyBitGraph` extends the pure-python :class:`BitGraph` with a
dense array encoding — vertex sets become rows of ``(n_words,)`` uint64
arrays — and *batched* variants of the enumeration hot operations.  The
scalar operations are inherited unchanged (a ``NumpyBitGraph`` is a
``BitGraph``), so every existing mask-level code path keeps working;
the algorithm layers (:mod:`repro.separators.berry`,
:mod:`repro.pmc.enumerate`, :class:`~repro.core.context.TriangulationContext`)
detect the :attr:`BATCHED` capability and switch their inner loops from
per-candidate python iteration to whole-array bitwise ops.

Why batching is the design (and per-op numpy is not): the python-int
kernel is already word-parallel, so replacing one ``mask | mask`` with
one numpy call only adds call overhead.  The win comes from processing
*thousands of candidate regions at once*: one propagation reaches the
fixpoint for every region in the batch simultaneously, and the
per-candidate predicates (``is_pmc``, minimal-separator filtering, BBC
candidate generation) read their answers off the converged arrays with
a handful of vectorized reductions.

The core primitive is :meth:`NumpyBitGraph._closure`: given ``B`` region
masks, compute for every vertex ``i`` of every region the OR of the
adjacency rows over ``i``'s connected component within the region.  The
state is a ``(B, n+1, S)`` uint64 array (row ``n`` is a zero pad) and
each round is **one** flat ``np.take`` through a per-batch neighbor
index in which out-of-region *sources* are redirected to the pad row,
followed by an OR-reduce — no per-neighbor masking passes.  Because
only sources are redirected (targets are not), a vertex *outside* its
region accumulates the OR of its in-region neighbors' rows, which is
exactly the ``is_pmc`` completability cover — so the cover costs no
extra gather.  When component masks are wanted they are stacked into
the same state array (columns ``w:2w``) and ride the same gather.
Everything readable off the converged array:

* ``nbh[b, i] = closure[b, i] & ~region``  is exactly ``N(C_i)``;
* a component is *full* iff some row has ``nbh == S``;
* distinct components are counted via their minimum-index member
  (``comp[b, i] & below[i] == 0``), no label propagation needed;
* the ``is_pmc`` cover of ``u ∈ Ω`` is row ``u`` itself (see above).

All batched methods take and return python int masks (the common
currency of the mask-level stack) and chunk internally to bound peak
memory.  Everything is exact: the differential harness runs this kernel
against both ``"bitset"`` and the ``"sets"`` oracle.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .bitgraph import BitGraph, VertexIndexer, iter_bits
from .graph import Graph

__all__ = ["NumpyBitGraph"]

_U64 = np.uint64
_ZERO = np.uint64(0)
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Target words (uint64) per closure chunk — bounds peak memory at a few
#: megabytes while keeping each numpy call large enough to amortize
#: dispatch overhead.
_CHUNK_WORDS = 1 << 19

#: Below this many items a batched call falls back to the inherited
#: scalar loop: numpy dispatch overhead beats the vectorization win on
#: tiny batches (early BBC rounds, short prefixes).
_SCALAR_CUTOFF = 48


class NumpyBitGraph(BitGraph):
    """A :class:`BitGraph` with a numpy array mirror and batched ops.

    Invariant: the numpy arrays always reflect :attr:`adj` /
    :attr:`full_mask` (mutators like :meth:`saturate` rebuild them), so
    scalar and batched results agree at all times.
    """

    BATCHED = True

    __slots__ = (
        "n_index",
        "n_words",
        "max_deg",
        "adj_words",
        "bit_words",
        "below_words",
        "notadj_words",
        "full_words",
        "in_full",
        "nbr_idx",
        "nbr_flat",
        "adj_pad",
        "notadj_pad",
        "nbr_pad",
    )

    def __init__(
        self, indexer: VertexIndexer, adj: list[int], full_mask: int
    ) -> None:
        super().__init__(indexer, adj, full_mask)
        self._rebuild_arrays()

    # ------------------------------------------------------------------
    # Construction / mirroring
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: Graph, indexer: VertexIndexer | None = None
    ) -> "NumpyBitGraph":
        base = BitGraph.from_graph(graph, indexer)
        return cls(base.indexer, base.adj, base.full_mask)

    def copy(self) -> "NumpyBitGraph":
        return NumpyBitGraph(self.indexer, list(self.adj), self.full_mask)

    def induced(self, mask: int) -> "NumpyBitGraph":
        return NumpyBitGraph(
            self.indexer,
            [a & mask if mask >> i & 1 else 0 for i, a in enumerate(self.adj)],
            mask & self.full_mask,
        )

    def saturate(self, mask: int) -> None:
        super().saturate(mask)
        self._rebuild_arrays()

    def _rebuild_arrays(self) -> None:
        n = len(self.indexer)
        w = max(1, (n + 63) // 64)
        self.n_index = n
        self.n_words = w
        adj = self.adj
        self.adj_words = self._to_words(adj) if n else np.zeros((0, w), _U64)
        self.bit_words = (
            self._pack(1 << i for i in range(n))
            if n
            else np.zeros((0, w), _U64)
        )
        self.below_words = (
            self._pack((1 << i) - 1 for i in range(n))
            if n
            else np.zeros((0, w), _U64)
        )
        self.notadj_words = ~(self.adj_words | self.bit_words)
        self.full_words = self._pack([self.full_mask])[0]
        self.in_full = (
            (self.bit_words & self.full_words[None, :]) != 0
        ).any(axis=1)
        degrees = [a.bit_count() for a in adj]
        self.max_deg = max(degrees, default=0)
        # Neighbor indices padded with the sentinel row ``n`` (always
        # zero in the gather source), so every gather column is dense.
        idx = np.full((n, max(1, self.max_deg)), n, dtype=np.intp)
        for i, a in enumerate(adj):
            for k, j in enumerate(iter_bits(a)):
                idx[i, k] = j
        self.nbr_idx = idx
        self.nbr_flat = np.ascontiguousarray(idx.reshape(-1))
        # Sentinel-padded variants (row ``n`` zero / self-sentinel) for
        # the compacted gathers of :meth:`is_pmc_restricted_batch`.
        self.adj_pad = np.zeros((n + 1, w), _U64)
        self.adj_pad[:n] = self.adj_words
        self.notadj_pad = np.zeros((n + 1, w), _U64)
        self.notadj_pad[:n] = self.notadj_words
        self.nbr_pad = np.full((n + 1, max(1, self.max_deg)), n, dtype=np.intp)
        self.nbr_pad[:n] = idx

    # ------------------------------------------------------------------
    # Mask <-> word-array conversion
    # ------------------------------------------------------------------
    def _pack(self, masks: Iterable[int]) -> np.ndarray:
        """Python int masks -> ``(B, n_words)`` uint64 rows."""
        w = self.n_words
        if w == 1:
            return np.fromiter(masks, dtype=_U64).reshape(-1, 1)
        nbytes = w * 8
        buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
        out = np.frombuffer(buf, dtype="<u8").reshape(-1, w)
        return out.astype(_U64, copy=False)

    def _to_words(self, masks: Sequence[int]) -> np.ndarray:
        if not len(masks):
            return np.zeros((0, self.n_words), _U64)
        return self._pack(masks)

    def _to_ints(self, rows: np.ndarray) -> list[int]:
        """``(K, n_words)`` uint64 rows -> python int masks."""
        if rows.size == 0:
            return []
        if self.n_words == 1:
            return rows[:, 0].tolist()
        nbytes = self.n_words * 8
        buf = np.ascontiguousarray(rows.astype("<u8", copy=False)).tobytes()
        return [
            int.from_bytes(buf[k : k + nbytes], "little")
            for k in range(0, len(buf), nbytes)
        ]

    def _chunk_size(self) -> int:
        # Dominant per-region footprint: the gather index plus the
        # gathered matrix, both ``n * max_deg`` wide.
        deg = max(1, self.max_deg)
        per_row = max(1, self.n_index * (2 * self.n_words + deg * (2 * self.n_words + 1)))
        return max(16, min(1 << 14, _CHUNK_WORDS // per_row))

    # ------------------------------------------------------------------
    # The core batched primitive
    # ------------------------------------------------------------------
    def _closure(
        self,
        regions: np.ndarray,
        want_comp: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Component closure of ``B`` region masks at once.

        Returns ``(in_region, nbh, comp)`` where ``in_region`` is a
        ``(B, n)`` bool matrix, ``nbh[b, i]`` is ``N(C)`` of the
        component ``C`` of vertex ``i`` inside region ``b`` (zero rows
        for vertices outside the region), and ``comp[b, i]`` is the
        component mask itself (``None`` unless ``want_comp``).  The
        returned arrays are ``(B, n+1, n_words)`` views' bodies with a
        zero pad row retained at index ``n`` so callers can gather
        through :attr:`nbr_idx` without re-padding.
        """
        b = regions.shape[0]
        n, w = self.n_index, self.n_words
        bits = self.bit_words
        deg = max(1, self.max_deg)
        if w == 1:
            in_r = (regions[:, 0, None] & bits[:, 0][None, :]) != 0
        else:
            in_r = (regions[:, None, :] & bits[None, :, :]).any(axis=2)
        # Gather index: neighbor ``j`` of target ``i``, redirected to the
        # zero pad row ``n`` when ``j`` is outside the region.  Targets
        # are *not* redirected: an out-of-region target therefore
        # accumulates the OR of its in-region neighbors' rows — the
        # is_pmc cover — which nothing ever reads back (sources must be
        # in-region), so it cannot pollute the closure.  The index is
        # laid out ``(deg, B, n)`` so each per-neighbor fold below is a
        # contiguous full-array OR instead of a strided reduce.
        in_rp = np.zeros((b, n + 1), dtype=bool)
        in_rp[:, :n] = in_r
        nbr_t = self.nbr_idx.T  # (deg, n)
        s = 2 * w if want_comp else w
        state = np.zeros((b, n + 1, s), _U64)
        state[:, :n, :w] = self.adj_words
        if want_comp:
            state[:, :n, w:] = bits
        # Iterate on a shrinking working set: once no row of a region
        # changes in a round that region is at its fixpoint (the update
        # is monotone and row-local), so it is scattered back into
        # ``state`` and dropped from subsequent rounds.  Batches mix
        # shallow and deep regions; without this every region pays for
        # the deepest one's diameter.
        idx_cur = np.arange(b, dtype=np.intp)
        cur = state
        done = False
        while not done:
            bc = idx_cur.size
            # Per-neighbor gather index for the current working set,
            # transposed so ``gview[k]`` is contiguous.
            src_ok = (in_rp[idx_cur] if cur is not state else in_rp)[:, nbr_t]
            gidx = np.where(src_ok, nbr_t[None, :, :], n)
            gidx += (np.arange(bc, dtype=np.intp) * (n + 1))[:, None, None]
            gflat = np.ascontiguousarray(gidx.transpose(1, 0, 2)).reshape(-1)
            if s == 1:
                # 1-D scalar gather — markedly faster than row gather.
                flat = cur.reshape(-1)
                gathered = np.empty(deg * bc * n, _U64)
                gview = gathered.reshape(deg, bc, n, 1)
                take_out = gathered
            else:
                flat = cur.reshape(bc * (n + 1), s)
                gathered = np.empty((deg * bc * n, s), _U64)
                gview = gathered.reshape(deg, bc, n, s)
                take_out = gathered
            body = cur[:, :n]
            contrib = np.empty((bc, n, s), _U64)
            done = True
            for _ in range(n + 2):
                np.take(flat, gflat, axis=0, out=take_out)
                np.copyto(contrib, body)
                for k in range(deg):
                    np.bitwise_or(contrib, gview[k], out=contrib)
                changed = (contrib != body).any(axis=(1, 2))
                live = int(changed.sum())
                if live == 0:
                    break
                body[...] = contrib
                if live * 2 <= bc and bc > 64:
                    # Half the working set is at its fixpoint: scatter
                    # back and keep iterating only the live regions.
                    if cur is not state:
                        state[idx_cur] = cur
                    alive = np.flatnonzero(changed)
                    idx_cur = idx_cur[alive]
                    cur = np.ascontiguousarray(cur[alive])
                    done = False
                    break
            if done and cur is not state:
                state[idx_cur] = cur
        # The frontier words now hold, per in-region vertex, the OR of
        # adjacency rows over its whole component; subtracting the
        # region leaves N(C).  (Out-of-region rows hold their own
        # adjacency OR the cover — the subtraction is harmless there:
        # is_pmc ``need`` sets never intersect the region.)
        f = state[:, :, :w]
        c = state[:, :, w:] if want_comp else None
        np.bitwise_and(f[:, :n], ~regions[:, None, :], out=f[:, :n])
        return in_r, f, c

    # ------------------------------------------------------------------
    # Batched queries (python-int mask boundary)
    # ------------------------------------------------------------------
    def components_with_neighborhoods_batch(
        self, regions: Sequence[int]
    ) -> list[list[tuple[int, int]]]:
        """Batched :meth:`components_with_neighborhoods`.

        One list of ``(component, N(component))`` pairs per input
        region, each list ascending by lowest member index — identical
        to the scalar method's output order.
        """
        if len(regions) < _SCALAR_CUTOFF:
            return [
                self.components_with_neighborhoods(r) for r in regions
            ]
        out: list[list[tuple[int, int]]] = [[] for _ in regions]
        chunk = self._chunk_size()
        below = self.below_words
        for start in range(0, len(regions), chunk):
            part = list(regions[start : start + chunk])
            words = self._to_words(part)
            in_r, f, c = self._closure(words, want_comp=True)
            comp = c[:, : self.n_index]
            nbh = f[:, : self.n_index]
            # A component is reported once, at its minimum-index member.
            is_root = ((comp & below[None, :, :]) == 0).all(axis=2) & in_r
            rows = np.argwhere(is_root)  # sorted by (b, i): ascending roots
            comp_ints = self._to_ints(comp[rows[:, 0], rows[:, 1]])
            nbh_ints = self._to_ints(nbh[rows[:, 0], rows[:, 1]])
            for (bi, _i), cm, nm in zip(rows, comp_ints, nbh_ints):
                out[start + int(bi)].append((cm, nm))
        return out

    def separator_candidates_batch(self, regions: Sequence[int]) -> list[int]:
        """Distinct component neighborhoods over a batch of regions.

        The BBC generation step: every ``N(C)`` for ``C`` a component of
        some region.  Returned sorted ascending, deduplicated across the
        whole batch, zero excluded.
        """
        if len(regions) < _SCALAR_CUTOFF:
            seen: set[int] = set()
            for r in regions:
                for _comp, nbh in self.components_with_neighborhoods(r):
                    seen.add(nbh)
            seen.discard(0)
            return sorted(seen)
        found: set[int] = set()
        chunk = self._chunk_size()
        for start in range(0, len(regions), chunk):
            part = list(regions[start : start + chunk])
            words = self._to_words(part)
            in_r, f, _ = self._closure(words, want_comp=False)
            rows = f[:, : self.n_index][in_r]
            if rows.size == 0:
                continue
            if self.n_words == 1:
                uniq = np.unique(rows[:, 0])[:, None]
            else:
                uniq = np.unique(rows, axis=0)
            found.update(self._to_ints(uniq))
        found.discard(0)
        return sorted(found)

    def _is_minimal_separator_scalar(self, cand: int) -> bool:
        if not cand:
            return False
        count = 0
        for _comp, nbh in self.components_with_neighborhoods(
            self.full_mask & ~cand
        ):
            if nbh == cand:
                count += 1
                if count >= 2:
                    return True
        return False

    def is_minimal_separator_batch(self, cands: Sequence[int]) -> list[bool]:
        """Batched full-component minimality test (≥ 2 full components)."""
        if len(cands) < _SCALAR_CUTOFF:
            return [self._is_minimal_separator_scalar(c) for c in cands]
        out: list[bool] = []
        chunk = self._chunk_size()
        below = self.below_words
        for start in range(0, len(cands), chunk):
            part = list(cands[start : start + chunk])
            words = self._to_words(part)
            regions = self.full_words[None, :] & ~words
            in_r, f, c = self._closure(regions, want_comp=True)
            nbh = f[:, : self.n_index]
            comp = c[:, : self.n_index]
            full_here = (nbh == words[:, None, :]).all(axis=2) & in_r
            is_root = ((comp & below[None, :, :]) == 0).all(axis=2)
            count = (full_here & is_root).sum(axis=1)
            nonzero = (words != 0).any(axis=1)
            out.extend((nonzero & (count >= 2)).tolist())
        return out

    def is_pmc_batch(self, omegas: Sequence[int]) -> list[bool]:
        """Batched :func:`repro.pmc.predicate.is_pmc_mask`.

        Condition 1 (no full component) reads the converged ``nbh``
        rows.  Condition 2 (completability) is free: for ``u ∈ Ω`` the
        closure row of ``u`` itself already holds ``adj[u] | cover[u]``
        (out-of-region targets gather their in-region neighbors' rows —
        see :meth:`_closure`), and ``need[u]`` is disjoint from
        ``adj[u]``, so the candidate fails iff ``need & ~row != 0``.
        """
        if len(omegas) < _SCALAR_CUTOFF:
            from ..pmc.predicate import is_pmc_mask

            return [is_pmc_mask(self, om) for om in omegas]
        out: list[bool] = []
        chunk = self._chunk_size()
        n = self.n_index
        for start in range(0, len(omegas), chunk):
            part = list(omegas[start : start + chunk])
            words = self._to_words(part)
            regions = self.full_words[None, :] & ~words
            in_r, f, _ = self._closure(regions, want_comp=False)
            nbh = f[:, :n]
            if self.n_words == 1:
                eq_s = nbh[:, :, 0] == words[:, 0, None]
            else:
                eq_s = (nbh == words[:, None, :]).all(axis=2)
            fail1 = (eq_s & in_r).any(axis=1)
            in_om = ~in_r & self.in_full[None, :]
            ommask = np.where(in_om[:, :, None], _ONES, _ZERO)
            need = words[:, None, :] & self.notadj_words[None, :, :] & ommask
            fail2 = ((need & ~nbh) != 0).any(axis=(1, 2))
            nonzero = (words != 0).any(axis=1)
            out.extend((nonzero & ~fail1 & ~fail2).tolist())
        return out

    def is_pmc_restricted_batch(
        self,
        omegas: Sequence[int],
        regions: Sequence[int],
        static: np.ndarray,
    ) -> list[bool]:
        """:meth:`is_pmc_batch` with a known separator decomposition.

        For ``Ω = S ∪ X`` with ``S`` a minimal separator, ``C`` the
        component of ``G \\ S`` containing ``X`` and ``X ≠ ∅``, the
        components of ``G \\ Ω`` are the components of ``C \\ X`` plus
        the *other* components of ``G \\ S`` — and the latter are never
        full (their neighborhoods sit inside ``S ⊊ Ω``).  So condition 1
        only needs a closure over the region ``C \\ X`` (passed as
        ``regions``), and the other components' contribution to the
        condition-2 cover is the precomputed per-pair ``static`` rows
        (``(B, n, n_words)``; non-zero only on rows of ``S``).

        Unlike the full-graph closure this one is *compacted*: the state
        only carries one row per **region** vertex (slot-mapped), so a
        round costs ``O(B · |C \\ X| · deg)`` instead of
        ``O(B · n · deg)``, and the condition-2 covers are read with a
        single post-convergence gather over the Ω rows instead of riding
        every round.  Candidates are processed in ascending region-size
        order so each chunk is homogeneous (the slot count is a chunk
        maximum); results are scattered back to input order.
        """
        if len(omegas) < _SCALAR_CUTOFF:
            from ..pmc.predicate import is_pmc_mask

            return [is_pmc_mask(self, om) for om in omegas]
        n, w = self.n_index, self.n_words
        deg = max(1, self.max_deg)
        words_all = self._to_words(list(omegas))
        regw_all = self._to_words(list(regions))
        counts = np.bitwise_count(regw_all).sum(axis=1, dtype=np.int64)
        order = np.argsort(counts, kind="stable")
        csort = counts[order]
        result = np.zeros(len(omegas), dtype=bool)
        # Greedy homogeneous chunking: because candidates are sorted by
        # region size, a chunk's slot count is its *last* member's, so
        # the largest admissible chunk end is a binary search over the
        # monotone product size × max-region.
        limit = max(1, _CHUNK_WORDS // (deg * 3 * w))
        total = len(order)
        start = 0
        while start < total:
            lo, hi = start + 1, min(total, start + (1 << 14))
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if (mid - start) * max(1, int(csort[mid - 1])) <= limit:
                    lo = mid
                else:
                    hi = mid - 1
            stop = lo
            idx = order[start:stop]
            result[idx] = self._is_pmc_restricted_chunk(
                words_all[idx],
                regw_all[idx],
                static[idx],
                int(csort[stop - 1]),
            )
            start = stop
        return result.tolist()

    def _is_pmc_restricted_chunk(
        self,
        words: np.ndarray,
        regw: np.ndarray,
        stat: np.ndarray,
        m: int,
    ) -> np.ndarray:
        """One homogeneous chunk of :meth:`is_pmc_restricted_batch`.

        ``words``/``regw`` are the Ω / region rows, ``stat`` the static
        cover rows, ``m`` the maximum region popcount of the chunk.
        Returns a ``(B,)`` bool array.
        """
        bc = words.shape[0]
        n, w = self.n_index, self.n_words
        bits = self.bit_words
        deg = max(1, self.max_deg)
        if w == 1:
            in_r = (regw[:, 0, None] & bits[:, 0][None, :]) != 0
            in_om = (words[:, 0, None] & bits[:, 0][None, :]) != 0
        else:
            in_r = (regw[:, None, :] & bits[None, :, :]).any(axis=2)
            in_om = (words[:, None, :] & bits[None, :, :]).any(axis=2)
        # Slot maps: region vertices to compacted slots [0, m), all
        # other vertices (and the vertex sentinel ``n``) to pad slot m.
        slot = np.cumsum(in_r, axis=1, dtype=np.intp)
        slot -= in_r
        bidx, iidx = np.nonzero(in_r)
        vslot = slot[bidx, iidx]
        vert = np.full((bc, max(m, 1)), n, dtype=np.intp)
        vert[bidx, vslot] = iidx
        slot_pad = np.full((bc, n + 1), m, dtype=np.intp)
        slot_pad[bidx, iidx] = vslot
        slot_flat = slot_pad.reshape(-1)
        off_n1 = (np.arange(bc, dtype=np.intp) * (n + 1))[:, None, None]
        state = np.zeros((bc, m + 1, w), _U64)
        if m:
            state[:, :m] = self.adj_pad.take(vert.reshape(-1), axis=0).reshape(
                bc, m, w
            )
            # Per-slot gather index: neighbor slots, pad for non-region
            # neighbors and sentinel slots; laid out (deg, bc, m) so each
            # fold below is contiguous.
            nbrs = self.nbr_pad.take(vert.reshape(-1), axis=0).reshape(
                bc, m, deg
            )
            gslot = slot_flat.take((nbrs + off_n1).reshape(-1)).reshape(
                bc, m, deg
            )
            gslot = np.ascontiguousarray(gslot.transpose(2, 0, 1))
            idx_cur = np.arange(bc, dtype=np.intp)
            cur = state
            gs = gslot
            done = False
            while not done:
                bcc = idx_cur.size
                gflat = gs + (np.arange(bcc, dtype=np.intp) * (m + 1))[None, :, None]
                gflat = np.ascontiguousarray(gflat).reshape(-1)
                if w == 1:
                    flat = cur.reshape(-1)
                    gathered = np.empty(deg * bcc * m, _U64)
                    gview = gathered.reshape(deg, bcc, m, 1)
                    take_out = gathered
                else:
                    flat = cur.reshape(bcc * (m + 1), w)
                    gathered = np.empty((deg * bcc * m, w), _U64)
                    gview = gathered.reshape(deg, bcc, m, w)
                    take_out = gathered
                body = cur[:, :m]
                contrib = np.empty((bcc, m, w), _U64)
                done = True
                for _ in range(m + 2):
                    np.take(flat, gflat, axis=0, out=take_out)
                    np.copyto(contrib, body)
                    for k in range(deg):
                        np.bitwise_or(contrib, gview[k], out=contrib)
                    changed = (contrib != body).any(axis=(1, 2))
                    live = int(changed.sum())
                    if live == 0:
                        break
                    body[...] = contrib
                    if live * 2 <= bcc and bcc > 64:
                        if cur is not state:
                            state[idx_cur] = cur
                        alive = np.flatnonzero(changed)
                        idx_cur = idx_cur[alive]
                        cur = np.ascontiguousarray(cur[alive])
                        gs = np.ascontiguousarray(gs[:, alive])
                        done = False
                        break
                if done and cur is not state:
                    state[idx_cur] = cur
        # Condition 1: some component of the region has N(D) == Ω.
        # Slot t's converged row ORs the adjacency over its component;
        # subtracting the region leaves N(D).  Sentinel slots hold zero.
        notreg = ~regw[:, None, :]
        if m:
            nbh_r = state[:, :m] & notreg
            valid = vert != n
            if w == 1:
                eq = (nbh_r[:, :, 0] == words[:, 0, None]) & valid
            else:
                eq = (nbh_r == words[:, None, :]).all(axis=2) & valid
            fail1 = eq.any(axis=1)
        else:
            fail1 = np.zeros(bc, dtype=bool)
        # Condition 2 covers, one gather after convergence: for u ∈ Ω,
        # the dynamic part is the OR of converged rows over u's
        # in-region neighbors (hitting exactly the region components
        # whose neighborhood contains u), the static part is the
        # caller's per-pair rows, and adj[u] bits are harmless (need
        # is disjoint from them by construction).
        cnt2 = in_om.sum(axis=1)
        m2 = int(cnt2.max()) if bc else 0
        bidx2, iidx2 = np.nonzero(in_om)
        slot2 = np.cumsum(in_om, axis=1, dtype=np.intp)
        slot2 -= in_om
        vert2 = np.full((bc, max(m2, 1)), n, dtype=np.intp)
        vert2[bidx2, slot2[bidx2, iidx2]] = iidx2
        vert2_flat = vert2.reshape(-1)
        m2c = max(m2, 1)
        cov = np.zeros((bc, m2c, w), _U64)
        if m:
            nbrs2 = self.nbr_pad.take(vert2_flat, axis=0).reshape(
                bc, m2c, deg
            )
            gslot2 = slot_flat.take((nbrs2 + off_n1).reshape(-1)).reshape(
                bc, m2c, deg
            )
            off = (np.arange(bc, dtype=np.intp) * (m + 1))[:, None]
            flat = state.reshape(bc * (m + 1), w)
            for k in range(deg):
                rows = np.take(flat, (gslot2[:, :, k] + off).reshape(-1), axis=0)
                np.bitwise_or(cov, rows.reshape(bc, m2c, w), out=cov)
            cov &= notreg
        # Static rows gathered with the sentinel clipped to a real row:
        # a sentinel slot's ``need`` is zero (``notadj_pad`` row n is
        # zero), so whatever cover it reads is irrelevant.
        vclip = np.minimum(vert2, n - 1) + (np.arange(bc, dtype=np.intp) * n)[:, None]
        statrows = stat.reshape(bc * n, w).take(vclip.reshape(-1), axis=0)
        np.bitwise_or(cov, statrows.reshape(bc, m2c, w), out=cov)
        np.bitwise_or(
            cov,
            self.adj_pad.take(vert2_flat, axis=0).reshape(bc, m2c, w),
            out=cov,
        )
        need = (
            words[:, None, :]
            & self.notadj_pad.take(vert2_flat, axis=0).reshape(bc, m2c, w)
        )
        fail2 = ((need & ~cov) != 0).any(axis=(1, 2))
        nonzero = (words != 0).any(axis=1)
        return nonzero & ~fail1 & ~fail2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = sum(a.bit_count() for a in self.adj) // 2
        return (
            f"NumpyBitGraph(|V|={self.num_vertices()}, |E|={edges}, "
            f"words={self.n_words})"
        )
