"""Hypergraph-based bag costs: (generalized) hypertree width and
fractional hypertree width.

When ``G`` is the primal (Gaifman) graph of a hypergraph — e.g. of a join
query, where hyperedges are relation schemas — the natural bag weight is a
*cover number* (Section 3 of the paper):

* integral: the minimum number of hyperedges covering the bag
  (→ generalized hypertree width as the max over bags);
* fractional: the minimum total weight of a fractional hyperedge cover
  (→ fractional hypertree width, Grohe–Marx).

Both are monotone under bag inclusion, hence yield split-monotone
``width_c`` costs via :class:`~repro.costs.weighted.WeightedWidthCost`.

The integral cover is solved exactly by branch and bound (bags in this
setting are small); the fractional cover by an LP via
:func:`scipy.optimize.linprog`.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from functools import lru_cache

from ..graphs.graph import Graph, Vertex
from .base import Bag, BagCost

Hyperedge = frozenset[Vertex]

__all__ = [
    "Hypergraph",
    "HypertreeWidthCost",
    "FractionalHypertreeWidthCost",
    "minimum_edge_cover_size",
    "fractional_cover_weight",
]


class Hypergraph:
    """A hypergraph with its primal graph.

    Parameters
    ----------
    hyperedges:
        The hyperedges (iterables of vertices).  Vertices are the union.
    """

    def __init__(self, hyperedges: Iterable[Iterable[Vertex]]) -> None:
        self.hyperedges: list[Hyperedge] = [frozenset(e) for e in hyperedges]
        if not all(self.hyperedges):
            raise ValueError("empty hyperedges are not allowed")
        self.vertices: frozenset[Vertex] = frozenset().union(*self.hyperedges) if self.hyperedges else frozenset()

    def primal_graph(self) -> Graph:
        """The Gaifman graph: vertices adjacent iff they share a hyperedge."""
        g = Graph(vertices=self.vertices)
        for e in self.hyperedges:
            g.saturate(e)
        return g

    def covering_edges(self, vertex: Vertex) -> list[Hyperedge]:
        """Hyperedges containing ``vertex``."""
        return [e for e in self.hyperedges if vertex in e]


def minimum_edge_cover_size(hypergraph: Hypergraph, bag: Bag) -> int:
    """The minimum number of hyperedges whose union covers ``bag``.

    Exact branch and bound: pick an uncovered vertex, branch over the
    hyperedges containing it.  Exponential in the worst case but bags in
    decomposition workloads are small.

    Raises
    ------
    ValueError
        If some bag vertex appears in no hyperedge.
    """
    relevant = [e & bag for e in hypergraph.hyperedges if e & bag]
    # Deduplicate and drop dominated (subset) edges.
    relevant = _drop_dominated(relevant)
    uncovered_all = frozenset(bag)
    for v in uncovered_all:
        if not any(v in e for e in relevant):
            raise ValueError(f"bag vertex {v!r} not covered by any hyperedge")

    best = len(relevant) + 1

    def branch(uncovered: frozenset[Vertex], used: int) -> None:
        nonlocal best
        if used >= best:
            return
        if not uncovered:
            best = used
            return
        # Greedy lower bound: each edge covers at most max_cover vertices.
        max_cover = max(len(e & uncovered) for e in relevant)
        if used + (len(uncovered) + max_cover - 1) // max_cover >= best:
            return
        v = next(iter(uncovered))
        for e in relevant:
            if v in e:
                branch(uncovered - e, used + 1)

    branch(uncovered_all, 0)
    return best


def _drop_dominated(edges: list[frozenset[Vertex]]) -> list[frozenset[Vertex]]:
    unique = sorted(set(edges), key=len, reverse=True)
    kept: list[frozenset[Vertex]] = []
    for e in unique:
        if not any(e <= other for other in kept):
            kept.append(e)
    return kept


def fractional_cover_weight(hypergraph: Hypergraph, bag: Bag) -> float:
    """The minimum weight of a fractional hyperedge cover of ``bag``.

    Solves ``min Σ x_e  s.t.  Σ_{e ∋ v} x_e ≥ 1 (v ∈ bag), x ≥ 0`` with
    :func:`scipy.optimize.linprog` (HiGHS).
    """
    from scipy.optimize import linprog

    relevant = _drop_dominated([e & bag for e in hypergraph.hyperedges if e & bag])
    members = sorted(bag, key=repr)
    for v in members:
        if not any(v in e for e in relevant):
            raise ValueError(f"bag vertex {v!r} not covered by any hyperedge")
    # One variable per relevant hyperedge; one >= constraint per vertex.
    n_e = len(relevant)
    c = [1.0] * n_e
    a_ub = []
    b_ub = []
    for v in members:
        a_ub.append([-1.0 if v in e else 0.0 for e in relevant])
        b_ub.append(-1.0)
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * n_e, method="highs")
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise RuntimeError(f"fractional cover LP failed: {result.message}")
    return float(result.fun)


class HypertreeWidthCost(BagCost):
    """Generalized hypertree width as a bag cost: max cover number.

    Values are cached per bag — the DP re-evaluates shared sub-blocks.
    """

    name = "hypertree-width"

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._hypergraph = hypergraph
        self._cover = lru_cache(maxsize=None)(
            lambda bag: minimum_edge_cover_size(self._hypergraph, bag)
        )

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        if not bags:
            return 0.0
        return float(max(self._cover(b) for b in bags))


class FractionalHypertreeWidthCost(BagCost):
    """Fractional hypertree width as a bag cost: max fractional cover."""

    name = "fractional-hypertree-width"

    def __init__(self, hypergraph: Hypergraph) -> None:
        self._hypergraph = hypergraph
        self._cover = lru_cache(maxsize=None)(
            lambda bag: fractional_cover_weight(self._hypergraph, bag)
        )

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        if not bags:
            return 0.0
        return float(max(self._cover(b) for b in bags))
