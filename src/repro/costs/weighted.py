"""Weighted width and fill-in (Furuse and Yamazaki, 2014).

Furuse–Yamazaki generalize Bouchitté–Todinca to costs where every bag ``b``
has a weight ``c(b)`` and every potential edge ``e`` a weight ``c(e)``:

* ``width_c(G, T)`` — the maximum bag weight;
* ``fill-in_c(G, T)`` — the total weight of the saturating fill edges.

Both are split-monotone bag costs (Section 3 of the paper).  Vertex-weighted
width — ``c(b) = Σ_{v∈b} w(v)`` or ``Π_{v∈b} dom(v)`` — is the common
instantiation for probabilistic inference, where bag state-space size
depends on variable domains.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Collection, Mapping

from ..graphs.graph import Graph, Vertex
from .base import Bag, BagCost

__all__ = ["WeightedWidthCost", "WeightedFillCost", "vertex_weight_bag_cost"]


def vertex_weight_bag_cost(
    weights: Mapping[Vertex, float], mode: str = "sum"
) -> Callable[[Bag], float]:
    """A bag-weight function from per-vertex weights.

    ``mode="sum"`` gives ``c(b) = Σ w(v)``; ``mode="product"`` gives
    ``c(b) = Π w(v)`` (use log-domain weights if overflow is a concern);
    ``mode="log-product"`` gives ``c(b) = Σ log w(v)``.
    """
    if mode == "sum":
        return lambda bag: sum(weights[v] for v in bag)
    if mode == "product":
        return lambda bag: math.prod(weights[v] for v in bag)
    if mode == "log-product":
        return lambda bag: sum(math.log(weights[v]) for v in bag)
    raise ValueError(f"unknown mode {mode!r}")


class WeightedWidthCost(BagCost):
    """``width_c``: the maximum of ``bag_weight`` over the bags.

    ``bag_weight`` must be *monotone under bag inclusion* (``b ⊆ b'``
    implies ``c(b) ≤ c(b')``) for split monotonicity to hold; all the
    standard instantiations (cardinality, positive vertex-weight sums and
    products, hyperedge cover numbers) are.
    """

    name = "weighted-width"

    def __init__(self, bag_weight: Callable[[Bag], float]) -> None:
        self._bag_weight = bag_weight

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        if not bags:
            return 0.0
        return float(max(self._bag_weight(b) for b in bags))


class WeightedFillCost(BagCost):
    """``fill-in_c``: total weight of the distinct fill edges.

    ``edge_weight(u, v)`` must be symmetric and non-negative.
    """

    name = "weighted-fill"

    def __init__(self, edge_weight: Callable[[Vertex, Vertex], float]) -> None:
        self._edge_weight = edge_weight

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        filled: set[frozenset[Vertex]] = set()
        total = 0.0
        for bag in bags:
            members = list(bag)
            for i, u in enumerate(members):
                adj_u = graph.adj(u)
                for v in members[i + 1 :]:
                    if v not in adj_u:
                        key = frozenset((u, v))
                        if key not in filled:
                            filled.add(key)
                            total += self._edge_weight(u, v)
        return total
