"""Constraint compilation ``κ[I,X]`` (Section 6.1 of the paper).

Lawler–Murty partitions the answer space with *inclusion* constraints ``I``
and *exclusion* constraints ``X``, both sets of minimal separators of the
input graph.  Rather than modifying the optimizer, the paper compiles the
constraints into the cost function:

    κ[I,X](G, T) = κ(G, T)   if H_T |= [I, X]
                   ∞          otherwise

where ``H_T`` is the graph obtained from ``G`` by saturating every bag of
``T``, and ``H_T |= [I, X]`` means: for every ``S ∈ I`` with
``S ⊆ V(H_T)``, ``S`` is a clique of ``H_T``; and for every ``S ∈ X`` with
``S ⊆ V(H_T)``, ``S`` is *not* a clique of ``H_T``.  The vertex-containment
guard is what makes the definition meaningful on the partial triangulations
(block realizations) the DP works with.

Lemma 6.2: if ``κ`` is a split-monotone bag cost then so is ``κ[I,X]``,
and it stays polynomial-time computable.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from ..graphs.graph import Graph, Vertex
from .base import Bag, BagCost, INFEASIBLE

Separator = frozenset[Vertex]

__all__ = ["ConstrainedCost", "is_clique_after_saturation", "satisfies_constraints"]


def is_clique_after_saturation(
    graph: Graph, bags: Collection[Bag], candidate: Separator
) -> bool:
    """Whether ``candidate`` is a clique of ``H_T`` (bags saturated in ``G``).

    A pair is adjacent in ``H_T`` iff it is an edge of ``G`` or co-located
    in some bag, so no graph is materialized.
    """
    members = list(candidate)
    if len(members) <= 1:
        return True
    # Fast path: a single bag containing the whole candidate.
    if any(candidate <= bag for bag in bags):
        return True
    for i, u in enumerate(members):
        adj_u = graph.adj(u)
        for v in members[i + 1 :]:
            if v in adj_u:
                continue
            if not any(u in bag and v in bag for bag in bags):
                return False
    return True


def satisfies_constraints(
    graph: Graph,
    bags: Collection[Bag],
    include: Iterable[Separator],
    exclude: Iterable[Separator],
) -> bool:
    """``H_T |= [I, X]`` per the guarded semantics above.

    ``graph`` must be the (sub)graph actually decomposed by ``bags``; its
    vertex set is ``V(H_T)``.
    """
    vertex_set = graph.vertex_set()
    for s in include:
        if s <= vertex_set and not is_clique_after_saturation(graph, bags, s):
            return False
    for s in exclude:
        if s <= vertex_set and is_clique_after_saturation(graph, bags, s):
            return False
    return True


class ConstrainedCost(BagCost):
    """``κ[I,X]``: ``base`` where the constraints hold, ``∞`` elsewhere.

    Constraint checks are the hot path of the ranked enumerator (every
    block/PMC candidate of every Lawler–Murty child optimization runs
    them), so the evaluator pre-sorts constraints by size and relies on
    the single-bag fast path of :func:`is_clique_after_saturation`.
    """

    def __init__(
        self,
        base: BagCost,
        include: Iterable[Separator] = (),
        exclude: Iterable[Separator] = (),
    ) -> None:
        self._base = base
        self.include: frozenset[Separator] = frozenset(frozenset(s) for s in include)
        self.exclude: frozenset[Separator] = frozenset(frozenset(s) for s in exclude)
        overlap = self.include & self.exclude
        if overlap:
            raise ValueError(f"separators both included and excluded: {overlap!r}")
        self.name = f"{base.name}[I={len(self.include)},X={len(self.exclude)}]"
        # Small constraints are cheapest to refute/verify; check them first.
        self._include_sorted = sorted(self.include, key=len)
        self._exclude_sorted = sorted(self.exclude, key=len)
        # Per-separator missing pairs (w.r.t. the base graph's adjacency;
        # identical inside any induced region containing the separator) and
        # per-region applicable-constraint lists, both filled lazily.  The
        # region cache is keyed by object identity: the block DP hands out
        # context-cached subgraphs, so identities are stable.
        self._missing: dict[Separator, tuple[tuple[object, object], ...]] = {}
        self._by_region: dict[int, tuple[list[Separator], list[Separator]]] = {}

    @property
    def base(self) -> BagCost:
        """The unconstrained cost function."""
        return self._base

    def _missing_pairs(
        self, graph: Graph, s: Separator
    ) -> tuple[tuple[object, object], ...]:
        cached = self._missing.get(s)
        if cached is None:
            cached = tuple(graph.missing_edges(s))
            self._missing[s] = cached
        return cached

    def _applicable(
        self, graph: Graph
    ) -> tuple[list[Separator], list[Separator]]:
        cached = self._by_region.get(id(graph))
        if cached is None:
            include = [
                s for s in self._include_sorted if all(v in graph for v in s)
            ]
            exclude = [
                s for s in self._exclude_sorted if all(v in graph for v in s)
            ]
            cached = (include, exclude)
            self._by_region[id(graph)] = cached
        return cached

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        include, exclude = self._applicable(graph)
        for s in include:
            if not self._covered(graph, bags, s):
                return INFEASIBLE
        for s in exclude:
            if self._covered(graph, bags, s):
                return INFEASIBLE
        return self._base.evaluate(graph, bags)

    def _covered(self, graph: Graph, bags: Collection[Bag], s: Separator) -> bool:
        """Whether ``s`` is a clique of ``H_T`` (precomputed missing pairs)."""
        missing = self._missing_pairs(graph, s)
        if not missing:
            return True
        size = len(s)
        for bag in bags:
            if len(bag) >= size and s <= bag:
                return True
        for u, v in missing:
            if not any(u in bag and v in bag for bag in bags):
                return False
        return True
