"""Split-monotone bag cost functions (Section 3 of the paper)."""

from .base import Bag, BagCost, INFEASIBLE
from .classic import (
    FillInCost,
    LexWidthFillCost,
    SumExpBagCost,
    WidthCost,
    count_fill_edges,
)
from .weighted import WeightedFillCost, WeightedWidthCost, vertex_weight_bag_cost
from .hypergraph import (
    FractionalHypertreeWidthCost,
    Hypergraph,
    HypertreeWidthCost,
    fractional_cover_weight,
    minimum_edge_cover_size,
)
from .constrained import (
    ConstrainedCost,
    is_clique_after_saturation,
    satisfies_constraints,
)
from .registry import available_costs, make_cost, register_cost, resolve_cost

__all__ = [
    "Bag",
    "BagCost",
    "INFEASIBLE",
    "WidthCost",
    "FillInCost",
    "LexWidthFillCost",
    "SumExpBagCost",
    "count_fill_edges",
    "WeightedWidthCost",
    "WeightedFillCost",
    "vertex_weight_bag_cost",
    "Hypergraph",
    "HypertreeWidthCost",
    "FractionalHypertreeWidthCost",
    "minimum_edge_cover_size",
    "fractional_cover_weight",
    "ConstrainedCost",
    "is_clique_after_saturation",
    "satisfies_constraints",
    "available_costs",
    "make_cost",
    "register_cost",
    "resolve_cost",
]
