"""The split-monotone bag cost interface (Section 3 of the paper).

A *cost function over tree decompositions* maps ``(G, T)`` to a number.
The paper restricts attention to costs that are

1. **invariant under bag equivalence** — they depend only on ``bags(T)``,
   hence the interface below takes the bag set, not a tree; and
2. **split monotone** — cutting a decomposition along an edge and replacing
   one side with a no-more-expensive alternative never increases the cost
   (Definition 3.2).

Split monotonicity is a *semantic contract* the implementations promise;
it cannot be checked locally, but the test suite probes it empirically on
random instances (see ``tests/costs/test_split_monotone.py``).

Because bag costs are invariant under bag equivalence, evaluating a cost on
a triangulation ``H`` means evaluating it on ``MaxClq(H)`` — any clique
tree gives the same value.  :meth:`BagCost.of_triangulation` does this.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Collection

from ..graphs.graph import Graph, Vertex
from ..graphs.chordal import maximal_cliques_chordal

Bag = frozenset[Vertex]

INFEASIBLE = math.inf
"""Cost of a forbidden decomposition (constraint violations, width bounds)."""

__all__ = ["Bag", "BagCost", "INFEASIBLE"]


class BagCost(ABC):
    """A split-monotone, bag-equivalence-invariant cost function.

    Subclasses implement :meth:`evaluate`; all other conveniences derive
    from it.  Implementations must be pure (no dependence on evaluation
    order) — the block DP calls them on partial triangulations of block
    realizations in an order of its choosing.
    """

    #: Human-readable identifier used in benchmark reports.
    name: str = "cost"

    #: Declared by subclasses; the enumeration guarantees of Theorems 4.4
    #: and 4.5 only hold when this is True.
    split_monotone: bool = True

    @abstractmethod
    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        """``κ(G, T)`` for any tree decomposition ``T`` with these bags.

        Parameters
        ----------
        graph:
            The graph being decomposed.  During the block DP this is an
            *induced subgraph* ``G[S ∪ C]`` of the original input, matching
            line 4 of the ``MinTriang`` pseudocode.
        bags:
            The bag set of the decomposition (for minimal triangulations:
            the maximal cliques).
        """

    def of_triangulation(self, graph: Graph, triangulation: Graph) -> float:
        """``κ(G, H)``: the cost of a triangulation via its maximal cliques."""
        return self.evaluate(graph, maximal_cliques_chordal(triangulation))

    def __call__(self, graph: Graph, bags: Collection[Bag]) -> float:
        return self.evaluate(graph, bags)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
