"""Name-based construction of the built-in cost functions.

Benchmarks and examples refer to costs by name (``"width"``, ``"fill"``,
...); this registry maps names to factories.  Factories receive the graph
so graph-dependent costs (like the lexicographic scale) can initialize.
"""

from __future__ import annotations

from collections.abc import Callable

from ..graphs.graph import Graph
from .base import BagCost
from .classic import FillInCost, LexWidthFillCost, SumExpBagCost, WidthCost

__all__ = ["make_cost", "available_costs", "register_cost"]

_FACTORIES: dict[str, Callable[[Graph], BagCost]] = {
    "width": lambda graph: WidthCost(),
    "fill": lambda graph: FillInCost(),
    "lex-width-fill": lambda graph: LexWidthFillCost(graph),
    "sum-exp-bags": lambda graph: SumExpBagCost(),
}


def register_cost(name: str, factory: Callable[[Graph], BagCost]) -> None:
    """Register a custom cost factory under ``name`` (overwrites)."""
    _FACTORIES[name] = factory


def available_costs() -> list[str]:
    """The registered cost names."""
    return sorted(_FACTORIES)


def make_cost(name: str, graph: Graph) -> BagCost:
    """Instantiate the named cost for ``graph``.

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown cost {name!r}; available: {', '.join(available_costs())}"
        ) from None
    return factory(graph)
