"""Name-based construction of the built-in cost functions.

Benchmarks and examples refer to costs by name (``"width"``, ``"fill"``,
...); this registry maps names to factories.  Factories receive the graph
so graph-dependent costs (like the lexicographic scale) can initialize.
"""

from __future__ import annotations

from collections.abc import Callable

from ..graphs.graph import Graph
from .base import BagCost
from .classic import FillInCost, LexWidthFillCost, SumExpBagCost, WidthCost

__all__ = ["make_cost", "resolve_cost", "available_costs", "register_cost"]

_FACTORIES: dict[str, Callable[[Graph], BagCost]] = {
    "width": lambda graph: WidthCost(),
    "fill": lambda graph: FillInCost(),
    "lex-width-fill": lambda graph: LexWidthFillCost(graph),
    "sum-exp-bags": lambda graph: SumExpBagCost(),
}


def register_cost(name: str, factory: Callable[[Graph], BagCost]) -> None:
    """Register a custom cost factory under ``name`` (overwrites)."""
    _FACTORIES[name] = factory


def available_costs() -> list[str]:
    """The registered cost names."""
    return sorted(_FACTORIES)


def make_cost(name: str, graph: Graph) -> BagCost:
    """Instantiate the named cost for ``graph``.

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown cost {name!r}; available: {', '.join(available_costs())}"
        ) from None
    return factory(graph)


def resolve_cost(spec: "str | BagCost", graph: Graph) -> BagCost:
    """Normalize a cost spec — registry name or instance — into a ``BagCost``.

    This is the one place strings become cost objects; the CLI, the bench
    harness and the session API all resolve through it, so a cost
    registered via :func:`register_cost` is immediately usable everywhere
    by name.

    Raises
    ------
    KeyError
        If ``spec`` is an unregistered name.
    TypeError
        If ``spec`` is neither a string nor a :class:`BagCost`.
    """
    if isinstance(spec, BagCost):
        return spec
    if isinstance(spec, str):
        return make_cost(spec, graph)
    raise TypeError(
        "cost spec must be a registry name or a BagCost instance, "
        f"got {type(spec).__name__}"
    )
