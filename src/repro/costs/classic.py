"""The classic split-monotone bag costs: width, fill-in, and combinations.

These are the costs named explicitly in Section 3 of the paper:

* ``width(G, T)`` — largest bag cardinality minus one;
* ``fill-in(G, T)`` — number of edges added when saturating every bag;
* the lexicographic combination ``|E(G)| · width + fill-in``;
* the "sum of exponents of bag cardinalities" cost ``Σ_b 2^|b|``.
"""

from __future__ import annotations

from collections.abc import Collection

from ..graphs.graph import Graph, Vertex
from .base import Bag, BagCost

__all__ = [
    "WidthCost",
    "FillInCost",
    "LexWidthFillCost",
    "SumExpBagCost",
    "count_fill_edges",
]


def count_fill_edges(graph: Graph, bags: Collection[Bag]) -> int:
    """Number of distinct non-edges of ``graph`` covered by some bag.

    This equals ``|E(H_T)| − |E(G[∪bags])|`` where ``H_T`` saturates every
    bag — i.e. the fill-in of the decomposition.  A pair appearing in
    several bags is counted once.
    """
    filled: set[frozenset[Vertex]] = set()
    for bag in bags:
        members = list(bag)
        for i, u in enumerate(members):
            adj_u = graph.adj(u)
            for v in members[i + 1 :]:
                if v not in adj_u:
                    filled.add(frozenset((u, v)))
    return len(filled)


class WidthCost(BagCost):
    """``width(G, T)``: maximal bag cardinality minus one."""

    name = "width"

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        if not bags:
            return -1.0
        return float(max(len(b) for b in bags) - 1)


class FillInCost(BagCost):
    """``fill-in(G, T)``: number of edges required to saturate all bags."""

    name = "fill"

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        return float(count_fill_edges(graph, bags))


class LexWidthFillCost(BagCost):
    """``|E(G)| · width + fill-in``: width first, fill-in as tiebreak.

    This is the paper's example of a composite split-monotone cost
    (Section 3).  The multiplier is taken from the *top-level* graph and
    must dominate any possible fill-in for the ordering to be truly
    lexicographic; the paper uses ``|E(G)|``, which suffices on its
    datasets, and we keep that default while allowing an explicit scale.
    """

    name = "lex-width-fill"

    def __init__(self, graph: Graph, scale: float | None = None) -> None:
        n = graph.num_vertices()
        self._scale = float(scale) if scale is not None else float(graph.num_edges())
        # A safe fallback when the graph is tiny/edgeless.
        if self._scale <= 0:
            self._scale = float(n * n + 1)

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        width = max((len(b) for b in bags), default=0) - 1
        return self._scale * width + count_fill_edges(graph, bags)


class SumExpBagCost(BagCost):
    """``Σ_b base^|b|``: total state-space size over the bags.

    Models the cost of dynamic programming over the decomposition with
    ``base`` states per vertex (e.g. junction-tree inference over binary
    variables with ``base = 2``).  Split monotone because it is a sum of a
    per-bag measure over the bag set.
    """

    name = "sum-exp-bags"

    def __init__(self, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError("base must exceed 1")
        self._base = float(base)

    def evaluate(self, graph: Graph, bags: Collection[Bag]) -> float:
        return float(sum(self._base ** len(b) for b in bags))
