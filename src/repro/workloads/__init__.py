"""Workload generators reproducing the paper's six dataset families."""

from .random_graphs import RandomInstance, figure7_instances, figure8_instances
from .tpch import tpch_instances, tpch_query_graph
from .pgm import (
    moralize,
    grids_instances,
    dbn_instances,
    segmentation_instances,
    promedas_instances,
    csp_instances,
    object_detection_instances,
    image_alignment_instances,
    alchemy_instances,
    pedigree_instances,
    protein_protein_instances,
    protein_folding_instances,
)
from .pace import control_flow_graph, pace100_instances, pace1000_instances
from .registry import DATASETS, dataset, dataset_names

__all__ = [
    "RandomInstance",
    "figure7_instances",
    "figure8_instances",
    "tpch_instances",
    "tpch_query_graph",
    "moralize",
    "grids_instances",
    "dbn_instances",
    "segmentation_instances",
    "promedas_instances",
    "csp_instances",
    "object_detection_instances",
    "image_alignment_instances",
    "alchemy_instances",
    "pedigree_instances",
    "protein_protein_instances",
    "protein_folding_instances",
    "control_flow_graph",
    "pace100_instances",
    "pace1000_instances",
    "DATASETS",
    "dataset",
    "dataset_names",
]
