"""PACE-2016-like treewidth-competition workloads.

The PACE 2016 instances sample three public sources: *named graphs*,
*control-flow graphs* of real programs, and *DIMACS graph-coloring*
instances, split into a 100-second and a 1000-second track.  Without
network access we generate the same three categories: classic named
graphs from our generator library, structured random control-flow graphs
produced by a statement-grammar sampler, and coloring-style instances
(queen boards, Mycielski graphs, random ``G(n, m)``).

The 100s track uses smaller instances (mostly tractable at reproduction
scale), the 1000s track larger ones — matching the Figure 5 split where
``Pace2016-100s`` is the biggest mostly-green dataset and
``Pace2016-1000s`` has a handful of entries.
"""

from __future__ import annotations

import random

from ..graphs.generators import (
    complete_bipartite_graph,
    gnm_random,
    grid_graph,
    hypercube_graph,
    mycielski_graph,
    petersen_graph,
    queen_graph,
)
from ..graphs.graph import Graph

__all__ = ["control_flow_graph", "pace100_instances", "pace1000_instances"]


def control_flow_graph(size: int, seed: int = 0) -> Graph:
    """A structured random control-flow graph (undirected view).

    Samples a program from the grammar ``stmt := basic | seq(stmt, stmt) |
    if(stmt, stmt) | while(stmt)`` until roughly ``size`` basic blocks
    exist, then connects entry/exit blocks as a CFG would.  Real CFGs have
    treewidth ≤ 7-ish; these do too, keeping the family tractable like the
    PACE control-flow instances.
    """
    rng = random.Random(seed)
    g = Graph()
    counter = 0

    def new_block() -> int:
        nonlocal counter
        counter += 1
        g.add_vertex(counter)
        return counter

    def build(budget: int) -> tuple[int, int]:
        """Build a statement with ~budget blocks; return (entry, exit)."""
        if budget <= 1:
            b = new_block()
            return b, b
        choice = rng.random()
        if choice < 0.4:  # sequence
            left = build(budget // 2)
            right = build(budget - budget // 2)
            g.add_edge(left[1], right[0])
            return left[0], right[1]
        if choice < 0.75:  # if-then-else
            head = new_block()
            join = new_block()
            then_branch = build(max(1, (budget - 2) // 2))
            else_branch = build(max(1, (budget - 2) // 2))
            g.add_edge(head, then_branch[0])
            g.add_edge(head, else_branch[0])
            g.add_edge(then_branch[1], join)
            g.add_edge(else_branch[1], join)
            return head, join
        # while loop
        head = new_block()
        body = build(max(1, budget - 1))
        g.add_edge(head, body[0])
        if body[1] != head:
            g.add_edge(body[1], head)
        return head, head

    build(size)
    return g


def pace100_instances(seed: int = 53) -> list[tuple[str, Graph]]:
    """The 100-second-track stand-ins (small named/CFG/coloring graphs)."""
    rng = random.Random(seed)
    out: list[tuple[str, Graph]] = [
        ("pace100-petersen", petersen_graph()),
        ("pace100-myciel4", mycielski_graph(4)),
        ("pace100-queen5x5", queen_graph(5, 5)),
        ("pace100-hypercube3", hypercube_graph(3)),
        ("pace100-grid4x4", grid_graph(4, 4)),
        ("pace100-k44", complete_bipartite_graph(4, 4)),
    ]
    for i in range(4):
        out.append(
            (f"pace100-cfg-{i}", control_flow_graph(rng.randint(12, 20), seed=seed + i))
        )
    for i in range(3):
        n = rng.randint(12, 16)
        m = rng.randint(n + 4, 2 * n)
        out.append((f"pace100-gnm-{i}", gnm_random(n, m, seed=seed + 100 + i)))
    return out


def pace1000_instances(seed: int = 59) -> list[tuple[str, Graph]]:
    """The 1000-second-track stand-ins (a few larger instances)."""
    return [
        ("pace1000-myciel5", mycielski_graph(5)),
        ("pace1000-queen6x6", queen_graph(6, 6)),
        ("pace1000-hypercube4", hypercube_graph(4)),
    ]
