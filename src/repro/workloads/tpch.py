"""Gaifman graphs of the 22 TPC-H benchmark queries.

The paper evaluates on "Gaifman graphs of conjunctive queries translated
from the TPC-H benchmark" (following Carmeli et al.).  A query's Gaifman
(primal) graph has one vertex per relation atom and an edge between atoms
that share a variable — i.e. between relations connected by a join
predicate (including via selection on a shared key).

The TPC-H query text is public; the graphs below are hand-encoded from the
equi-join structure of each query's main FROM/WHERE block (correlated
subqueries over the same relations re-use the outer atom's vertex, as a
conjunctive-query translation would after decorrelation).  These graphs
are tiny (≤ 8 atoms); the paper notes enumerating all of their minimal
triangulations takes seconds, and the same holds here — they appear in the
Figure 5 tractability study, not in Table 2.

Relation-name abbreviations: L=lineitem, O=orders, C=customer, P=part,
S=supplier, PS=partsupp, N=nation, R=region, N2/S2/L2/L3=additional atoms
of the same relation.
"""

from __future__ import annotations

from ..graphs.graph import Graph

__all__ = ["tpch_query_graph", "tpch_instances", "TPCH_JOINS"]

#: query number -> list of join edges between relation atoms.
TPCH_JOINS: dict[int, list[tuple[str, str]]] = {
    # Q1: pricing summary — lineitem only.
    1: [],
    # Q2: minimum cost supplier.
    2: [
        ("P", "PS"),
        ("S", "PS"),
        ("S", "N"),
        ("N", "R"),
    ],
    # Q3: shipping priority.
    3: [("C", "O"), ("O", "L")],
    # Q4: order priority check (EXISTS subquery joins orders-lineitem).
    4: [("O", "L")],
    # Q5: local supplier volume; c_nationkey = s_nationkey closes a triangle.
    5: [
        ("C", "O"),
        ("O", "L"),
        ("L", "S"),
        ("S", "N"),
        ("C", "N"),
        ("C", "S"),
        ("N", "R"),
    ],
    # Q6: forecasting revenue change — lineitem only.
    6: [],
    # Q7: volume shipping; two nation atoms.
    7: [
        ("S", "L"),
        ("O", "L"),
        ("C", "O"),
        ("S", "N"),
        ("C", "N2"),
    ],
    # Q8: national market share; two nation atoms.
    8: [
        ("P", "L"),
        ("S", "L"),
        ("L", "O"),
        ("O", "C"),
        ("C", "N"),
        ("N", "R"),
        ("S", "N2"),
    ],
    # Q9: product type profit measure.
    9: [
        ("P", "L"),
        ("S", "L"),
        ("L", "PS"),
        ("PS", "P"),
        ("PS", "S"),
        ("O", "L"),
        ("S", "N"),
    ],
    # Q10: returned item reporting.
    10: [("C", "O"), ("O", "L"), ("C", "N")],
    # Q11: important stock identification.
    11: [("PS", "S"), ("S", "N")],
    # Q12: shipping modes and order priority.
    12: [("O", "L")],
    # Q13: customer distribution (left join).
    13: [("C", "O")],
    # Q14: promotion effect.
    14: [("L", "P")],
    # Q15: top supplier (view over lineitem).
    15: [("S", "L")],
    # Q16: parts/supplier relationship.
    16: [("PS", "P"), ("PS", "S")],
    # Q17: small-quantity-order revenue; correlated lineitem atom.
    17: [("L", "P"), ("L2", "P")],
    # Q18: large volume customer; lineitem appears in IN-subquery too.
    18: [("C", "O"), ("O", "L"), ("O", "L2")],
    # Q19: discounted revenue.
    19: [("L", "P")],
    # Q20: potential part promotion.
    20: [("S", "N"), ("PS", "S"), ("PS", "P"), ("PS", "L"), ("L", "P")],
    # Q21: suppliers who kept orders waiting; three lineitem atoms.
    21: [
        ("S", "L"),
        ("O", "L"),
        ("S", "N"),
        ("L", "L2"),
        ("L", "L3"),
        ("O", "L2"),
        ("O", "L3"),
    ],
    # Q22: global sales opportunity (customer anti-join orders).
    22: [("C", "O")],
}

#: atoms used by queries whose graph has isolated or single vertices.
_SINGLE_ATOMS: dict[int, list[str]] = {1: ["L"], 6: ["L"]}


def tpch_query_graph(query: int) -> Graph:
    """The Gaifman graph of TPC-H query ``query`` (1-22).

    Raises
    ------
    KeyError
        If ``query`` is not in 1..22.
    """
    joins = TPCH_JOINS[query]
    vertices = _SINGLE_ATOMS.get(query, [])
    return Graph(vertices=vertices, edges=joins)


def tpch_instances() -> list[tuple[str, Graph]]:
    """All 22 query graphs as ``(name, graph)`` pairs."""
    return [(f"tpch-q{q}", tpch_query_graph(q)) for q in sorted(TPCH_JOINS)]
