"""Erdős–Rényi workloads for Figures 7 and 8.

The paper samples ``G(n, p)`` with ``n ∈ {20, 30, 50, 70}`` and
``p ∈ {1/n, …, n/n}`` (three draws per point) for the separator-count
study (Figure 7), and ``n ∈ {20, 50}``, ``p ∈ {0.05, …, 0.8}`` for the
enumeration comparison (Figure 8).  Our scaled defaults keep the same
sweep shapes at sizes a pure-Python substrate can sweep in minutes; the
paper-scale parameters remain available through the arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.generators import erdos_renyi
from ..graphs.graph import Graph

__all__ = ["RandomInstance", "figure7_instances", "figure8_instances"]


@dataclass(frozen=True)
class RandomInstance:
    """One sampled random graph with its sweep coordinates."""

    name: str
    n: int
    p: float
    draw: int
    graph: Graph


def figure7_instances(
    sizes: tuple[int, ...] = (12, 16, 20, 24),
    draws: int = 3,
    seed_base: int = 70,
) -> list[RandomInstance]:
    """The Figure 7 sweep: for each ``n``, ``p = k/n`` for ``k = 1..n``.

    Paper scale: ``sizes=(20, 30, 50, 70)``.
    """
    out: list[RandomInstance] = []
    for n in sizes:
        for k in range(1, n + 1):
            p = k / n
            for draw in range(draws):
                seed = seed_base + 10_000 * n + 100 * k + draw
                out.append(
                    RandomInstance(
                        name=f"gnp-n{n}-p{p:.3f}-{draw}",
                        n=n,
                        p=p,
                        draw=draw,
                        graph=erdos_renyi(n, p, seed=seed),
                    )
                )
    return out


def figure8_instances(
    sizes: tuple[int, ...] = (14, 18),
    probabilities: tuple[float, ...] = (
        0.05,
        0.1,
        0.15,
        0.2,
        0.25,
        0.3,
        0.35,
        0.4,
        0.45,
        0.5,
        0.55,
        0.6,
        0.65,
        0.7,
        0.75,
        0.8,
    ),
    draws: int = 3,
    seed_base: int = 80,
) -> list[RandomInstance]:
    """The Figure 8 sweep (paper scale: ``sizes=(20, 50)``).

    Only connected draws are useful for the enumeration comparison; the
    generator retries the seed until the sample is connected (sparse
    points may stay disconnected and are returned as-is after a bounded
    number of retries — the harness skips them explicitly, mirroring how
    the paper reports no data for infeasible points).
    """
    out: list[RandomInstance] = []
    for n in sizes:
        for p in probabilities:
            for draw in range(draws):
                seed = seed_base + 10_000 * n + int(1000 * p) * 10 + draw
                graph = erdos_renyi(n, p, seed=seed)
                for retry in range(1, 6):
                    if graph.is_connected():
                        break
                    graph = erdos_renyi(n, p, seed=seed + 777 * retry)
                out.append(
                    RandomInstance(
                        name=f"gnp-n{n}-p{p:.2f}-{draw}",
                        n=n,
                        p=p,
                        draw=draw,
                        graph=graph,
                    )
                )
    return out
