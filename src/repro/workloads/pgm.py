"""PIC2011-like probabilistic-graphical-model workloads.

The paper's PGM datasets come from the 2011 Probabilistic Inference
Challenge: Alchemy, CSP, DBN, Grids, Image Alignment, Object Detection,
Pedigree, Promedas, Protein-Protein, Protein Folding, Segmentation.  The
challenge archives are not redistributable here, so each family is
reproduced by a *structured generator* that matches the documented
topology of the original models (see DESIGN.md's substitution table).
Sizes are tuned so the family lands in the same tractability band the
paper's Figure 5 reports: e.g. Object Detection instances are small and
easy, Promedas is separator-tractable but PMC-heavy, Alchemy / Pedigree /
Protein families blow past any budget.

Every generator is deterministic given its seed, and every instance
carries a stable name for the reports.
"""

from __future__ import annotations

import random
from itertools import combinations

from ..graphs.generators import erdos_renyi, grid_graph, mycielski_graph
from ..graphs.graph import Graph

__all__ = [
    "moralize",
    "grids_instances",
    "dbn_instances",
    "segmentation_instances",
    "promedas_instances",
    "csp_instances",
    "object_detection_instances",
    "image_alignment_instances",
    "alchemy_instances",
    "pedigree_instances",
    "protein_protein_instances",
    "protein_folding_instances",
]


def moralize(parents: dict[object, list[object]]) -> Graph:
    """The moral graph of a Bayesian network given parent lists.

    Vertices are all mentioned variables; each child is connected to its
    parents and the parents of a common child are married.
    """
    g = Graph()
    for child, ps in parents.items():
        g.add_vertex(child)
        for p in ps:
            g.add_edge(child, p)
        for a, b in combinations(ps, 2):
            g.add_edge(a, b)
    return g


# ---------------------------------------------------------------------------
# Families that are (mostly) tractable at reproduction scale
# ---------------------------------------------------------------------------
def object_detection_instances(count: int = 12, seed: int = 11) -> list[tuple[str, Graph]]:
    """Small dense part-constellation models.

    The PIC2011 object-detection models are small (tens of variables) and
    dense — the paper reports 79 graphs, all trivially tractable (0.2 s
    init).  We generate near-complete graphs on 8–14 vertices with a few
    random non-edges.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        n = rng.randint(8, 14)
        g = Graph.complete(range(n))
        removable = list(combinations(range(n), 2))
        rng.shuffle(removable)
        for u, v in removable[: rng.randint(n, 2 * n)]:
            if g.degree(u) > 2 and g.degree(v) > 2:
                g.remove_edge(u, v)
        out.append((f"objdet-{i}", g))
    return out


def csp_instances(count: int = 8, seed: int = 13) -> list[tuple[str, Graph]]:
    """Constraint-graph instances.

    The PIC2011 CSP set contains DIMACS-coloring-derived models such as
    the ``myciel5g`` instance of the paper's case study (Appendix B).  We
    mix Mycielski graphs with sparse random constraint graphs.
    """
    rng = random.Random(seed)
    out: list[tuple[str, Graph]] = [
        ("csp-myciel4", mycielski_graph(4)),
        ("csp-myciel5", mycielski_graph(5)),
    ]
    for i in range(count - len(out)):
        n = rng.randint(14, 22)
        p = rng.uniform(0.15, 0.3)
        g = erdos_renyi(n, p, seed=rng.randrange(10**6))
        out.append((f"csp-rand-{i}", g))
    return out


def dbn_instances(count: int = 6, seed: int = 17) -> list[tuple[str, Graph]]:
    """Two-slice dynamic Bayesian networks, unrolled and moralized.

    Chains of slices with intra-slice links and random inter-slice parent
    sets; moralization marries co-parents, producing the band structure
    typical of the PIC2011 DBN models.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        width = rng.randint(4, 6)
        slices = rng.randint(3, 5)
        parents: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for t in range(slices):
            for j in range(width):
                ps: list[tuple[int, int]] = []
                if j > 0:
                    ps.append((t, j - 1))
                if t > 0:
                    ps.append((t - 1, j))
                    extra = rng.sample(range(width), k=min(2, width))
                    ps.extend((t - 1, e) for e in extra if e != j)
                parents[(t, j)] = ps
        out.append((f"dbn-{i}", moralize(parents)))
    return out


def segmentation_instances(count: int = 6, seed: int = 19) -> list[tuple[str, Graph]]:
    """Superpixel-adjacency MRFs: triangulated grids with random chords.

    Image segmentation models from PIC2011 are planar-ish region
    adjacency graphs; a grid with one random diagonal per cell is the
    standard synthetic stand-in.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        rows = rng.randint(3, 5)
        cols = rng.randint(4, 6)
        g = grid_graph(rows, cols)
        for r in range(rows - 1):
            for c in range(cols - 1):
                if rng.random() < 0.5:
                    g.add_edge((r, c), (r + 1, c + 1))
                else:
                    g.add_edge((r + 1, c), (r, c + 1))
        out.append((f"segmentation-{i}", g))
    return out


def image_alignment_instances(count: int = 4, seed: int = 23) -> list[tuple[str, Graph]]:
    """Feature-matching MRFs: moderate, sparse-plus-cliques.

    The paper has exactly 4 image-alignment graphs, all tractable but with
    a noticeable init time — mid-size ring-of-cliques structures model
    that band.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        clusters = rng.randint(5, 7)
        size = rng.randint(3, 4)
        g = Graph()
        for c in range(clusters):
            members = [(c, k) for k in range(size)]
            for v in members:
                g.add_vertex(v)
            g.saturate(members)
        for c in range(clusters):
            nxt = (c + 1) % clusters
            for _ in range(2):
                g.add_edge((c, rng.randrange(size)), (nxt, rng.randrange(size)))
        out.append((f"imgalign-{i}", g))
    return out


# ---------------------------------------------------------------------------
# Families around the tractability frontier
# ---------------------------------------------------------------------------
def grids_instances(count: int = 6, seed: int = 29) -> list[tuple[str, Graph]]:
    """Ising-style grid MRFs.

    Grid separator counts explode with the side length, so the family
    straddles the frontier: small grids terminate, larger ones do not —
    exactly the mixed column Figure 5 shows for "Grids".
    """
    rng = random.Random(seed)
    out = []
    sides = [4, 5, 6, 7, 8, 9]
    for i in range(count):
        side = sides[i % len(sides)]
        rows = side
        cols = side + rng.randint(0, 1)
        out.append((f"grid-{rows}x{cols}-{i}", grid_graph(rows, cols)))
    return out


def promedas_instances(count: int = 4, seed: int = 31) -> list[tuple[str, Graph]]:
    """Promedas-like layered noisy-OR diagnosis networks, moralized.

    Diseases point to findings; moralization marries the diseases of each
    finding, creating many overlapping cliques — separator enumeration
    stays feasible while PMC counts grow, the "MS terminated" band where
    the paper reports RankedTriang struggling on Promedas.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        diseases = rng.randint(10, 14)
        findings = rng.randint(14, 20)
        parents: dict[str, list[str]] = {}
        for f in range(findings):
            k = rng.randint(2, 3)
            parents[f"f{f}"] = [f"d{d}" for d in rng.sample(range(diseases), k)]
        out.append((f"promedas-{i}", moralize(parents)))
    return out


# ---------------------------------------------------------------------------
# Families that are intractable at any realistic budget (as in the paper)
# ---------------------------------------------------------------------------
def alchemy_instances(count: int = 3, seed: int = 37) -> list[tuple[str, Graph]]:
    """Grounded Markov-logic networks: large and dense (never tractable)."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        n = rng.randint(40, 55)
        out.append((f"alchemy-{i}", erdos_renyi(n, 0.3, seed=rng.randrange(10**6))))
    return out


def pedigree_instances(count: int = 3, seed: int = 41) -> list[tuple[str, Graph]]:
    """Moralized pedigree (genetic linkage) networks.

    Generations of individuals, two parents each drawn from the previous
    generation; moralization marries couples.  Inbreeding loops make the
    separator structure explode at realistic sizes.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        founders = rng.randint(8, 10)
        generations = 4
        parents: dict[str, list[str]] = {f"g0-{j}": [] for j in range(founders)}
        prev = [f"g0-{j}" for j in range(founders)]
        for gen in range(1, generations + 1):
            size = max(4, len(prev) + rng.randint(-1, 2))
            current = []
            for j in range(size):
                name = f"g{gen}-{j}"
                father, mother = rng.sample(prev, 2)
                parents[name] = [father, mother]
                current.append(name)
            prev = current
        out.append((f"pedigree-{i}", moralize(parents)))
    return out


def protein_protein_instances(count: int = 3, seed: int = 43) -> list[tuple[str, Graph]]:
    """Protein-protein interaction factor graphs: dense mid-size blobs."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        n = rng.randint(35, 45)
        out.append(
            (f"protprot-{i}", erdos_renyi(n, 0.35, seed=rng.randrange(10**6)))
        )
    return out


def protein_folding_instances(count: int = 3, seed: int = 47) -> list[tuple[str, Graph]]:
    """Protein-folding contact maps: chain plus dense contact edges."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        n = rng.randint(35, 45)
        g = Graph(vertices=range(n), edges=[(j, j + 1) for j in range(n - 1)])
        extra = erdos_renyi(n, 0.25, seed=rng.randrange(10**6))
        for u, v in extra.edges():
            g.add_edge(u, v)
        out.append((f"protfold-{i}", g))
    return out
