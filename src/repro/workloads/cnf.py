"""CNF primal graphs for the weighted-model-counting motivation.

The paper's introduction cites weighted model counting (Kenig–Gal) as an
application with costs "associated with the CNF-tree of the formula" that
the classic width/fill measures do not capture.  A CNF formula's *primal
graph* has a vertex per variable and an edge between variables sharing a
clause; tree decompositions of it drive both #SAT dynamic programming and
the junction-tree topologies Kenig–Gal study.

This module provides deterministic random k-CNF generators and the
formula → primal graph translation used by the model-counting example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graphs.graph import Graph

__all__ = ["CnfFormula", "random_k_cnf", "chain_cnf"]


@dataclass(frozen=True)
class CnfFormula:
    """A CNF formula as clauses over integer variables ``1..num_vars``.

    Literals are signed ints (DIMACS convention); the sign is irrelevant
    for the primal graph but kept for realism and round-tripping.
    """

    num_vars: int
    clauses: tuple[tuple[int, ...], ...]

    def primal_graph(self) -> Graph:
        """Variables adjacent iff they co-occur in a clause."""
        g = Graph(vertices=range(1, self.num_vars + 1))
        for clause in self.clauses:
            g.saturate({abs(lit) for lit in clause})
        return g

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines) + "\n"


def random_k_cnf(
    num_vars: int, num_clauses: int, k: int = 3, seed: int = 0
) -> CnfFormula:
    """A uniform random k-CNF formula (distinct variables per clause)."""
    if k > num_vars:
        raise ValueError(f"clause width {k} exceeds {num_vars} variables")
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k)
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in variables)
        )
    return CnfFormula(num_vars=num_vars, clauses=tuple(clauses))


def chain_cnf(length: int, overlap: int = 1, k: int = 3) -> CnfFormula:
    """A chain-structured CNF: clause i shares ``overlap`` vars with i+1.

    Chain formulas have pathwidth ≈ k − overlap; they model the "easy"
    end of the model-counting spectrum (band-structured circuits).
    """
    if not 0 < overlap < k:
        raise ValueError("need 0 < overlap < k")
    clauses = []
    start = 1
    highest = 0
    for _ in range(length):
        variables = list(range(start, start + k))
        highest = max(highest, variables[-1])
        clauses.append(tuple(variables))
        start += k - overlap
    return CnfFormula(num_vars=highest, clauses=tuple(clauses))
