"""Dataset registry: the named graph collections of the evaluation.

Maps the dataset labels of Figure 5 / Table 2 to instance factories.  All
factories are deterministic; instance lists are ``(name, Graph)`` pairs.
"""

from __future__ import annotations

from collections.abc import Callable

from ..graphs.graph import Graph
from . import pace, pgm, tpch

Instances = list[tuple[str, Graph]]

__all__ = ["DATASETS", "dataset", "dataset_names"]

DATASETS: dict[str, Callable[[], Instances]] = {
    "Alchemy": pgm.alchemy_instances,
    "Pedigree": pgm.pedigree_instances,
    "ProteinProtein": pgm.protein_protein_instances,
    "ImageAlignment": pgm.image_alignment_instances,
    "Pace2016-1000s": pace.pace1000_instances,
    "ProteinFolding": pgm.protein_folding_instances,
    "TPC-H": tpch.tpch_instances,
    "Grids": pgm.grids_instances,
    "CSP": pgm.csp_instances,
    "Segmentation": pgm.segmentation_instances,
    "DBN": pgm.dbn_instances,
    "ObjectDetection": pgm.object_detection_instances,
    "Promedas": pgm.promedas_instances,
    "Pace2016-100s": pace.pace100_instances,
}


def dataset_names() -> list[str]:
    """All registered dataset labels (Figure 5 row order)."""
    return list(DATASETS)


def dataset(name: str) -> Instances:
    """Instantiate the named dataset.

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None
    return factory()
